/root/repo/target/release/deps/criterion-4efbddefd0693262.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-4efbddefd0693262.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
