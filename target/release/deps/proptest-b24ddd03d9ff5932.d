/root/repo/target/release/deps/proptest-b24ddd03d9ff5932.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-b24ddd03d9ff5932.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
