/root/repo/target/release/deps/proptest-bd91a85577957634.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/proptest-bd91a85577957634: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
