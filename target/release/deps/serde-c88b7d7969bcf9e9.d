/root/repo/target/release/deps/serde-c88b7d7969bcf9e9.d: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/serde-c88b7d7969bcf9e9: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
