/root/repo/target/release/deps/serde_derive-aada50afcece4fce.d: crates/shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-aada50afcece4fce: crates/shims/serde_derive/src/lib.rs

crates/shims/serde_derive/src/lib.rs:
