/root/repo/target/release/deps/zeus-584417a957314ed7.d: src/lib.rs

/root/repo/target/release/deps/zeus-584417a957314ed7: src/lib.rs

src/lib.rs:
