/root/repo/target/release/deps/zeus-646063a7db9f9272.d: src/bin/zeus.rs

/root/repo/target/release/deps/zeus-646063a7db9f9272: src/bin/zeus.rs

src/bin/zeus.rs:
