/root/repo/target/release/deps/serde_derive-cfb4832e13527e2b.d: crates/shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-cfb4832e13527e2b.rmeta: crates/shims/serde_derive/src/lib.rs Cargo.toml

crates/shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
