/root/repo/target/release/deps/criterion-a53be034159f18a9.d: crates/shims/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-a53be034159f18a9: crates/shims/criterion/src/lib.rs

crates/shims/criterion/src/lib.rs:
