/root/repo/target/release/deps/calibrate-796f3c75c351efcb.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-796f3c75c351efcb.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
