/root/repo/target/release/deps/determinism-3dfd27b4c7287d5e.d: tests/determinism.rs Cargo.toml

/root/repo/target/release/deps/libdeterminism-3dfd27b4c7287d5e.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
