/root/repo/target/release/deps/rand_chacha-f9d359eef87b5173.d: crates/shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-f9d359eef87b5173.rmeta: crates/shims/rand_chacha/src/lib.rs Cargo.toml

crates/shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
