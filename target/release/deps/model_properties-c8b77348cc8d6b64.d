/root/repo/target/release/deps/model_properties-c8b77348cc8d6b64.d: crates/apfg/tests/model_properties.rs

/root/repo/target/release/deps/model_properties-c8b77348cc8d6b64: crates/apfg/tests/model_properties.rs

crates/apfg/tests/model_properties.rs:
