/root/repo/target/release/deps/serving-ed7a0c22cf50f059.d: tests/serving.rs

/root/repo/target/release/deps/serving-ed7a0c22cf50f059: tests/serving.rs

tests/serving.rs:
