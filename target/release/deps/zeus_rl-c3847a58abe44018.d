/root/repo/target/release/deps/zeus_rl-c3847a58abe44018.d: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

/root/repo/target/release/deps/zeus_rl-c3847a58abe44018: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

crates/rl/src/lib.rs:
crates/rl/src/agent.rs:
crates/rl/src/env.rs:
crates/rl/src/replay.rs:
crates/rl/src/reward.rs:
crates/rl/src/schedule.rs:
crates/rl/src/trainer.rs:
