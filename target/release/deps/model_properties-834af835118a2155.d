/root/repo/target/release/deps/model_properties-834af835118a2155.d: crates/apfg/tests/model_properties.rs Cargo.toml

/root/repo/target/release/deps/libmodel_properties-834af835118a2155.rmeta: crates/apfg/tests/model_properties.rs Cargo.toml

crates/apfg/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
