/root/repo/target/release/deps/query_pipeline-61df8f39fe117df7.d: tests/query_pipeline.rs Cargo.toml

/root/repo/target/release/deps/libquery_pipeline-61df8f39fe117df7.rmeta: tests/query_pipeline.rs Cargo.toml

tests/query_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
