/root/repo/target/release/deps/proptests-90541d44f13327aa.d: tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-90541d44f13327aa.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
