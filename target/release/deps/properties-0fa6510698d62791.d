/root/repo/target/release/deps/properties-0fa6510698d62791.d: crates/nn/tests/properties.rs

/root/repo/target/release/deps/properties-0fa6510698d62791: crates/nn/tests/properties.rs

crates/nn/tests/properties.rs:
