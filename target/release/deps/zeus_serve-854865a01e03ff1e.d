/root/repo/target/release/deps/zeus_serve-854865a01e03ff1e.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/libzeus_serve-854865a01e03ff1e.rlib: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/libzeus_serve-854865a01e03ff1e.rmeta: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/cache.rs:
crates/serve/src/metrics.rs:
crates/serve/src/plans.rs:
crates/serve/src/pool.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
