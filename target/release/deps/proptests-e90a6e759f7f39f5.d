/root/repo/target/release/deps/proptests-e90a6e759f7f39f5.d: tests/proptests.rs

/root/repo/target/release/deps/proptests-e90a6e759f7f39f5: tests/proptests.rs

tests/proptests.rs:
