/root/repo/target/release/deps/rand_chacha-5d19312dcfb0a68c.d: crates/shims/rand_chacha/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand_chacha-5d19312dcfb0a68c.rmeta: crates/shims/rand_chacha/src/lib.rs Cargo.toml

crates/shims/rand_chacha/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
