/root/repo/target/release/deps/serde_derive-6eff79fb25525284.d: crates/shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-6eff79fb25525284.so: crates/shims/serde_derive/src/lib.rs Cargo.toml

crates/shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
