/root/repo/target/release/deps/zeus_rl-1bb5f0c83d7d6930.d: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs Cargo.toml

/root/repo/target/release/deps/libzeus_rl-1bb5f0c83d7d6930.rmeta: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs Cargo.toml

crates/rl/src/lib.rs:
crates/rl/src/agent.rs:
crates/rl/src/env.rs:
crates/rl/src/replay.rs:
crates/rl/src/reward.rs:
crates/rl/src/schedule.rs:
crates/rl/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
