/root/repo/target/release/deps/zeus_serve-1d2cc58af0c70ed4.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs Cargo.toml

/root/repo/target/release/deps/libzeus_serve-1d2cc58af0c70ed4.rmeta: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/cache.rs:
crates/serve/src/metrics.rs:
crates/serve/src/plans.rs:
crates/serve/src/pool.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
