/root/repo/target/release/deps/zeus-de76b1cfed939f89.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libzeus-de76b1cfed939f89.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
