/root/repo/target/release/deps/zeus_bench-fc3e27af6221e033.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/libzeus_bench-fc3e27af6221e033.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
