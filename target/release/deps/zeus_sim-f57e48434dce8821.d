/root/repo/target/release/deps/zeus_sim-f57e48434dce8821.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs Cargo.toml

/root/repo/target/release/deps/libzeus_sim-f57e48434dce8821.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/device.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
