/root/repo/target/release/deps/parking_lot-75ff3bfcc63b4023.d: crates/shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-75ff3bfcc63b4023.rmeta: crates/shims/parking_lot/src/lib.rs Cargo.toml

crates/shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
