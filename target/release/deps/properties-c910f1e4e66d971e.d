/root/repo/target/release/deps/properties-c910f1e4e66d971e.d: crates/nn/tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-c910f1e4e66d971e.rmeta: crates/nn/tests/properties.rs Cargo.toml

crates/nn/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
