/root/repo/target/release/deps/zeus_nn-26fdb7f46b5542cf.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/zeus_nn-26fdb7f46b5542cf: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
