/root/repo/target/release/deps/reproduce-97098afe290c879d.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/release/deps/libreproduce-97098afe290c879d.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
