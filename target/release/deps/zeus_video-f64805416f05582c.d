/root/repo/target/release/deps/zeus_video-f64805416f05582c.d: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

/root/repo/target/release/deps/zeus_video-f64805416f05582c: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

crates/video/src/lib.rs:
crates/video/src/annotation.rs:
crates/video/src/datasets.rs:
crates/video/src/frame.rs:
crates/video/src/scene.rs:
crates/video/src/segment.rs:
crates/video/src/stats.rs:
crates/video/src/video.rs:
