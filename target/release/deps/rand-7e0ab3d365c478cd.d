/root/repo/target/release/deps/rand-7e0ab3d365c478cd.d: crates/shims/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-7e0ab3d365c478cd.rmeta: crates/shims/rand/src/lib.rs Cargo.toml

crates/shims/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
