/root/repo/target/release/deps/crossbeam-6e6d5c0c1ddce7fb.d: crates/shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/crossbeam-6e6d5c0c1ddce7fb: crates/shims/crossbeam/src/lib.rs

crates/shims/crossbeam/src/lib.rs:
