/root/repo/target/release/deps/serde-919ccee1efc48492.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-919ccee1efc48492.rmeta: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
