/root/repo/target/release/deps/criterion-036508f6c0cda44c.d: crates/shims/criterion/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcriterion-036508f6c0cda44c.rmeta: crates/shims/criterion/src/lib.rs Cargo.toml

crates/shims/criterion/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
