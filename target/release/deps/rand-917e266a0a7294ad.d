/root/repo/target/release/deps/rand-917e266a0a7294ad.d: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-917e266a0a7294ad.rlib: crates/shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-917e266a0a7294ad.rmeta: crates/shims/rand/src/lib.rs

crates/shims/rand/src/lib.rs:
