/root/repo/target/release/deps/zeus_sim-d4d3139329df4a7a.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

/root/repo/target/release/deps/libzeus_sim-d4d3139329df4a7a.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

/root/repo/target/release/deps/libzeus_sim-d4d3139329df4a7a.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/device.rs:
