/root/repo/target/release/deps/generation_properties-f7d269b10af7d4a1.d: crates/video/tests/generation_properties.rs

/root/repo/target/release/deps/generation_properties-f7d269b10af7d4a1: crates/video/tests/generation_properties.rs

crates/video/tests/generation_properties.rs:
