/root/repo/target/release/deps/bytes-3db0797ac1e8a69b.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-3db0797ac1e8a69b.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
