/root/repo/target/release/deps/reproduce-af69de6d1915df75.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-af69de6d1915df75: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
