/root/repo/target/release/deps/zeus-1768f3c33c8c3f69.d: src/lib.rs

/root/repo/target/release/deps/libzeus-1768f3c33c8c3f69.rlib: src/lib.rs

/root/repo/target/release/deps/libzeus-1768f3c33c8c3f69.rmeta: src/lib.rs

src/lib.rs:
