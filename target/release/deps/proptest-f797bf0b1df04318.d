/root/repo/target/release/deps/proptest-f797bf0b1df04318.d: crates/shims/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-f797bf0b1df04318.rmeta: crates/shims/proptest/src/lib.rs Cargo.toml

crates/shims/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
