/root/repo/target/release/deps/crossbeam-ec038a7c26bebf49.d: crates/shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-ec038a7c26bebf49.rmeta: crates/shims/crossbeam/src/lib.rs Cargo.toml

crates/shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
