/root/repo/target/release/deps/reproduce-fd726321203285dc.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-fd726321203285dc: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
