/root/repo/target/release/deps/zeus_sim-fe789a7f8bf34147.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

/root/repo/target/release/deps/zeus_sim-fe789a7f8bf34147: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/device.rs:
