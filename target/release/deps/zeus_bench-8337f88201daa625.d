/root/repo/target/release/deps/zeus_bench-8337f88201daa625.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libzeus_bench-8337f88201daa625.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libzeus_bench-8337f88201daa625.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/tables.rs:
