/root/repo/target/release/deps/zeus_apfg-e224c20082f240b3.d: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

/root/repo/target/release/deps/zeus_apfg-e224c20082f240b3: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

crates/apfg/src/lib.rs:
crates/apfg/src/cache.rs:
crates/apfg/src/config.rs:
crates/apfg/src/feature.rs:
crates/apfg/src/frame_pp.rs:
crates/apfg/src/r3d_lite.rs:
crates/apfg/src/segment_pp.rs:
crates/apfg/src/simulated.rs:
crates/apfg/src/traits.rs:
