/root/repo/target/release/deps/reproduce-e93c2a1b35507df0.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/release/deps/libreproduce-e93c2a1b35507df0.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
