/root/repo/target/release/deps/reproduction-b5dfd92a68d2ba57.d: crates/bench/benches/reproduction.rs Cargo.toml

/root/repo/target/release/deps/libreproduction-b5dfd92a68d2ba57.rmeta: crates/bench/benches/reproduction.rs Cargo.toml

crates/bench/benches/reproduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
