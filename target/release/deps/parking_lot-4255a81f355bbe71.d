/root/repo/target/release/deps/parking_lot-4255a81f355bbe71.d: crates/shims/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-4255a81f355bbe71.rmeta: crates/shims/parking_lot/src/lib.rs Cargo.toml

crates/shims/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
