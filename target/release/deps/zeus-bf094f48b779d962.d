/root/repo/target/release/deps/zeus-bf094f48b779d962.d: src/bin/zeus.rs

/root/repo/target/release/deps/zeus-bf094f48b779d962: src/bin/zeus.rs

src/bin/zeus.rs:
