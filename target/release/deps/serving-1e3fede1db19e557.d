/root/repo/target/release/deps/serving-1e3fede1db19e557.d: tests/serving.rs Cargo.toml

/root/repo/target/release/deps/libserving-1e3fede1db19e557.rmeta: tests/serving.rs Cargo.toml

tests/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
