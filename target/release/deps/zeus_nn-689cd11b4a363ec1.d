/root/repo/target/release/deps/zeus_nn-689cd11b4a363ec1.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs Cargo.toml

/root/repo/target/release/deps/libzeus_nn-689cd11b4a363ec1.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
