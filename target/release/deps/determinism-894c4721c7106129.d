/root/repo/target/release/deps/determinism-894c4721c7106129.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-894c4721c7106129: tests/determinism.rs

tests/determinism.rs:
