/root/repo/target/release/deps/serde-da70bb7810c3b640.d: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-da70bb7810c3b640.rlib: crates/shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-da70bb7810c3b640.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
