/root/repo/target/release/deps/serde-c64acfcca68f2b48.d: crates/shims/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-c64acfcca68f2b48.rmeta: crates/shims/serde/src/lib.rs Cargo.toml

crates/shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
