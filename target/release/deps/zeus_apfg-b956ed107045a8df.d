/root/repo/target/release/deps/zeus_apfg-b956ed107045a8df.d: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs Cargo.toml

/root/repo/target/release/deps/libzeus_apfg-b956ed107045a8df.rmeta: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs Cargo.toml

crates/apfg/src/lib.rs:
crates/apfg/src/cache.rs:
crates/apfg/src/config.rs:
crates/apfg/src/feature.rs:
crates/apfg/src/frame_pp.rs:
crates/apfg/src/r3d_lite.rs:
crates/apfg/src/segment_pp.rs:
crates/apfg/src/simulated.rs:
crates/apfg/src/traits.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
