/root/repo/target/release/deps/serving-c0451f1d50d93bb4.d: crates/serve/tests/serving.rs Cargo.toml

/root/repo/target/release/deps/libserving-c0451f1d50d93bb4.rmeta: crates/serve/tests/serving.rs Cargo.toml

crates/serve/tests/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
