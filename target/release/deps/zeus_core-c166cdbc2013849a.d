/root/repo/target/release/deps/zeus_core-c166cdbc2013849a.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/frame_pp.rs crates/core/src/baselines/heuristic.rs crates/core/src/baselines/segment_pp.rs crates/core/src/baselines/sliding.rs crates/core/src/baselines/zeus_rl.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/metrics.rs crates/core/src/parallel.rs crates/core/src/planner.rs crates/core/src/query.rs crates/core/src/result.rs

/root/repo/target/release/deps/zeus_core-c166cdbc2013849a: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/frame_pp.rs crates/core/src/baselines/heuristic.rs crates/core/src/baselines/segment_pp.rs crates/core/src/baselines/sliding.rs crates/core/src/baselines/zeus_rl.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/metrics.rs crates/core/src/parallel.rs crates/core/src/planner.rs crates/core/src/query.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/frame_pp.rs:
crates/core/src/baselines/heuristic.rs:
crates/core/src/baselines/segment_pp.rs:
crates/core/src/baselines/sliding.rs:
crates/core/src/baselines/zeus_rl.rs:
crates/core/src/catalog.rs:
crates/core/src/config.rs:
crates/core/src/env.rs:
crates/core/src/metrics.rs:
crates/core/src/parallel.rs:
crates/core/src/planner.rs:
crates/core/src/query.rs:
crates/core/src/result.rs:
