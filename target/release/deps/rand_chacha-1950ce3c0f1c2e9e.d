/root/repo/target/release/deps/rand_chacha-1950ce3c0f1c2e9e.d: crates/shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/rand_chacha-1950ce3c0f1c2e9e: crates/shims/rand_chacha/src/lib.rs

crates/shims/rand_chacha/src/lib.rs:
