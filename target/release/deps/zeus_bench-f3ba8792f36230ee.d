/root/repo/target/release/deps/zeus_bench-f3ba8792f36230ee.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/release/deps/libzeus_bench-f3ba8792f36230ee.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
