/root/repo/target/release/deps/serving-f0fd5047b667ced3.d: crates/serve/tests/serving.rs

/root/repo/target/release/deps/serving-f0fd5047b667ced3: crates/serve/tests/serving.rs

crates/serve/tests/serving.rs:
