/root/repo/target/release/deps/proptest-0035dc285bd82b32.d: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0035dc285bd82b32.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-0035dc285bd82b32.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
