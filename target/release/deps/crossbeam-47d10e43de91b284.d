/root/repo/target/release/deps/crossbeam-47d10e43de91b284.d: crates/shims/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-47d10e43de91b284.rmeta: crates/shims/crossbeam/src/lib.rs Cargo.toml

crates/shims/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
