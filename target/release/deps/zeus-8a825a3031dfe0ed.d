/root/repo/target/release/deps/zeus-8a825a3031dfe0ed.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libzeus-8a825a3031dfe0ed.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
