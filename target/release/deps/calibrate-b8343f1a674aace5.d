/root/repo/target/release/deps/calibrate-b8343f1a674aace5.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-b8343f1a674aace5: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
