/root/repo/target/release/deps/zeus_apfg-c90685d869dd82ca.d: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

/root/repo/target/release/deps/libzeus_apfg-c90685d869dd82ca.rlib: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

/root/repo/target/release/deps/libzeus_apfg-c90685d869dd82ca.rmeta: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

crates/apfg/src/lib.rs:
crates/apfg/src/cache.rs:
crates/apfg/src/config.rs:
crates/apfg/src/feature.rs:
crates/apfg/src/frame_pp.rs:
crates/apfg/src/r3d_lite.rs:
crates/apfg/src/segment_pp.rs:
crates/apfg/src/simulated.rs:
crates/apfg/src/traits.rs:
