/root/repo/target/release/deps/zeus_serve-122ddbe9eed9bfc9.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/release/deps/zeus_serve-122ddbe9eed9bfc9: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/cache.rs:
crates/serve/src/metrics.rs:
crates/serve/src/plans.rs:
crates/serve/src/pool.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
