/root/repo/target/release/deps/rand_chacha-9bcc4206e23edb78.d: crates/shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-9bcc4206e23edb78.rlib: crates/shims/rand_chacha/src/lib.rs

/root/repo/target/release/deps/librand_chacha-9bcc4206e23edb78.rmeta: crates/shims/rand_chacha/src/lib.rs

crates/shims/rand_chacha/src/lib.rs:
