/root/repo/target/release/deps/serde_derive-2edff1e52eb223af.d: crates/shims/serde_derive/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde_derive-2edff1e52eb223af.rmeta: crates/shims/serde_derive/src/lib.rs Cargo.toml

crates/shims/serde_derive/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
