/root/repo/target/release/deps/bytes-dff3074d3567e074.d: crates/shims/bytes/src/lib.rs

/root/repo/target/release/deps/bytes-dff3074d3567e074: crates/shims/bytes/src/lib.rs

crates/shims/bytes/src/lib.rs:
