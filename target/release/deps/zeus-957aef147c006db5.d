/root/repo/target/release/deps/zeus-957aef147c006db5.d: src/bin/zeus.rs Cargo.toml

/root/repo/target/release/deps/libzeus-957aef147c006db5.rmeta: src/bin/zeus.rs Cargo.toml

src/bin/zeus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
