/root/repo/target/release/deps/zeus_bench-d3127d4eca6020de.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/zeus_bench-d3127d4eca6020de: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/tables.rs:
