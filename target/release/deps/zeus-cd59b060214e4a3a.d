/root/repo/target/release/deps/zeus-cd59b060214e4a3a.d: src/bin/zeus.rs Cargo.toml

/root/repo/target/release/deps/libzeus-cd59b060214e4a3a.rmeta: src/bin/zeus.rs Cargo.toml

src/bin/zeus.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
