/root/repo/target/release/deps/zeus_video-37477dd6ab4d1c78.d: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

/root/repo/target/release/deps/libzeus_video-37477dd6ab4d1c78.rlib: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

/root/repo/target/release/deps/libzeus_video-37477dd6ab4d1c78.rmeta: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

crates/video/src/lib.rs:
crates/video/src/annotation.rs:
crates/video/src/datasets.rs:
crates/video/src/frame.rs:
crates/video/src/scene.rs:
crates/video/src/segment.rs:
crates/video/src/stats.rs:
crates/video/src/video.rs:
