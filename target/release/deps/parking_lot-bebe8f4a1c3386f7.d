/root/repo/target/release/deps/parking_lot-bebe8f4a1c3386f7.d: crates/shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-bebe8f4a1c3386f7: crates/shims/parking_lot/src/lib.rs

crates/shims/parking_lot/src/lib.rs:
