/root/repo/target/release/deps/bytes-35105cb210965abe.d: crates/shims/bytes/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libbytes-35105cb210965abe.rmeta: crates/shims/bytes/src/lib.rs Cargo.toml

crates/shims/bytes/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
