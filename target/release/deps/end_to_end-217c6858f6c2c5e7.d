/root/repo/target/release/deps/end_to_end-217c6858f6c2c5e7.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-217c6858f6c2c5e7: tests/end_to_end.rs

tests/end_to_end.rs:
