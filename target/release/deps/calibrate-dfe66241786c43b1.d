/root/repo/target/release/deps/calibrate-dfe66241786c43b1.d: crates/bench/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-dfe66241786c43b1: crates/bench/src/bin/calibrate.rs

crates/bench/src/bin/calibrate.rs:
