/root/repo/target/release/deps/zeus_rl-26c4037e7aa9b0ed.d: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

/root/repo/target/release/deps/libzeus_rl-26c4037e7aa9b0ed.rlib: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

/root/repo/target/release/deps/libzeus_rl-26c4037e7aa9b0ed.rmeta: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

crates/rl/src/lib.rs:
crates/rl/src/agent.rs:
crates/rl/src/env.rs:
crates/rl/src/replay.rs:
crates/rl/src/reward.rs:
crates/rl/src/schedule.rs:
crates/rl/src/trainer.rs:
