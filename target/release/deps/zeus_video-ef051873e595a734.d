/root/repo/target/release/deps/zeus_video-ef051873e595a734.d: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs Cargo.toml

/root/repo/target/release/deps/libzeus_video-ef051873e595a734.rmeta: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs Cargo.toml

crates/video/src/lib.rs:
crates/video/src/annotation.rs:
crates/video/src/datasets.rs:
crates/video/src/frame.rs:
crates/video/src/scene.rs:
crates/video/src/segment.rs:
crates/video/src/stats.rs:
crates/video/src/video.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
