/root/repo/target/release/deps/calibrate-c755581d094f234d.d: crates/bench/src/bin/calibrate.rs Cargo.toml

/root/repo/target/release/deps/libcalibrate-c755581d094f234d.rmeta: crates/bench/src/bin/calibrate.rs Cargo.toml

crates/bench/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
