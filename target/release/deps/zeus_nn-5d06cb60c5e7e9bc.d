/root/repo/target/release/deps/zeus_nn-5d06cb60c5e7e9bc.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/libzeus_nn-5d06cb60c5e7e9bc.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

/root/repo/target/release/deps/libzeus_nn-5d06cb60c5e7e9bc.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
