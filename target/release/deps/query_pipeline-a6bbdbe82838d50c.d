/root/repo/target/release/deps/query_pipeline-a6bbdbe82838d50c.d: tests/query_pipeline.rs

/root/repo/target/release/deps/query_pipeline-a6bbdbe82838d50c: tests/query_pipeline.rs

tests/query_pipeline.rs:
