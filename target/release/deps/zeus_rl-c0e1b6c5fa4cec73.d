/root/repo/target/release/deps/zeus_rl-c0e1b6c5fa4cec73.d: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs Cargo.toml

/root/repo/target/release/deps/libzeus_rl-c0e1b6c5fa4cec73.rmeta: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs Cargo.toml

crates/rl/src/lib.rs:
crates/rl/src/agent.rs:
crates/rl/src/env.rs:
crates/rl/src/replay.rs:
crates/rl/src/reward.rs:
crates/rl/src/schedule.rs:
crates/rl/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
