/root/repo/target/release/deps/generation_properties-0ab70f114ab0579a.d: crates/video/tests/generation_properties.rs Cargo.toml

/root/repo/target/release/deps/libgeneration_properties-0ab70f114ab0579a.rmeta: crates/video/tests/generation_properties.rs Cargo.toml

crates/video/tests/generation_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
