/root/repo/target/release/examples/quickstart-ffae177053521058.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-ffae177053521058: examples/quickstart.rs

examples/quickstart.rs:
