/root/repo/target/release/examples/r3d_training-945719b2070cfac5.d: examples/r3d_training.rs Cargo.toml

/root/repo/target/release/examples/libr3d_training-945719b2070cfac5.rmeta: examples/r3d_training.rs Cargo.toml

examples/r3d_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
