/root/repo/target/release/examples/r3d_training-64b89ac80803ec67.d: examples/r3d_training.rs

/root/repo/target/release/examples/r3d_training-64b89ac80803ec67: examples/r3d_training.rs

examples/r3d_training.rs:
