/root/repo/target/release/examples/traffic_analytics-59ccad0bf8712c6d.d: examples/traffic_analytics.rs Cargo.toml

/root/repo/target/release/examples/libtraffic_analytics-59ccad0bf8712c6d.rmeta: examples/traffic_analytics.rs Cargo.toml

examples/traffic_analytics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
