/root/repo/target/release/examples/quickstart-b34acdf833d3a82e.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-b34acdf833d3a82e.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
