/root/repo/target/release/examples/accuracy_sweep-f3d6fac656dbbfe2.d: examples/accuracy_sweep.rs

/root/repo/target/release/examples/accuracy_sweep-f3d6fac656dbbfe2: examples/accuracy_sweep.rs

examples/accuracy_sweep.rs:
