/root/repo/target/release/examples/sports_highlights-3fec9d2e786208f5.d: examples/sports_highlights.rs Cargo.toml

/root/repo/target/release/examples/libsports_highlights-3fec9d2e786208f5.rmeta: examples/sports_highlights.rs Cargo.toml

examples/sports_highlights.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
