/root/repo/target/release/examples/accuracy_sweep-90a73928783e0ce7.d: examples/accuracy_sweep.rs Cargo.toml

/root/repo/target/release/examples/libaccuracy_sweep-90a73928783e0ce7.rmeta: examples/accuracy_sweep.rs Cargo.toml

examples/accuracy_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
