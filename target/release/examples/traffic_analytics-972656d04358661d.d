/root/repo/target/release/examples/traffic_analytics-972656d04358661d.d: examples/traffic_analytics.rs

/root/repo/target/release/examples/traffic_analytics-972656d04358661d: examples/traffic_analytics.rs

examples/traffic_analytics.rs:
