/root/repo/target/release/examples/serving-82fdeeae08c7375d.d: examples/serving.rs

/root/repo/target/release/examples/serving-82fdeeae08c7375d: examples/serving.rs

examples/serving.rs:
