/root/repo/target/release/examples/sports_highlights-9ace44c267d271bf.d: examples/sports_highlights.rs

/root/repo/target/release/examples/sports_highlights-9ace44c267d271bf: examples/sports_highlights.rs

examples/sports_highlights.rs:
