/root/repo/target/release/examples/serving-9350e09a43b129ac.d: examples/serving.rs Cargo.toml

/root/repo/target/release/examples/libserving-9350e09a43b129ac.rmeta: examples/serving.rs Cargo.toml

examples/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
