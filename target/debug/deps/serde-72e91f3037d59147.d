/root/repo/target/debug/deps/serde-72e91f3037d59147.d: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-72e91f3037d59147.rlib: crates/shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-72e91f3037d59147.rmeta: crates/shims/serde/src/lib.rs

crates/shims/serde/src/lib.rs:
