/root/repo/target/debug/deps/query_pipeline-19c18a35a0d3bfdc.d: tests/query_pipeline.rs

/root/repo/target/debug/deps/query_pipeline-19c18a35a0d3bfdc: tests/query_pipeline.rs

tests/query_pipeline.rs:
