/root/repo/target/debug/deps/zeus-a72ce43544366714.d: src/lib.rs

/root/repo/target/debug/deps/libzeus-a72ce43544366714.rlib: src/lib.rs

/root/repo/target/debug/deps/libzeus-a72ce43544366714.rmeta: src/lib.rs

src/lib.rs:
