/root/repo/target/debug/deps/zeus-e037eddb4467bb37.d: src/bin/zeus.rs

/root/repo/target/debug/deps/zeus-e037eddb4467bb37: src/bin/zeus.rs

src/bin/zeus.rs:
