/root/repo/target/debug/deps/serving-9b2af03b3bfc6f6a.d: tests/serving.rs

/root/repo/target/debug/deps/serving-9b2af03b3bfc6f6a: tests/serving.rs

tests/serving.rs:
