/root/repo/target/debug/deps/zeus_video-ffda7f79ce3ab613.d: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

/root/repo/target/debug/deps/libzeus_video-ffda7f79ce3ab613.rlib: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

/root/repo/target/debug/deps/libzeus_video-ffda7f79ce3ab613.rmeta: crates/video/src/lib.rs crates/video/src/annotation.rs crates/video/src/datasets.rs crates/video/src/frame.rs crates/video/src/scene.rs crates/video/src/segment.rs crates/video/src/stats.rs crates/video/src/video.rs

crates/video/src/lib.rs:
crates/video/src/annotation.rs:
crates/video/src/datasets.rs:
crates/video/src/frame.rs:
crates/video/src/scene.rs:
crates/video/src/segment.rs:
crates/video/src/stats.rs:
crates/video/src/video.rs:
