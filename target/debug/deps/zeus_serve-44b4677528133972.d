/root/repo/target/debug/deps/zeus_serve-44b4677528133972.d: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/libzeus_serve-44b4677528133972.rlib: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

/root/repo/target/debug/deps/libzeus_serve-44b4677528133972.rmeta: crates/serve/src/lib.rs crates/serve/src/admission.rs crates/serve/src/cache.rs crates/serve/src/metrics.rs crates/serve/src/plans.rs crates/serve/src/pool.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/workload.rs

crates/serve/src/lib.rs:
crates/serve/src/admission.rs:
crates/serve/src/cache.rs:
crates/serve/src/metrics.rs:
crates/serve/src/plans.rs:
crates/serve/src/pool.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/workload.rs:
