/root/repo/target/debug/deps/zeus_nn-4a6f56bed543d676.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/libzeus_nn-4a6f56bed543d676.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

/root/repo/target/debug/deps/libzeus_nn-4a6f56bed543d676.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/conv.rs crates/nn/src/init.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/mlp.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/serialize.rs crates/nn/src/tensor.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/conv.rs:
crates/nn/src/init.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/serialize.rs:
crates/nn/src/tensor.rs:
