/root/repo/target/debug/deps/proptest-a03d5454b7359214.d: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a03d5454b7359214.rlib: crates/shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-a03d5454b7359214.rmeta: crates/shims/proptest/src/lib.rs

crates/shims/proptest/src/lib.rs:
