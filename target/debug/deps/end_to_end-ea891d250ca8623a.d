/root/repo/target/debug/deps/end_to_end-ea891d250ca8623a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ea891d250ca8623a: tests/end_to_end.rs

tests/end_to_end.rs:
