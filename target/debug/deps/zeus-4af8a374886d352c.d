/root/repo/target/debug/deps/zeus-4af8a374886d352c.d: src/bin/zeus.rs

/root/repo/target/debug/deps/zeus-4af8a374886d352c: src/bin/zeus.rs

src/bin/zeus.rs:
