/root/repo/target/debug/deps/zeus_sim-901c7f97d4d8f30f.d: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

/root/repo/target/debug/deps/libzeus_sim-901c7f97d4d8f30f.rlib: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

/root/repo/target/debug/deps/libzeus_sim-901c7f97d4d8f30f.rmeta: crates/sim/src/lib.rs crates/sim/src/clock.rs crates/sim/src/cost.rs crates/sim/src/device.rs

crates/sim/src/lib.rs:
crates/sim/src/clock.rs:
crates/sim/src/cost.rs:
crates/sim/src/device.rs:
