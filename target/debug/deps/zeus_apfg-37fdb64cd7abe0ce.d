/root/repo/target/debug/deps/zeus_apfg-37fdb64cd7abe0ce.d: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

/root/repo/target/debug/deps/libzeus_apfg-37fdb64cd7abe0ce.rlib: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

/root/repo/target/debug/deps/libzeus_apfg-37fdb64cd7abe0ce.rmeta: crates/apfg/src/lib.rs crates/apfg/src/cache.rs crates/apfg/src/config.rs crates/apfg/src/feature.rs crates/apfg/src/frame_pp.rs crates/apfg/src/r3d_lite.rs crates/apfg/src/segment_pp.rs crates/apfg/src/simulated.rs crates/apfg/src/traits.rs

crates/apfg/src/lib.rs:
crates/apfg/src/cache.rs:
crates/apfg/src/config.rs:
crates/apfg/src/feature.rs:
crates/apfg/src/frame_pp.rs:
crates/apfg/src/r3d_lite.rs:
crates/apfg/src/segment_pp.rs:
crates/apfg/src/simulated.rs:
crates/apfg/src/traits.rs:
