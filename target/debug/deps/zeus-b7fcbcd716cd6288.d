/root/repo/target/debug/deps/zeus-b7fcbcd716cd6288.d: src/lib.rs

/root/repo/target/debug/deps/zeus-b7fcbcd716cd6288: src/lib.rs

src/lib.rs:
