/root/repo/target/debug/deps/zeus_core-1b1a5941d471fd20.d: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/frame_pp.rs crates/core/src/baselines/heuristic.rs crates/core/src/baselines/segment_pp.rs crates/core/src/baselines/sliding.rs crates/core/src/baselines/zeus_rl.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/metrics.rs crates/core/src/parallel.rs crates/core/src/planner.rs crates/core/src/query.rs crates/core/src/result.rs

/root/repo/target/debug/deps/libzeus_core-1b1a5941d471fd20.rlib: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/frame_pp.rs crates/core/src/baselines/heuristic.rs crates/core/src/baselines/segment_pp.rs crates/core/src/baselines/sliding.rs crates/core/src/baselines/zeus_rl.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/metrics.rs crates/core/src/parallel.rs crates/core/src/planner.rs crates/core/src/query.rs crates/core/src/result.rs

/root/repo/target/debug/deps/libzeus_core-1b1a5941d471fd20.rmeta: crates/core/src/lib.rs crates/core/src/baselines/mod.rs crates/core/src/baselines/frame_pp.rs crates/core/src/baselines/heuristic.rs crates/core/src/baselines/segment_pp.rs crates/core/src/baselines/sliding.rs crates/core/src/baselines/zeus_rl.rs crates/core/src/catalog.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/metrics.rs crates/core/src/parallel.rs crates/core/src/planner.rs crates/core/src/query.rs crates/core/src/result.rs

crates/core/src/lib.rs:
crates/core/src/baselines/mod.rs:
crates/core/src/baselines/frame_pp.rs:
crates/core/src/baselines/heuristic.rs:
crates/core/src/baselines/segment_pp.rs:
crates/core/src/baselines/sliding.rs:
crates/core/src/baselines/zeus_rl.rs:
crates/core/src/catalog.rs:
crates/core/src/config.rs:
crates/core/src/env.rs:
crates/core/src/metrics.rs:
crates/core/src/parallel.rs:
crates/core/src/planner.rs:
crates/core/src/query.rs:
crates/core/src/result.rs:
