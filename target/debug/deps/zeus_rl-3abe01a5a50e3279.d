/root/repo/target/debug/deps/zeus_rl-3abe01a5a50e3279.d: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

/root/repo/target/debug/deps/libzeus_rl-3abe01a5a50e3279.rlib: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

/root/repo/target/debug/deps/libzeus_rl-3abe01a5a50e3279.rmeta: crates/rl/src/lib.rs crates/rl/src/agent.rs crates/rl/src/env.rs crates/rl/src/replay.rs crates/rl/src/reward.rs crates/rl/src/schedule.rs crates/rl/src/trainer.rs

crates/rl/src/lib.rs:
crates/rl/src/agent.rs:
crates/rl/src/env.rs:
crates/rl/src/replay.rs:
crates/rl/src/reward.rs:
crates/rl/src/schedule.rs:
crates/rl/src/trainer.rs:
