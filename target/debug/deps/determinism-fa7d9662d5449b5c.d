/root/repo/target/debug/deps/determinism-fa7d9662d5449b5c.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-fa7d9662d5449b5c: tests/determinism.rs

tests/determinism.rs:
