/root/repo/target/debug/deps/proptests-36835ba987ddd2db.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-36835ba987ddd2db: tests/proptests.rs

tests/proptests.rs:
