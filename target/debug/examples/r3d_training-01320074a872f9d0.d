/root/repo/target/debug/examples/r3d_training-01320074a872f9d0.d: examples/r3d_training.rs

/root/repo/target/debug/examples/r3d_training-01320074a872f9d0: examples/r3d_training.rs

examples/r3d_training.rs:
