/root/repo/target/debug/examples/quickstart-565560025697e5eb.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-565560025697e5eb: examples/quickstart.rs

examples/quickstart.rs:
