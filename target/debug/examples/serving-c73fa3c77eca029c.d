/root/repo/target/debug/examples/serving-c73fa3c77eca029c.d: examples/serving.rs

/root/repo/target/debug/examples/serving-c73fa3c77eca029c: examples/serving.rs

examples/serving.rs:
