/root/repo/target/debug/examples/accuracy_sweep-9755e76bd8c264a2.d: examples/accuracy_sweep.rs

/root/repo/target/debug/examples/accuracy_sweep-9755e76bd8c264a2: examples/accuracy_sweep.rs

examples/accuracy_sweep.rs:
