/root/repo/target/debug/examples/sports_highlights-de2fc0a78bc824aa.d: examples/sports_highlights.rs

/root/repo/target/debug/examples/sports_highlights-de2fc0a78bc824aa: examples/sports_highlights.rs

examples/sports_highlights.rs:
