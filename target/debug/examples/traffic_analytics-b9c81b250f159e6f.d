/root/repo/target/debug/examples/traffic_analytics-b9c81b250f159e6f.d: examples/traffic_analytics.rs

/root/repo/target/debug/examples/traffic_analytics-b9c81b250f159e6f: examples/traffic_analytics.rs

examples/traffic_analytics.rs:
