//! The accuracy dial: trade accuracy for throughput (§6.3).
//!
//! ```text
//! cargo run --release --example accuracy_sweep
//! ```
//!
//! Plans the same CrossRight query at targets 0.75 / 0.80 / 0.85 and shows
//! how both Zeus-Sliding and Zeus-RL spend exactly as much accuracy as the
//! query demands — lower targets buy more throughput (Figure 9 / Table 5).

use zeus::core::baselines::QueryEngine;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::ActionQuery;
use zeus::video::video::Split;
use zeus::video::{ActionClass, DatasetKind};

fn main() {
    let dataset = DatasetKind::Bdd100k.generate(0.2, 5);
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "target", "slide F1", "fps", "RL F1", "fps", "speedup"
    );
    println!("{}", "-".repeat(64));

    for target in [0.75f64, 0.80, 0.85] {
        let query = ActionQuery::new(ActionClass::CrossRight, target);
        let planner = QueryPlanner::new(&dataset, PlannerOptions::default());
        let plan = planner.plan(&query);
        let engines = planner.build_engines(&plan);
        let test = dataset.store.split(Split::Test);

        let s = engines.sliding.execute(&test);
        let r = engines.zeus_rl.execute(&test);
        let sf = s.evaluate(&test, &query.classes, plan.protocol).f1();
        let rf = r.evaluate(&test, &query.classes, plan.protocol).f1();
        println!(
            "{target:>6.2} | {sf:>9.3} {:>9.0} | {rf:>9.3} {:>9.0} | {:>7.2}x",
            s.throughput(),
            r.throughput(),
            r.throughput() / s.throughput()
        );
    }
    println!(
        "\nExpected shape (paper Table 5): speedup grows as the target\n\
         loosens at the top of the range, because the RL agent converts\n\
         every point of excess accuracy into faster configurations."
    );
}
