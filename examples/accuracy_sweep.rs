//! The accuracy dial: trade accuracy for throughput (§6.3).
//!
//! ```text
//! cargo run --release --example accuracy_sweep
//! ```
//!
//! Runs the same CrossRight query at targets 0.75 / 0.80 / 0.85 through
//! one [`ZeusSession`] and shows how both Zeus-Sliding and Zeus-RL spend
//! exactly as much accuracy as the query demands — lower targets buy
//! more throughput (Figure 9 / Table 5).

use zeus::prelude::*;

fn main() -> Result<(), ZeusError> {
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .scale(0.2)
        .seed(5)
        .build()?;
    println!(
        "{:>6} | {:>9} {:>9} | {:>9} {:>9} | {:>8}",
        "target", "slide F1", "fps", "RL F1", "fps", "speedup"
    );
    println!("{}", "-".repeat(64));

    for target in [75u32, 80, 85] {
        let zql = format!(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'cross-right' AND accuracy >= {target}%"
        );
        let s = session
            .query(&zql)?
            .executor(ExecutorKind::ZeusSliding)
            .run()?;
        let r = session.query(&zql)?.executor(ExecutorKind::ZeusRl).run()?;
        println!(
            "  0.{target} | {:>9.3} {:>9.0} | {:>9.3} {:>9.0} | {:>7.2}x",
            s.result.f1,
            s.result.throughput_fps,
            r.result.f1,
            r.result.throughput_fps,
            r.result.throughput_fps / s.result.throughput_fps
        );
    }
    println!(
        "\nExpected shape (paper Table 5): speedup grows as the target\n\
         loosens at the top of the range, because the RL agent converts\n\
         every point of excess accuracy into faster configurations."
    );
    Ok(())
}
