//! Walkthrough of the `zeus-serve` serving layer: plan once, serve many.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The flow below mirrors a production deployment: an offline planning
//! step trains and installs query plans, a server is started over a
//! corpus and a pool of simulated devices, clients submit SQL-ish action
//! queries at different priorities, and results stream back per video.

use zeus::core::query::parse_query;
use zeus::prelude::*;
use zeus::serve::ResponseEvent;

fn main() {
    // A small BDD100K corpus; scale 0.2 keeps the example under a
    // minute including planning.
    let (scale, seed) = (0.2, 33u64);
    let dataset = DatasetKind::Bdd100k.generate(scale, seed);

    // --- Offline: plan the queries we intend to serve. -----------------
    let sql = "SELECT segment_ids FROM UDF(video) \
               WHERE action_class = 'cross-right' AND accuracy >= 85%";
    let query = parse_query(sql).expect("valid query");

    let mut options = PlannerOptions {
        seed,
        ..PlannerOptions::default()
    };
    options.trainer.episodes = 2; // example-sized training
    options.trainer.warmup = 64;
    options.candidates.truncate(1);

    println!("planning `{sql}` (one-time cost, amortized by the catalog)...");
    let planner = QueryPlanner::new(&dataset, options);
    let plan = planner.plan(&query);

    let plans = PlanStore::in_memory();
    plans.install(&plan, seed).expect("install plan");

    // --- Online: start the server and submit concurrent queries. -------
    let server = ZeusServer::start(
        &dataset,
        CorpusId::new(DatasetKind::Bdd100k, scale, seed),
        plans,
        ServeConfig {
            workers: 4,
            // The example trains a deliberately tiny RL policy, so serve
            // the statically-planned engine; swap in `ZeusRl` after a
            // full `zeus plan` run.
            executor: ExecutorKind::ZeusSliding,
            ..ServeConfig::default()
        },
    );

    // An interactive client streams per-video results as devices finish.
    println!("\ninteractive query, streamed results:");
    let stream = server
        .submit(query.clone(), Priority::Interactive)
        .expect("admitted");
    while let Some(event) = stream.recv() {
        match event {
            ResponseEvent::Video {
                video,
                segments,
                device,
            } => {
                println!(
                    "  {video:?} -> {} segment(s) on device {device:?}",
                    segments.len()
                );
            }
            ResponseEvent::Done(outcome) => {
                println!(
                    "  done: F1 {:.3} at {:.0} simulated fps, latency {:.2} ms",
                    outcome.result.f1,
                    outcome.result.throughput_fps,
                    outcome.latency.as_secs_f64() * 1e3
                );
                break;
            }
        }
    }

    // A burst of repeat queries: the first execution populated the LRU
    // result cache, so these are answered without touching a device.
    println!("\nburst of 32 repeat queries:");
    let outcomes: Vec<_> = (0..32)
        .map(|i| {
            let priority = Priority::ALL[i % 3];
            server
                .submit(query.clone(), priority)
                .expect("admitted")
                .wait()
        })
        .collect();
    let cached = outcomes.iter().filter(|o| o.from_cache).count();
    println!("  {cached}/32 served from cache");

    let metrics = server.metrics();
    println!("\nserving telemetry:\n{metrics}");

    server.shutdown();
}
