//! Walkthrough of the `zeus-serve` serving layer through the session
//! façade: plan once, serve many.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The flow mirrors a production deployment: a [`ZeusSession`] plans the
//! queries it intends to serve (offline, one-time cost), then starts a
//! server sharing the session's plan store. Clients submit extended-ZQL
//! queries — `latency_budget` picks their admission priority, `WINDOW`
//! and `LIMIT` shape the streamed answer — and results stream back per
//! video.

use zeus::prelude::*;
use zeus::serve::ResponseEvent;

fn main() -> Result<(), ZeusError> {
    // A small BDD100K corpus; scale 0.2 keeps the example under a
    // minute including planning.
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 2; // example-sized training
    options.trainer.warmup = 64;
    options.candidates.truncate(1);

    let session = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .scale(0.2)
        .seed(33)
        .planner(options)
        // The example trains a deliberately tiny RL policy, so serve the
        // statically-planned engine; use `ZeusRl` after a full plan run.
        .executor(ExecutorKind::ZeusSliding)
        .build()?;

    // --- Offline: plan the query we intend to serve. --------------------
    let sql = "SELECT segment_ids FROM UDF(video) \
               WHERE action_class = 'cross-right' AND accuracy >= 85%";
    println!("planning `{sql}` (one-time cost, amortized by the plan store)...");
    let query = session.query(sql)?;
    query.plan()?;

    // --- Online: start the server over the session's plan store. --------
    let server = session.serve(ServeConfig {
        workers: 4,
        executor: ExecutorKind::ZeusSliding,
        ..ServeConfig::default()
    })?;

    // An interactive client submits the extended form: a tight latency
    // budget routes it to the interactive admission class, and the WINDOW
    // clause masks segments outside the first 600 frames of each video.
    let extended = session.query(&format!(
        "{sql} AND latency_budget <= 100ms WINDOW [0, 600]"
    ))?;
    println!("\ninteractive query, streamed results:");
    let stream = server.submit_ir(extended.ir(), None)?;
    while let Some(event) = stream.recv() {
        match event {
            ResponseEvent::Video {
                video,
                segments,
                device,
            } => {
                if !segments.is_empty() {
                    println!(
                        "  {video:?} -> {} segment(s) on device {device:?}",
                        segments.len()
                    );
                }
            }
            ResponseEvent::Done(outcome) => {
                println!(
                    "  done ({} priority): F1 {:.3} at {:.0} simulated fps, \
                     latency {:.2} ms, {} windowed segment(s)",
                    outcome.priority,
                    outcome.result.f1,
                    outcome.result.throughput_fps,
                    outcome.latency.as_secs_f64() * 1e3,
                    outcome.answer.len(),
                );
                break;
            }
        }
    }

    // A burst of repeat queries: the first execution populated the LRU
    // result cache, so these are answered without touching a device —
    // including differently-refined views of the same core query.
    println!("\nburst of 32 repeat queries (mixed refinements):");
    let outcomes: Vec<_> = (0..32)
        .map(|i| {
            let zql = match i % 3 {
                0 => sql.to_string(),
                1 => format!("{sql} LIMIT 3"),
                _ => format!("{sql} ORDER BY confidence LIMIT 1"),
            };
            let query = session.query(&zql).expect("valid template");
            server
                .submit_ir(query.ir(), Some(Priority::ALL[i % 3]))
                .expect("admitted")
                .wait()
        })
        .collect();
    let cached = outcomes.iter().filter(|o| o.from_cache).count();
    let limited = outcomes.iter().filter(|o| o.answer.len() <= 3).count();
    println!("  {cached}/32 served from cache; {limited}/32 refined by LIMIT");

    let metrics = server.metrics();
    println!("\nserving telemetry:\n{metrics}");

    server.shutdown();
    Ok(())
}
