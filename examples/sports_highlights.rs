//! Sports-highlights scenario: localizing pole vaults in untrimmed
//! Thumos14-like footage.
//!
//! ```text
//! cargo run --release --example sports_highlights
//! ```
//!
//! Dense-action corpora (40% of frames are actions) stress a different
//! regime than dash-cam footage: the agent must exploit the *long* action
//! durations with long, coarsely-sampled segments instead of sprinting
//! through empty video. The highlight reel uses the extended dialect —
//! `ORDER BY confidence LIMIT 8` returns the eight most confident vaults.
//! The tail of the example demonstrates the inter-video parallel executor
//! extension (§6.4) via the session's plan.

use zeus::core::parallel::execute_parallel;
use zeus::prelude::*;
use zeus::video::video::Split;

fn main() -> Result<(), ZeusError> {
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Thumos14)
        .scale(0.1)
        .seed(11)
        .build()?;
    let zql = "SELECT segment_ids FROM UDF(video) \
               WHERE action_class = 'pole-vault' AND accuracy >= 75%";
    println!(
        "Thumos14-like corpus: {} videos / {} frames; query: {}",
        session.source().store().len(),
        session.source().store().total_frames(),
        session.query(zql)?.to_sql()
    );

    let sliding = session
        .query(zql)?
        .executor(ExecutorKind::ZeusSliding)
        .run()?;
    let rl = session.query(zql)?.executor(ExecutorKind::ZeusRl).run()?;
    println!(
        "\nZeus-Sliding  F1 {:.3} @ {:>7.0} fps\nZeus-RL       F1 {:.3} @ {:>7.0} fps ({:.1}x faster)",
        sliding.result.f1,
        sliding.result.throughput_fps,
        rl.result.f1,
        rl.result.throughput_fps,
        rl.result.throughput_fps / sliding.result.throughput_fps
    );

    // Highlight reel: the eight most confident pole-vault segments.
    let reel = session
        .query(&format!("{zql} ORDER BY confidence LIMIT 8"))?
        .run()?;
    println!("\nhighlights (video, mm:ss.s - mm:ss.s, confidence):");
    let fps = 30.0;
    let ts = |f: usize| {
        let secs = f as f64 / fps;
        format!("{:02}:{:04.1}", (secs / 60.0) as u32, secs % 60.0)
    };
    for hit in &reel.answer {
        println!(
            "  {:?}  {} - {}  conf {:.3}",
            hit.video,
            ts(hit.start),
            ts(hit.end),
            hit.confidence
        );
    }

    // §6.4 extension: batch across videos onto multiple simulated
    // devices, reusing the session's trained plan (the full plan — the
    // engine set needs its profile table).
    let plan = session.query(zql)?.train()?;
    let planner = QueryPlanner::new(session.source(), PlannerOptions::default());
    let engines = planner.build_engines(&plan);
    let test = session.source().store().split(Split::Test);
    println!("\ninter-video parallelism (§6.4):");
    for workers in [1usize, 2, 4] {
        let par = execute_parallel(&engines.zeus_rl, &test, workers);
        println!(
            "  {workers} device(s): {:>7.0} effective fps ({:.2}x)",
            par.parallel_throughput(),
            par.speedup()
        );
    }
    Ok(())
}
