//! Sports-highlights scenario: localizing pole vaults in untrimmed
//! Thumos14-like footage.
//!
//! ```text
//! cargo run --release --example sports_highlights
//! ```
//!
//! Dense-action corpora (40% of frames are actions) stress a different
//! regime than dash-cam footage: the agent must exploit the *long* action
//! durations with long, coarsely-sampled segments instead of sprinting
//! through empty video. This example also demonstrates the inter-video
//! parallel executor extension (§6.4).

use zeus::core::baselines::QueryEngine;
use zeus::core::parallel::execute_parallel;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::ActionQuery;
use zeus::video::video::Split;
use zeus::video::{ActionClass, DatasetKind};

fn main() {
    let dataset = DatasetKind::Thumos14.generate(0.1, 11);
    let query = ActionQuery::new(ActionClass::PoleVault, 0.75);
    println!(
        "Thumos14-like corpus: {} videos / {} frames; query: {}",
        dataset.store.len(),
        dataset.store.total_frames(),
        query.to_sql()
    );

    let planner = QueryPlanner::new(&dataset, PlannerOptions::default());
    let plan = planner.plan(&query);
    println!(
        "sliding config {}; RL action space {} configurations",
        plan.sliding_config,
        plan.space.len()
    );

    let engines = planner.build_engines(&plan);
    let test = dataset.store.split(Split::Test);

    let sliding = engines.sliding.execute(&test);
    let rl = engines.zeus_rl.execute(&test);
    let rs = sliding.evaluate(&test, &query.classes, plan.protocol);
    let rr = rl.evaluate(&test, &query.classes, plan.protocol);
    println!(
        "\nZeus-Sliding  F1 {:.3} @ {:>7.0} fps\nZeus-RL       F1 {:.3} @ {:>7.0} fps ({:.1}x faster)",
        rs.f1(),
        sliding.throughput(),
        rr.f1(),
        rl.throughput(),
        rl.throughput() / sliding.throughput()
    );

    // Highlight reel: the detected pole-vault segments with timestamps.
    println!("\nhighlights (video, mm:ss.s - mm:ss.s):");
    let fps = 30.0;
    let mut shown = 0;
    for (id, segments) in rl.output_segments() {
        for (s, e) in segments {
            let ts = |f: usize| {
                let secs = f as f64 / fps;
                format!("{:02}:{:04.1}", (secs / 60.0) as u32, secs % 60.0)
            };
            println!("  {:?}  {} - {}", id, ts(s), ts(e));
            shown += 1;
            if shown >= 8 {
                break;
            }
        }
        if shown >= 8 {
            break;
        }
    }

    // §6.4 extension: batch across videos onto multiple simulated devices.
    println!("\ninter-video parallelism (§6.4):");
    for workers in [1usize, 2, 4] {
        let par = execute_parallel(&engines.zeus_rl, &test, workers);
        println!(
            "  {workers} device(s): {:>7.0} effective fps ({:.2}x)",
            par.parallel_throughput(),
            par.speedup()
        );
    }
}
