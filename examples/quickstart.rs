//! Five-minute tour of the Zeus public API: one session, one ZQL
//! string, one answer set.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! A [`ZeusSession`] hides the machinery the paper describes (corpus
//! generation, configuration profiling, DQN training, executor
//! construction) behind a declarative façade: write the §1 query with an
//! accuracy target, and the system picks the plan.

use zeus::prelude::*;

fn main() -> Result<(), ZeusError> {
    // 1. A session bound to a small synthetic BDD100K-like corpus.
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .scale(0.4)
        .seed(42)
        .build()?;
    println!(
        "corpus: {} videos, {} frames",
        session.source().store().len(),
        session.source().store().total_frames()
    );

    // 2. The paper's §1 query in extended ZQL: rank the localized
    //    segments by confidence and keep the ten best.
    let query = session.query(
        "SELECT segment_ids FROM UDF(video) \
         WHERE action_class = 'cross-right' AND accuracy >= 85% \
         ORDER BY confidence LIMIT 10",
    )?;
    println!("query: {}", query.to_sql());

    // 3. Run it. The session profiles 64 configurations, trains the DQN
    //    agent, and executes with the RL engine — all behind `run()`.
    let response = query.run()?;
    println!(
        "\n{}: F1 {:.3} (P {:.2} / R {:.2}) at {:.0} fps",
        response.result.method,
        response.result.f1,
        response.result.precision,
        response.result.recall,
        response.result.throughput_fps,
    );

    // 4. The query's answer: the refined, ranked segment set.
    println!("\nlocalized segments (video, start..end, confidence):");
    for hit in &response.answer {
        println!(
            "  {:?}  {:>6}..{:<6}  conf {:.3}",
            hit.video, hit.start, hit.end, hit.confidence
        );
    }

    // 5. The same query, streamed: videos execute lazily as the
    //    iterator advances, and the LIMIT short-circuits the corpus.
    println!("\nstreaming (first three videos with hits):");
    let mut shown = 0;
    for video in session
        .query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'cross-right' AND accuracy >= 85% LIMIT 10",
        )?
        .run_streaming()?
    {
        if video.segments.is_empty() {
            continue;
        }
        println!(
            "  {:?}: {} segment(s) in {:.2} simulated s",
            video.video,
            video.segments.len(),
            video.simulated_secs
        );
        shown += 1;
        if shown >= 3 {
            break;
        }
    }
    Ok(())
}
