//! Five-minute tour of the Zeus public API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Parses a SQL-ish action query, generates a small synthetic driving
//! corpus, plans the query (profiles configurations, trains the DQN
//! agent), executes it with the RL executor, and prints the localized
//! segments.

use zeus::core::baselines::QueryEngine;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::parse_query;
use zeus::core::ExecutorKind;
use zeus::video::video::Split;
use zeus::video::DatasetKind;

fn main() {
    // 1. The paper's §1 query, verbatim dialect.
    let query = parse_query(
        "SELECT segment_ids FROM UDF(video) \
         WHERE action_class = 'cross-right' AND accuracy >= 85%",
    )
    .expect("valid action query");
    println!("query: {}", query.to_sql());

    // 2. A small synthetic BDD100K-like corpus (see zeus-video).
    let dataset = DatasetKind::Bdd100k.generate(0.4, 42);
    println!(
        "corpus: {} videos, {} frames",
        dataset.store.len(),
        dataset.store.total_frames()
    );

    // 3. Plan: profile 64 configurations, pick the static config, train
    //    the DQN agent with accuracy-aware aggregate rewards.
    let planner = QueryPlanner::new(&dataset, PlannerOptions::default());
    let plan = planner.plan(&query);
    println!(
        "planned: {} Pareto configs, sliding config {}, max accuracy {:.2}",
        plan.space.len(),
        plan.sliding_config,
        plan.max_accuracy
    );

    // 4. Execute with the RL executor on the test split.
    let engines = planner.build_engines(&plan);
    let test = dataset.store.split(Split::Test);
    let exec = engines.zeus_rl.execute(&test);
    let report = exec.evaluate(&test, &query.classes, plan.protocol);

    println!(
        "\n{}: F1 {:.3} (P {:.2} / R {:.2}) at {:.0} fps over {} frames",
        ExecutorKind::ZeusRl,
        report.f1(),
        report.precision(),
        report.recall(),
        exec.throughput(),
        exec.total_frames()
    );

    // 5. The query's answer: localized segments.
    let mut shown = 0;
    println!("\nlocalized segments (video, start..end):");
    for (video, segments) in exec.output_segments() {
        for (s, e) in segments {
            println!("  {:?}  {s:>6}..{e:<6}", video);
            shown += 1;
            if shown >= 10 {
                println!("  ...");
                return;
            }
        }
    }
}
