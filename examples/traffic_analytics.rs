//! Traffic-analytics scenario: the paper's motivating use case (§1).
//!
//! ```text
//! cargo run --release --example traffic_analytics
//! ```
//!
//! A traffic analyst wants every pedestrian left-to-right crossing and
//! every left turn from a dash-cam corpus, at 85% accuracy, as fast as
//! possible. This example plans both queries and compares all five
//! §6.1 techniques head-to-head, reproducing the Figure 8 layout for
//! BDD100K.

use zeus::core::baselines::QueryEngine;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::ActionQuery;
use zeus::video::video::Split;
use zeus::video::{ActionClass, DatasetKind};

fn main() {
    let dataset = DatasetKind::Bdd100k.generate(0.2, 7);
    println!(
        "BDD100K-like corpus: {} videos / {} frames\n",
        dataset.store.len(),
        dataset.store.total_frames()
    );

    for class in [ActionClass::CrossRight, ActionClass::LeftTurn] {
        let query = ActionQuery::new(class, 0.85);
        println!(
            "=== {} (target {:.0}%) ===",
            class,
            query.target_accuracy * 100.0
        );

        let planner = QueryPlanner::new(&dataset, PlannerOptions::default());
        let plan = planner.plan(&query);
        let engines = planner.build_engines(&plan);
        let test = dataset.store.split(Split::Test);

        let runs: Vec<(&str, zeus::core::ExecutionResult)> = vec![
            ("Frame-PP", engines.frame_pp.execute(&test)),
            ("Segment-PP", engines.segment_pp.execute(&test)),
            ("Zeus-Sliding", engines.sliding.execute(&test)),
            ("Zeus-Heuristic", engines.heuristic.execute(&test)),
            ("Zeus-RL", engines.zeus_rl.execute(&test)),
        ];
        println!(
            "{:<15} {:>6} {:>6} {:>6} {:>9}",
            "method", "F1", "P", "R", "fps"
        );
        for (name, exec) in runs {
            let r = exec.evaluate(&test, &query.classes, plan.protocol);
            println!(
                "{name:<15} {:>6.3} {:>6.2} {:>6.2} {:>9.0}",
                r.f1(),
                r.precision(),
                r.recall(),
                exec.throughput()
            );
        }
        println!();
    }
    println!(
        "Reading guide: Zeus-RL should sit top-right — near the accuracy of\n\
         Zeus-Sliding at a multiple of its throughput, while Frame-PP is slow\n\
         AND inaccurate on these temporal classes (motion direction is\n\
         invisible in single frames)."
    );
}
