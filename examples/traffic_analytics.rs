//! Traffic-analytics scenario: the paper's motivating use case (§1).
//!
//! ```text
//! cargo run --release --example traffic_analytics
//! ```
//!
//! A traffic analyst wants every pedestrian left-to-right crossing and
//! every left turn from a dash-cam corpus, at 85% accuracy, as fast as
//! possible. One [`ZeusSession`] runs both queries with all five §6.1
//! techniques head-to-head, reproducing the Figure 8 layout for BDD100K.

use zeus::prelude::*;

fn main() -> Result<(), ZeusError> {
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .scale(0.2)
        .seed(7)
        .build()?;
    println!(
        "BDD100K-like corpus: {} videos / {} frames\n",
        session.source().store().len(),
        session.source().store().total_frames()
    );

    for class in ["cross-right", "left-turn"] {
        let zql = format!(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = '{class}' AND accuracy >= 85%"
        );
        println!("=== {class} (target 85%) ===");
        println!(
            "{:<15} {:>6} {:>6} {:>6} {:>9}",
            "method", "F1", "P", "R", "fps"
        );
        for executor in ExecutorKind::ALL {
            let r = session.query(&zql)?.executor(executor).run()?;
            println!(
                "{:<15} {:>6.3} {:>6.2} {:>6.2} {:>9.0}",
                r.result.method,
                r.result.f1,
                r.result.precision,
                r.result.recall,
                r.result.throughput_fps
            );
        }
        println!();
    }
    println!(
        "Reading guide: Zeus-RL should sit top-right — near the accuracy of\n\
         Zeus-Sliding at a multiple of its throughput, while Frame-PP is slow\n\
         AND inaccurate on these temporal classes (motion direction is\n\
         invisible in single frames)."
    );
    Ok(())
}
