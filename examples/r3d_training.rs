//! The real-CNN path: train `R3dLite` on rendered pixels, end to end in
//! pure Rust.
//!
//! ```text
//! cargo run --release --example r3d_training
//! ```
//!
//! The benchmark harness uses a calibrated behavioural APFG (see
//! DESIGN.md), but the full pixel path exists and learns: this example
//! renders synthetic video segments through the scene model, trains the
//! small 3D-CNN with softmax cross-entropy, and reports train/held-out
//! accuracy — the miniature analogue of the paper's §5 APFG fine-tuning.

use zeus::apfg::r3d_lite::{build_training_set, R3dLite, R3dLiteGenerator};
use zeus::apfg::{Configuration, FeatureGenerator};
use zeus::video::{ActionClass, DatasetKind};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    // Tiny corpus; pixels are rendered on demand by the scene model.
    let dataset = DatasetKind::Bdd100k.generate(0.05, 21);
    let videos: Vec<&zeus::video::Video> = dataset.store.videos().iter().collect();
    let (train, held) = videos.split_at(videos.len() / 2);

    // 16x16 pixels, 3 frames sampled every 4 — small but real 3D input.
    let config = Configuration::new(16, 4, 2);
    let classes = [
        ActionClass::CrossRight,
        ActionClass::CrossLeft,
        ActionClass::LeftTurn,
    ];
    let balance = |mut set: Vec<(Vec<f32>, [usize; 4], bool)>| {
        // Keep a 1:1 positive/negative ratio so the net cannot win by
        // predicting the majority class.
        let pos = set.iter().filter(|s| s.2).count();
        let mut neg_kept = 0;
        set.retain(|s| {
            if s.2 {
                true
            } else {
                neg_kept += 1;
                neg_kept <= pos
            }
        });
        set
    };
    let train_set = balance(build_training_set(train, &classes, config, 6));
    let held_set = balance(build_training_set(held, &classes, config, 6));
    println!(
        "training set: {} segments ({} positive), held-out: {}",
        train_set.len(),
        train_set.iter().filter(|s| s.2).count(),
        held_set.len()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut net = R3dLite::new(&mut rng);
    let before = net.accuracy(&train_set);
    println!("accuracy before training: {before:.2}");

    for epoch_block in 0..4 {
        let loss = net.fit(&train_set, 10, 0.05);
        let acc = net.accuracy(&train_set);
        println!(
            "after {:>2} epochs: loss {loss:.3}, train accuracy {acc:.2}",
            (epoch_block + 1) * 10
        );
    }
    let held_acc = net.accuracy(&held_set);
    println!("held-out accuracy: {held_acc:.2}");

    // The trained network is a drop-in APFG.
    let generator = R3dLiteGenerator::new(net);
    let video = &dataset.store.videos()[0];
    let out = generator.process(video, 0, config);
    println!(
        "\nAPFG interface: feature dim {}, prediction {}, confidence {:.2}",
        out.feature.len(),
        out.prediction,
        out.confidence
    );
}
