//! The observability plane, end to end: metric registry exactness under
//! contention, span-tree well-formedness across a full
//! `session.query().run()` and a vectorized training round, and the
//! `EXPLAIN ANALYZE` acceptance check (stage sum ≡ measured e2e).

use std::time::Instant;

use zeus::core::metrics::EvalProtocol;
use zeus::core::training::{bench_env, CandidateJob, TrainingEngine, TrainingOptions};
use zeus::obs::{MetricsRegistry, ObsHub};
use zeus::prelude::*;
use zeus::rl::TrainerConfig;

fn fast_options(seed: u64) -> PlannerOptions {
    let mut options = PlannerOptions {
        seed,
        ..PlannerOptions::default()
    };
    options.trainer.episodes = 2;
    options.trainer.warmup = 64;
    options.candidates.truncate(1);
    options
}

fn tiny_session(seed: u64) -> ZeusSession {
    ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .scale(0.05)
        .seed(seed)
        .planner(fast_options(seed))
        .build()
        .expect("session builds")
}

const ZQL: &str = "SELECT segment_ids FROM UDF(video) \
                   WHERE action_class = 'cross-right' AND accuracy >= 85%";

#[test]
fn registry_counters_are_exact_under_contention() {
    let registry = MetricsRegistry::new();
    let threads = 8;
    let per_thread = 25_000u64;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let counter = registry.counter("serve.submitted");
            let hist = registry.histogram("serve.latency_us");
            scope.spawn(move || {
                for i in 0..per_thread {
                    counter.inc();
                    hist.record(i % 1000);
                }
            });
        }
    });
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("serve.submitted"),
        Some(threads * per_thread),
        "counters must be exact under contention, not approximate"
    );
}

#[test]
fn session_query_run_produces_a_well_formed_trace() {
    let session = tiny_session(11);
    let response = session.query(ZQL).expect("parses").run().expect("runs");
    assert!(response.explain.is_none(), "plain query carries no report");

    let traces = session.trace_sink().recent_traces();
    let run = traces
        .iter()
        .find(|t| t.label == "session.run")
        .expect("session.run trace published");
    assert!(run.well_formed(), "no orphan or unclosed spans: {run:?}");
    for stage in ["plan", "execute", "refine"] {
        assert!(
            run.spans.iter().any(|s| s.name == stage),
            "stage '{stage}' missing from {run:?}"
        );
    }
    // Training ran under the same hub: the train.* namespace is live.
    let snap = session.snapshot();
    assert!(snap.counter("train.steps").unwrap_or(0) > 0, "{snap}");
    assert!(snap.counter("train.episodes").unwrap_or(0) > 0);
    assert!(snap.counter("train.candidates").unwrap_or(0) > 0);
}

#[test]
fn explain_analyze_stage_sum_matches_measured_e2e() {
    let session = tiny_session(13);
    // Warm the plan so the measured run times execution, not training.
    session.query(ZQL).expect("parses").run().expect("warms");

    let started = Instant::now();
    let response = session
        .query(&format!("EXPLAIN ANALYZE {ZQL}"))
        .expect("parses")
        .run()
        .expect("runs");
    let e2e = started.elapsed();

    let report = response.explain.expect("EXPLAIN ANALYZE carries a report");
    assert_eq!(
        report.stage_sum(),
        report.total,
        "contiguous checkpoints: stage walls must tile the total exactly"
    );
    for stage in ["plan", "execute", "refine"] {
        assert!(report.stage(stage).is_some(), "missing stage {stage}");
    }
    // The report's total is the measured run minus only the (tiny)
    // response assembly around it: within 5% of e2e or 5ms slack.
    let slack = (e2e.as_secs_f64() * 0.05).max(0.005);
    let diff = e2e.saturating_sub(report.total);
    assert!(
        diff.as_secs_f64() <= slack,
        "stage sum {:?} vs measured e2e {e2e:?} (diff {diff:?} > slack {slack:.4}s)",
        report.total,
    );
    assert!(report.device_secs > 0.0, "execution charges device time");
}

#[test]
fn served_explain_covers_every_query_stage() {
    let session = tiny_session(17);
    let query = session.query(ZQL).expect("parses");
    query.plan().expect("plans");
    let server = session
        .serve(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .expect("server starts");

    let ir = QueryIr::from_query(query.ir().base.clone());
    let (outcome, report) = server.explain_ir(&ir, None).expect("explains");
    assert!(!outcome.labels.is_empty());
    assert_eq!(report.stage_sum(), report.total);
    for stage in ["admission", "cache", "plan", "execute", "refine"] {
        assert!(
            report.stage(stage).is_some(),
            "stage '{stage}' missing from served EXPLAIN ANALYZE"
        );
    }
    server.shutdown();

    // The explain request recorded a full, well-formed trace tree.
    let traces = server.trace_sink().recent_traces();
    let explain = traces
        .iter()
        .find(|t| t.label == "serve.explain")
        .expect("serve.explain trace published");
    assert!(explain.well_formed(), "{explain:?}");
}

#[test]
fn train_vec_round_produces_a_well_formed_trace() {
    let hub = ObsHub::new();
    let dataset = DatasetKind::Bdd100k.generate(0.05, 7);
    let proto = bench_env(&dataset, 7).expect("env builds");
    let job = CandidateJob::representative(
        TrainerConfig {
            episodes: 2,
            warmup: 64,
            ..TrainerConfig::default()
        },
        EvalProtocol::for_family(dataset.family()),
        0.85,
        7,
    );
    let engine = TrainingEngine::new(TrainingOptions {
        train_workers: 1,
        vec_envs: 2,
    })
    .with_obs(hub.clone());
    engine.train_candidate(&proto, &job).expect("trains");

    let traces = hub.tracer.recent_traces();
    let vec_trace = traces
        .iter()
        .find(|t| t.label == "train_vec")
        .expect("train_vec trace published");
    assert!(vec_trace.well_formed(), "{vec_trace:?}");
    for stage in ["batch_forward", "update"] {
        assert!(
            vec_trace.spans.iter().any(|s| s.name == stage),
            "stage '{stage}' missing from {vec_trace:?}"
        );
    }
    let snap = hub.metrics.snapshot();
    assert!(snap.counter("train.steps").unwrap_or(0) > 0);
    assert_eq!(snap.counter("train.candidates"), Some(1));
    assert!(snap.counter("train.updates").unwrap_or(0) > 0);
    // The candidate stage aggregate recorded the whole round.
    let stats = hub.tracer.stage_stats();
    let candidate = stats
        .iter()
        .find(|s| s.name == "candidate")
        .expect("candidate stage aggregated");
    assert_eq!(candidate.count, 1);
}

#[test]
fn serving_workload_exports_spans_and_metrics() {
    let session = tiny_session(19);
    let query = session.query(ZQL).expect("parses");
    query.plan().expect("plans");
    let server = session
        .serve(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        })
        .expect("server starts");
    let base = query.ir().base.clone();
    let streams: Vec<_> = (0..20)
        .map(|_| {
            server
                .submit(base.clone(), Priority::Standard)
                .expect("admitted")
        })
        .collect();
    for s in streams {
        let _ = s.wait();
    }
    server.snapshot();
    let jsonl = server.obs().export_jsonl();
    server.shutdown();

    for needle in [
        "\"type\":\"span\"",
        "\"type\":\"stage\"",
        "\"type\":\"metric\"",
        "\"name\":\"serve.admit.shed\"",
        "\"name\":\"cache.result.hit\"",
        "\"name\":\"train.steps\"",
        "\"name\":\"serve.latency_us\"",
    ] {
        assert!(jsonl.contains(needle), "missing {needle} in export");
    }
    // Sampled submissions (id % 16 == 0) published full trace trees.
    let traces = server.trace_sink().recent_traces();
    assert!(
        traces
            .iter()
            .any(|t| t.label == "serve.submit" && t.well_formed()),
        "sampled serve.submit traces must be published and well-formed"
    );
    let snap = server.snapshot();
    assert_eq!(snap.counter("serve.completed"), Some(20));
    // One execution; every duplicate was either answered from the
    // result cache or coalesced onto the in-flight query.
    let answered_cheap = snap.counter("cache.result.hit").unwrap_or(0)
        + snap.counter("serve.coalesced").unwrap_or(0);
    assert!(answered_cheap >= 19, "{snap}");
}
