//! Facade-level integration of the serving subsystem: plan → install →
//! serve concurrently → verify against direct engine execution.

use zeus::core::baselines::QueryEngine;
use zeus::prelude::*;
use zeus::serve::run_open_loop;
use zeus::video::video::Split;
use zeus::video::ActionClass;

fn fast_options(seed: u64) -> PlannerOptions {
    let mut options = PlannerOptions {
        seed,
        ..PlannerOptions::default()
    };
    options.trainer.episodes = 2;
    options.trainer.warmup = 64;
    options.candidates.truncate(1);
    options
}

#[test]
fn serving_through_the_facade_matches_direct_execution() {
    let (scale, seed) = (0.08, 21u64);
    let dataset = DatasetKind::Bdd100k.generate(scale, seed);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();

    let planner = QueryPlanner::new(&dataset, fast_options(seed));
    let plan = planner.plan(&query);
    let engines = planner.build_engines(&plan);

    let plans = PlanStore::in_memory();
    plans
        .install(CorpusId::of(&dataset), &plan, seed)
        .expect("install");

    let server = ZeusServer::start(
        &dataset,
        plans,
        ServeConfig {
            workers: 4,
            executor: ExecutorKind::ZeusRl,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");

    // A burst of concurrent submissions of the same query: one executes,
    // the rest are answered from the result cache, all byte-identical.
    let streams: Vec<_> = (0..24)
        .map(|i| {
            server
                .submit(query.clone(), Priority::ALL[i % 3])
                .expect("admitted")
        })
        .collect();
    let outcomes: Vec<_> = streams.into_iter().map(|s| s.wait()).collect();

    let mut test = dataset.store.split(Split::Test);
    test.sort_by_key(|v| v.id);
    let direct = engines.zeus_rl.execute(&test);
    let mut direct_labels = direct.labels.clone();
    direct_labels.sort_by_key(|(id, _)| *id);

    for outcome in &outcomes {
        assert_eq!(
            outcome.labels, direct_labels,
            "served predictions must match direct engine execution"
        );
        assert_eq!(outcome.result.invocations, direct.clock.events());
        assert!(
            (outcome.result.elapsed_secs - direct.clock.elapsed_secs()).abs() < 1e-9,
            "simulated time must agree with direct execution"
        );
    }
    let metrics = server.metrics();
    assert_eq!(
        metrics.cache_misses, 1,
        "a concurrent burst of one identical query must execute exactly once"
    );
    assert!(
        metrics.cache_hits + metrics.coalesced >= 23,
        "the rest must be answered from cache or coalesced: {} + {}",
        metrics.cache_hits,
        metrics.coalesced
    );
    server.shutdown();
}

#[test]
fn open_loop_workload_reports_latency_percentiles() {
    let (scale, seed) = (0.08, 21u64);
    let dataset = DatasetKind::Bdd100k.generate(scale, seed);
    let query = ActionQuery::new(ActionClass::LeftTurn, 0.80).unwrap();

    let planner = QueryPlanner::new(&dataset, fast_options(seed));
    let plan = planner.plan(&query);
    let plans = PlanStore::in_memory();
    plans
        .install(CorpusId::of(&dataset), &plan, seed)
        .expect("install");

    let server = ZeusServer::start(
        &dataset,
        plans,
        ServeConfig {
            workers: 4,
            executor: ExecutorKind::ZeusSliding,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let spec = WorkloadSpec::new(vec![query], 50, 99);
    let report = run_open_loop(&server, &spec, 400.0);
    let metrics = server.metrics();
    server.shutdown();

    assert_eq!(report.outcomes.len(), 50 - report.shed);
    assert_eq!(metrics.completed as usize, report.outcomes.len());
    assert!(metrics.p50 <= metrics.p99);
    assert!(metrics.throughput_qps > 0.0);
    assert!(metrics.cache_hit_rate() > 0.0, "repeats must hit the cache");
}
