//! End-to-end integration: plan → engines → execute → evaluate, across
//! all five techniques on a small corpus.

use zeus::core::baselines::QueryEngine;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::ActionQuery;
use zeus::rl::EpsilonSchedule;
use zeus::video::video::Split;
use zeus::video::{ActionClass, DatasetKind};

/// Fast planner options for integration tests: less training, same shape.
fn test_options() -> PlannerOptions {
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 4;
    options.trainer.warmup = 128;
    options.trainer.epsilon = EpsilonSchedule::new(1.0, 0.1, 1_500);
    options.candidates.truncate(2);
    options
}

#[test]
fn full_pipeline_produces_consistent_results() {
    let dataset = DatasetKind::Bdd100k.generate(0.2, 33);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, test_options());
    let plan = planner.plan(&query);

    // Plan sanity.
    assert_eq!(
        plan.profiles.len(),
        64,
        "all Table-4 configurations must be profiled"
    );
    assert!(plan.max_accuracy > 0.5, "profiling found no usable config");
    assert!(
        plan.space.len() <= 8,
        "executor space should be the thinned Pareto frontier"
    );

    let engines = planner.build_engines(&plan);
    let test = dataset.store.split(Split::Test);
    assert!(!test.is_empty());
    let total: usize = test.iter().map(|v| v.num_frames).sum();

    // Every engine must label every frame and charge simulated time.
    let runs = [
        engines.frame_pp.execute(&test),
        engines.segment_pp.execute(&test),
        engines.sliding.execute(&test),
        engines.heuristic.execute(&test),
        engines.zeus_rl.execute(&test),
    ];
    for exec in &runs {
        assert_eq!(exec.total_frames() as usize, total);
        assert!(exec.clock.elapsed_secs() > 0.0);
        let report = exec.evaluate(&test, &query.classes, plan.protocol);
        assert!(report.f1() >= 0.0 && report.f1() <= 1.0);
    }

    // Qualitative orderings the paper establishes (§6.2):
    let fps: Vec<f64> = runs.iter().map(|r| r.throughput()).collect();
    // Frame-PP is the slowest technique.
    assert!(
        fps[0] < fps[2] && fps[0] < fps[4],
        "Frame-PP must be slower than segment-level methods: {fps:?}"
    );
    // Adaptive Zeus-RL beats static sliding on throughput.
    assert!(
        fps[4] > fps[2],
        "Zeus-RL ({}) must out-throughput Zeus-Sliding ({})",
        fps[4],
        fps[2]
    );
}

#[test]
fn zeus_rl_approaches_the_accuracy_target() {
    let dataset = DatasetKind::Bdd100k.generate(0.3, 11);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, PlannerOptions::default());
    let plan = planner.plan(&query);
    let engines = planner.build_engines(&plan);
    let test = dataset.store.split(Split::Test);

    let exec = engines.zeus_rl.execute(&test);
    let report = exec.evaluate(&test, &query.classes, plan.protocol);
    let sliding = engines.sliding.execute(&test);
    let sliding_report = sliding.evaluate(&test, &query.classes, plan.protocol);

    // Accuracy lands in the target's neighbourhood (the paper meets it;
    // at this reduced corpus scale the policy generalization gap
    // documented in EXPERIMENTS.md applies to this test corpus too).
    assert!(
        report.f1() > query.target_accuracy - 0.3,
        "Zeus-RL F1 {} too far below target {}",
        report.f1(),
        query.target_accuracy
    );
    // The headline trade: Zeus-RL must not be Pareto-dominated by
    // Zeus-Sliding — it wins on throughput, accuracy, or both. (At full
    // bench scale it wins on throughput at comparable accuracy; on this
    // reduced corpus the validation split can luck Sliding into a fast
    // config, so the test asserts the dominance relation rather than a
    // fixed ordering.)
    assert!(
        exec.throughput() > sliding.throughput() || report.f1() > sliding_report.f1(),
        "Zeus-RL (F1 {:.3} @ {:.0} fps) is dominated by Zeus-Sliding (F1 {:.3} @ {:.0} fps)",
        report.f1(),
        exec.throughput(),
        sliding_report.f1(),
        sliding.throughput()
    );
}

#[test]
fn segment_pp_fails_on_complex_classes_but_not_easy_ones() {
    // §6.2: Segment-PP's light filter caps hard classes (PoleVault) while
    // doing OK on the easy LeftTurn.
    let bdd = DatasetKind::Bdd100k.generate(0.2, 13);
    let thumos = DatasetKind::Thumos14.generate(0.1, 13);

    let run = |dataset: &zeus::video::SyntheticDataset, class: ActionClass, target: f64| {
        let query = ActionQuery::new(class, target).unwrap();
        let planner = QueryPlanner::new(dataset, test_options());
        let plan = planner.plan(&query);
        let engines = planner.build_engines(&plan);
        let test = dataset.store.split(Split::Test);
        let exec = engines.segment_pp.execute(&test);
        exec.evaluate(&test, &query.classes, plan.protocol).f1()
    };

    let easy = run(&bdd, ActionClass::LeftTurn, 0.85);
    let hard = run(&thumos, ActionClass::PoleVault, 0.75);
    assert!(
        easy > hard,
        "Segment-PP should do better on LeftTurn ({easy}) than PoleVault ({hard})"
    );
    assert!(
        hard < 0.65,
        "hard-class Segment-PP should be capped: {hard}"
    );
}

#[test]
fn multi_class_union_query_runs_end_to_end() {
    // §6.5 multi-class training.
    let dataset = DatasetKind::Bdd100k.generate(0.2, 17);
    let query =
        ActionQuery::multi(vec![ActionClass::CrossRight, ActionClass::CrossLeft], 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, test_options());
    let plan = planner.plan(&query);
    let engines = planner.build_engines(&plan);
    let test = dataset.store.split(Split::Test);
    let exec = engines.zeus_rl.execute(&test);
    let report = exec.evaluate(&test, &query.classes, plan.protocol);
    assert!(report.f1() > 0.3, "union query collapsed: {}", report.f1());
}

#[test]
fn output_segments_overlap_ground_truth() {
    let dataset = DatasetKind::Bdd100k.generate(0.2, 19);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, test_options());
    let plan = planner.plan(&query);
    let engines = planner.build_engines(&plan);
    let test = dataset.store.split(Split::Test);
    let exec = engines.sliding.execute(&test);

    // At least half of the returned segments must overlap a true action.
    let mut overlapping = 0usize;
    let mut total = 0usize;
    for (id, segments) in exec.output_segments() {
        let video = test.iter().find(|v| v.id == id).unwrap();
        for (s, e) in segments {
            total += 1;
            if video.any_action_in(&query.classes, s, e) {
                overlapping += 1;
            }
        }
    }
    if total > 0 {
        assert!(
            overlapping * 2 >= total,
            "only {overlapping}/{total} output segments overlap ground truth"
        );
    }
}
