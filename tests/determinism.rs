//! Determinism: the whole pipeline is bit-reproducible for fixed seeds —
//! the property the benchmark harness relies on.

use zeus::core::baselines::QueryEngine;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::ActionQuery;
use zeus::video::video::Split;
use zeus::video::{ActionClass, DatasetKind};

fn fast_options() -> PlannerOptions {
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 3;
    options.trainer.warmup = 128;
    options.candidates.truncate(1);
    options
}

#[test]
fn planning_and_execution_are_bit_reproducible() {
    let run = || {
        let dataset = DatasetKind::Bdd100k.generate(0.12, 77);
        let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
        let planner = QueryPlanner::new(&dataset, fast_options());
        let plan = planner.plan(&query);
        let engines = planner.build_engines(&plan);
        let test = dataset.store.split(Split::Test);
        let exec = engines.zeus_rl.execute(&test);
        let report = exec.evaluate(&test, &query.classes, plan.protocol);
        (
            plan.sliding_config,
            plan.max_accuracy.to_bits(),
            exec.clock.elapsed_secs().to_bits(),
            report.f1().to_bits(),
            exec.labels.clone(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "sliding config must be deterministic");
    assert_eq!(a.1, b.1, "max accuracy must be bit-identical");
    assert_eq!(a.2, b.2, "simulated time must be bit-identical");
    assert_eq!(a.3, b.3, "F1 must be bit-identical");
    assert_eq!(a.4, b.4, "per-frame labels must be identical");
}

#[test]
fn different_seeds_change_the_corpus_but_not_the_contracts() {
    for seed in [1u64, 2, 3] {
        let dataset = DatasetKind::Thumos14.generate(0.05, seed);
        let query = ActionQuery::new(ActionClass::PoleVault, 0.75).unwrap();
        let planner = QueryPlanner::new(&dataset, fast_options());
        let plan = planner.plan(&query);
        assert_eq!(plan.profiles.len(), 27);
        assert!(plan.space.len() >= 2);
        assert!(plan.max_accuracy > 0.0 && plan.max_accuracy <= 1.0);
    }
}

#[test]
fn engines_are_pure_given_the_same_video() {
    let dataset = DatasetKind::Bdd100k.generate(0.12, 5);
    let query = ActionQuery::new(ActionClass::LeftTurn, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, fast_options());
    let plan = planner.plan(&query);
    let engines = planner.build_engines(&plan);
    let video = &dataset.store.videos()[0];

    let mut clock_a = zeus::sim::SimClock::new();
    let mut hist_a = zeus::core::ConfigHistogram::new();
    let a = engines
        .zeus_rl
        .execute_video(video, &mut clock_a, &mut hist_a);

    let mut clock_b = zeus::sim::SimClock::new();
    let mut hist_b = zeus::core::ConfigHistogram::new();
    let b = engines
        .zeus_rl
        .execute_video(video, &mut clock_b, &mut hist_b);

    assert_eq!(a, b);
    assert_eq!(
        clock_a.elapsed_secs().to_bits(),
        clock_b.elapsed_secs().to_bits()
    );
}
