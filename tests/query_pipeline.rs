//! Query-language → planner wiring, cross-model/domain-shift paths, and
//! the parallel executor.

use zeus::apfg::simulated::domain_shift;
use zeus::core::baselines::{QueryEngine, ZeusRl};
use zeus::core::parallel::execute_parallel;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::{parse_zql, ActionQuery};
use zeus::sim::CostModel;
use zeus::video::video::Split;
use zeus::video::{ActionClass, DatasetKind};

fn fast_options() -> PlannerOptions {
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 5;
    options.trainer.warmup = 128;
    options.candidates.truncate(2);
    options
}

#[test]
fn parsed_query_drives_the_planner() {
    let query = parse_zql(
        "SELECT segment_ids FROM UDF(video) \
         WHERE action_class = 'pole-vault' AND accuracy >= 0.75",
    )
    .unwrap()
    .base;
    let dataset = DatasetKind::Thumos14.generate(0.05, 3);
    let planner = QueryPlanner::new(&dataset, fast_options());
    let plan = planner.plan(&query);
    assert_eq!(plan.query.classes, vec![ActionClass::PoleVault]);
    assert!((plan.query.target_accuracy - 0.75).abs() < 1e-9);
}

#[test]
fn cross_model_transfer_runs_with_feature_skew() {
    // §6.5: CrossRight agent + CrossLeft APFG.
    let dataset = DatasetKind::Bdd100k.generate(0.15, 9);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, fast_options());
    let plan = planner.plan(&query);

    let similarity =
        zeus::apfg::traits::class_similarity(ActionClass::CrossRight, ActionClass::CrossLeft);
    assert!(similarity >= 0.8, "mirror classes must be similar");
    let apfg = zeus::apfg::SimulatedApfg::new(vec![ActionClass::CrossLeft], 300, 8, 8, 7)
        .with_feature_skew(1.0 - similarity);

    let engine = ZeusRl::new(
        apfg,
        plan.policy.clone(),
        plan.space.clone(),
        plan.init_config,
        CostModel::default(),
    );
    // Evaluate over the whole corpus: the agent never saw CrossLeft
    // labels, and the tiny test split holds too few CrossLeft instances
    // for a meaningful transfer measurement.
    let videos: Vec<&zeus::video::Video> = dataset.store.videos().iter().collect();
    let exec = engine.execute(&videos);
    let report = exec.evaluate(&videos, &[ActionClass::CrossLeft], plan.protocol);
    // Mirror transfer should remain usable (the §6.5 claim): the engine
    // must still find real instances with a lightly-trained test agent.
    assert!(
        report.tp > 0,
        "mirror transfer found nothing (fp {}, fn {})",
        report.fp,
        report.fn_
    );
    assert!(
        report.f1() > 0.1,
        "mirror transfer collapsed: {}",
        report.f1()
    );
}

#[test]
fn domain_shift_reduces_accuracy_consistently() {
    // §6.6: the same plan evaluated in and out of domain.
    let dataset = DatasetKind::Bdd100k.generate(0.2, 21);
    let query = ActionQuery::new(ActionClass::LeftTurn, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, fast_options());
    let plan = planner.plan(&query);
    let test = dataset.store.split(Split::Test);
    let cost = CostModel::default();

    let in_domain = ZeusRl::new(
        plan.apfg.clone(),
        plan.policy.clone(),
        plan.space.clone(),
        plan.init_config,
        cost.clone(),
    );
    let shift = domain_shift(
        DatasetKind::Bdd100k,
        DatasetKind::Kitti,
        &[ActionClass::LeftTurn],
    );
    assert!(shift > 0.0);
    let shifted_engine = ZeusRl::new(
        plan.apfg.clone().with_domain_shift(shift),
        plan.policy.clone(),
        plan.space.clone(),
        plan.init_config,
        cost,
    );

    let f1_in = in_domain
        .execute(&test)
        .evaluate(&test, &query.classes, plan.protocol)
        .f1();
    let f1_out = shifted_engine
        .execute(&test)
        .evaluate(&test, &query.classes, plan.protocol)
        .f1();
    assert!(
        f1_out <= f1_in + 0.05,
        "domain shift should not improve accuracy: {f1_in} -> {f1_out}"
    );
}

#[test]
fn parallel_execution_preserves_results_and_scales() {
    let dataset = DatasetKind::Bdd100k.generate(0.2, 2);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
    let planner = QueryPlanner::new(&dataset, fast_options());
    let plan = planner.plan(&query);
    let engines = planner.build_engines(&plan);
    let videos: Vec<&zeus::video::Video> = dataset.store.videos().iter().collect();

    let seq = engines.sliding.execute(&videos);
    let par = execute_parallel(&engines.sliding, &videos, 4);
    let mut seq_labels = seq.labels.clone();
    seq_labels.sort_by_key(|(id, _)| *id);
    assert_eq!(
        seq_labels, par.merged.labels,
        "parallelism must not change output"
    );
    assert!(
        par.speedup() > 2.0,
        "4 workers should give >2x: {}",
        par.speedup()
    );
}

#[test]
fn knob_masks_restrict_planning() {
    use zeus::core::KnobMask;
    let dataset = DatasetKind::Bdd100k.generate(0.1, 4);
    let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
    let mut options = fast_options();
    options.knob_mask = KnobMask {
        fix_resolution: Some(300),
        ..KnobMask::none()
    };
    let planner = QueryPlanner::new(&dataset, options);
    let plan = planner.plan(&query);
    assert_eq!(plan.profiles.len(), 16, "4x4 configs at fixed resolution");
    assert!(plan.space.configs().iter().all(|c| c.resolution == 300));
}
