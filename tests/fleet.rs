//! Fleet-level integration: rendezvous routing through the session
//! façade, hot plan replication serving from sibling shards, and the
//! fair-share quota gate's fairness contract.

use proptest::prelude::*;
use zeus::api::{FleetConfig, FleetError, QuotaSpec, TenantId};
use zeus::prelude::*;
use zeus::serve::FairShareGate;

fn fast_options() -> PlannerOptions {
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 2;
    options.trainer.warmup = 64;
    options.candidates.truncate(1);
    options
}

/// Two corpora sharded across three shards: routing is corpus-pure and
/// restart-stable, `FROM` routes to the right corpus, a hot corpus gets
/// its plans replicated, and a replica shard serves byte-identical
/// results.
#[test]
fn fleet_routes_replicates_and_serves_identical_results() {
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .dataset(DatasetKind::Thumos14)
        .default_source("bdd100k")
        .scale(0.05)
        .seed(11)
        .planner(fast_options())
        .build()
        .expect("session");

    let sqls = [
        "SELECT segment_ids FROM bdd100k WHERE action_class = 'cross-right' AND accuracy >= 80%",
        "SELECT segment_ids FROM thumos14 WHERE action_class = 'pole-vault' AND accuracy >= 70%",
    ];
    let mut irs = Vec::new();
    for sql in sqls {
        let query = session.query(sql).expect("parse");
        query.plan().expect("plan");
        irs.push(query.ir().clone());
    }

    let config = FleetConfig {
        shards: 3,
        hot_threshold: 8,
        quota: QuotaSpec::per_sec(1e6),
        ..FleetConfig::default()
    };
    let router = session.fleet(config.clone()).expect("fleet");
    let tenant = TenantId::default();

    // Placement is a pure function of (corpus, shard count): a second
    // router over the same session agrees on every primary.
    let restarted = session.fleet(config).expect("fleet again");
    for (name, corpus, primary) in router.corpora() {
        assert_eq!(
            restarted.primary_shard(corpus),
            primary,
            "primary for {name} must be restart-stable"
        );
    }
    drop(restarted);

    // Cold routing: the first submission of each corpus lands on its
    // rendezvous primary, and `FROM` picks the corpus (distinct
    // primaries are not guaranteed, distinct corpora are).
    let corpora = router.corpora();
    assert_eq!(corpora.len(), 2);
    let mut baselines = Vec::new();
    for ir in &irs {
        let routed = router.submit(ir, &tenant, None).expect("routed");
        assert_eq!(
            routed.shard, routed.primary,
            "cold corpus serves from its primary"
        );
        assert!(!routed.replica_hit);
        baselines.push(routed.stream.wait());
    }

    // Drive the bdd100k corpus past the hot threshold: its plans
    // replicate and siblings start answering with identical labels.
    let mut replica_outcomes = 0usize;
    for _ in 0..64 {
        let routed = router.submit(&irs[0], &tenant, None).expect("routed");
        let outcome = routed.stream.wait();
        if routed.replica_hit {
            assert_ne!(routed.shard, routed.primary);
            replica_outcomes += 1;
            assert_eq!(
                outcome.labels, baselines[0].labels,
                "a replica shard must serve byte-identical labels"
            );
        }
    }
    assert!(
        router.is_replicated(corpora[0].1),
        "corpus must go hot after 64 submissions over threshold 8"
    );
    assert!(replica_outcomes > 0, "round-robin must reach a replica");
    let snap = router.fleet_snapshot();
    assert!(snap.counter("fleet.plan.replica_hits").unwrap_or(0) > 0);
    assert!(snap.counter("fleet.plan.replicated").unwrap_or(0) > 0);
    assert_eq!(snap.counter("fleet.shed.under_quota").unwrap_or(0), 0);

    // The rollup merges every shard: fleet-wide submissions cover all
    // 66 requests (failovers may add resubmissions on top).
    assert!(snap.counter("serve.submitted").unwrap_or(0) >= 66);

    // An unregistered FROM target is a typed routing error.
    let mut bad = irs[0].clone();
    bad.source = Some("imagenet".into());
    match router.submit(&bad, &tenant, None) {
        Err(FleetError::UnknownDataset { requested }) => assert_eq!(requested, "imagenet"),
        other => panic!(
            "expected UnknownDataset, got {other:?}",
            other = other.map(|r| r.shard)
        ),
    }
    router.shutdown();
}

/// A query planned for neither shard is a clean typed error, not a
/// panic (every candidate reports cold/no-plan).
#[test]
fn unplanned_query_is_a_clean_no_plan_error() {
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Kitti)
        .scale(0.05)
        .seed(5)
        .planner(fast_options())
        .build()
        .expect("session");
    let router = session.fleet(FleetConfig::default()).expect("fleet");
    let ir = zeus::api::parse_zql(
        "SELECT segment_ids FROM kitti WHERE action_class = 'left-turn' AND accuracy >= 80%",
    )
    .expect("parse");
    match router.submit(&ir, &TenantId::default(), None) {
        Err(FleetError::Admit(e)) => assert!(e.to_string().contains("no stored plan")),
        other => panic!(
            "expected no-plan admit error, got {:?}",
            other.map(|r| r.shard)
        ),
    }
}

proptest! {
    /// Fair-share fairness: over any request sequence at any pressures,
    /// a tenant that stays within its quota is never shed, while an
    /// over-quota tenant's admissions stay bounded by its token budget
    /// (burst + rate × elapsed, plus one request of slack).
    #[test]
    fn under_quota_tenant_is_never_shed_and_over_quota_is_bounded(
        steps in proptest::collection::vec(
            (0u8..2, 0.0f64..0.01, 0.0f64..1.0),
            1..300,
        )
    ) {
        let light = TenantId::new("light");
        let heavy = TenantId::new("heavy");
        let heavy_quota = QuotaSpec { rate_per_sec: 5.0, burst: 3.0 };
        let gate = FairShareGate::strict(QuotaSpec::per_sec(1e6))
            .with_quota(heavy.clone(), heavy_quota);
        let mut now = 0.0f64;
        let mut heavy_admitted = 0u64;
        for (who, dt, pressure) in steps {
            now += dt;
            if who == 0 {
                // The light tenant cannot exhaust a 1e6 burst in 300
                // requests: it must always be admitted, at any pressure,
                // no matter how hard the heavy tenant is hammering.
                prop_assert!(gate.admit_at(&light, pressure, now).admitted());
            } else if gate.admit_at(&heavy, pressure, now).admitted() {
                heavy_admitted += 1;
            }
        }
        let budget = heavy_quota.burst + heavy_quota.rate_per_sec * now + 1.0;
        prop_assert!(
            (heavy_admitted as f64) <= budget,
            "heavy admitted {heavy_admitted} above its token budget {budget:.1}"
        );
    }
}
