//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;
use zeus::apfg::Configuration;
use zeus::core::metrics::{evaluate_events, evaluate_frames, EvalProtocol};
use zeus::core::query::{parse_zql, ActionQuery, OrderBy, QueryIr};
use zeus::sim::{CostModel, SimClock, SimDuration};
use zeus::video::annotation::{interval_iou, runs_from_labels, smooth_labels};
use zeus::video::segment::{sample_indices, Segment};
use zeus::video::source::DataSource;
use zeus::video::zds::{decode_dataset, encode_dataset};
use zeus::video::{ActionClass, DatasetKind};

proptest! {
    // ---------- ZQL dialect ----------

    /// `parse_zql(ir.to_sql()) == Ok(ir)` across the full extended
    /// dialect: FROM routing × classes × exclusions × accuracy × LIMIT ×
    /// WINDOW × latency budget × ORDER BY.
    #[test]
    fn extended_zql_roundtrips_through_to_sql(
        class_pick in 0usize..7,
        extra_pick in 0usize..8,     // 7 = no second class
        exclude_pick in 0usize..8,   // 7 = no exclusion
        acc_pct in 1usize..100,
        source_pick in 0usize..7,    // 5-6 = unrouted (UDF(video))
        limit in 0usize..20,         // 0 = no LIMIT
        (t0, len, has_window) in (0usize..500, 1usize..500, any::<bool>()),
        (budget_ms, has_budget) in (1usize..10_000, any::<bool>()),
        order_pick in 0usize..3,
        explain in any::<bool>(),
    ) {
        let all = ActionClass::ALL;
        let mut classes = vec![all[class_pick]];
        if extra_pick < all.len() && !classes.contains(&all[extra_pick]) {
            classes.push(all[extra_pick]);
        }
        let exclude = if exclude_pick < all.len() && !classes.contains(&all[exclude_pick]) {
            vec![all[exclude_pick]]
        } else {
            vec![]
        };
        let source = DatasetKind::ALL
            .get(source_pick)
            .map(|k| k.registry_name().to_string());
        let ir = QueryIr {
            base: ActionQuery::multi(classes, acc_pct as f64 / 100.0).unwrap(),
            source,
            exclude,
            window: has_window.then_some((t0, t0 + len)),
            limit: (limit > 0).then_some(limit),
            latency_budget_ms: has_budget.then_some(budget_ms as f64),
            order: match order_pick {
                0 => None,
                1 => Some(OrderBy::ConfidenceDesc),
                _ => Some(OrderBy::ConfidenceAsc),
            },
            explain,
        };
        prop_assert_eq!(parse_zql(&ir.to_sql()), Ok(ir));
    }

    // ---------- observability ----------

    /// Histogram quantile estimates always land in the same log bucket
    /// as the exact order statistic, for arbitrary value streams and
    /// quantiles; count and sum stay exact.
    #[test]
    fn histogram_quantiles_stay_within_one_bucket(
        values in prop::collection::vec(0u64..1_000_000, 1..400),
        q_pct in 0usize..=100,
    ) {
        use zeus::obs::LogHistogram;
        let h = LogHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let q = q_pct as f64 / 100.0;
        let n = sorted.len();
        let rank = ((n as f64 * q).ceil() as usize).clamp(1, n);
        let exact = sorted[rank - 1];
        let est = h.quantile(q);
        let d = (LogHistogram::bucket_of(est) as i64 - LogHistogram::bucket_of(exact) as i64).abs();
        prop_assert!(d <= 1, "q{q_pct}: est {est} vs exact {exact} ({d} buckets apart)");
        prop_assert_eq!(h.count(), n as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
    }

    // ---------- annotation / IoU ----------

    #[test]
    fn iou_is_symmetric_and_bounded(a0 in 0usize..500, al in 0usize..200,
                                    b0 in 0usize..500, bl in 0usize..200) {
        let (a1, b1) = (a0 + al, b0 + bl);
        let x = interval_iou(a0, a1, b0, b1);
        let y = interval_iou(b0, b1, a0, a1);
        prop_assert_eq!(x.to_bits(), y.to_bits(), "IoU must be symmetric");
        prop_assert!((0.0..=1.0).contains(&x));
        if al > 0 {
            prop_assert!((interval_iou(a0, a1, a0, a1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn runs_roundtrip_through_labels(runs in prop::collection::vec((0usize..100, 1usize..20), 0..5)) {
        // Build labels from sorted, gap-separated runs; extraction must
        // return exactly those runs.
        let mut labels = vec![false; 400];
        let mut cursor = 0usize;
        let mut expect = Vec::new();
        for (gap, len) in runs {
            let start = cursor + gap + 1;
            let end = (start + len).min(400);
            if start >= end { break; }
            for l in &mut labels[start..end] { *l = true; }
            expect.push((start, end));
            cursor = end;
        }
        prop_assert_eq!(runs_from_labels(&labels), expect);
    }

    #[test]
    fn smoothing_never_fragments(labels in prop::collection::vec(any::<bool>(), 1..300),
                                 gap in 0usize..8, min_run in 0usize..8) {
        let out = smooth_labels(&labels, gap, min_run);
        // Smoothing cannot increase the number of runs.
        prop_assert!(runs_from_labels(&out).len() <= runs_from_labels(&labels).len());
        // All surviving runs respect min_run.
        if min_run > 1 {
            for (s, e) in runs_from_labels(&out) {
                prop_assert!(e - s >= min_run, "run ({s},{e}) below min_run {min_run}");
            }
        }
    }

    // ---------- metrics ----------

    #[test]
    fn windowed_report_counts_are_conserved(gt in prop::collection::vec(any::<bool>(), 1..300),
                                            flips in prop::collection::vec(any::<bool>(), 1..300),
                                            window in 1usize..20) {
        let n = gt.len().min(flips.len());
        let gt = &gt[..n];
        let pred: Vec<bool> = gt.iter().zip(&flips[..n]).map(|(&g, &f)| g ^ f).collect();
        let protocol = EvalProtocol::new(window);
        let report = evaluate_frames(protocol, gt, &pred);
        let windows = n.div_ceil(window) as u64;
        prop_assert_eq!(report.total(), windows, "every window must be counted once");
        let f1 = report.f1();
        prop_assert!((0.0..=1.0).contains(&f1));
    }

    #[test]
    fn perfect_predictions_are_perfect(gt in prop::collection::vec(any::<bool>(), 1..300),
                                       window in 1usize..20) {
        let protocol = EvalProtocol::new(window);
        let report = evaluate_frames(protocol, &gt, &gt);
        prop_assert_eq!(report.fp, 0);
        prop_assert_eq!(report.fn_, 0);
        prop_assert!((report.f1() - 1.0).abs() < 1e-12);
        let ev = evaluate_events(&gt, &gt, 0.5);
        prop_assert_eq!(ev.fp, 0);
        prop_assert_eq!(ev.fn_, 0);
    }

    #[test]
    fn event_counts_bounded_by_run_counts(gt in prop::collection::vec(any::<bool>(), 1..300),
                                          pred in prop::collection::vec(any::<bool>(), 1..300)) {
        let n = gt.len().min(pred.len());
        let (gt, pred) = (&gt[..n], &pred[..n]);
        let report = evaluate_events(gt, pred, 0.5);
        let gt_runs = runs_from_labels(gt).len() as u64;
        let pred_runs = runs_from_labels(pred).len() as u64;
        prop_assert_eq!(report.tp + report.fn_, gt_runs);
        prop_assert_eq!(report.tp + report.fp, pred_runs);
    }

    // ---------- segments / configurations ----------

    #[test]
    fn segment_spans_are_clamped(start in 0usize..1000, l in 1usize..65,
                                 s in 1usize..9, frames in 1usize..1000) {
        match Segment::from_config(start, l, s, frames) {
            Some(seg) => {
                prop_assert!(seg.start == start);
                prop_assert!(seg.end <= frames);
                prop_assert!(seg.len() <= l * s);
                prop_assert!(start < frames);
            }
            None => prop_assert!(start >= frames),
        }
    }

    #[test]
    fn sampled_indices_are_strictly_increasing(start in 0usize..500, l in 1usize..65,
                                               s in 1usize..9, frames in 1usize..2000) {
        let idx = sample_indices(start, l, s, frames);
        prop_assert!(idx.len() <= l);
        for pair in idx.windows(2) {
            prop_assert_eq!(pair[1] - pair[0], s);
        }
        for &i in &idx {
            prop_assert!(i < frames);
        }
    }

    #[test]
    fn configuration_cost_is_monotone(r in 1usize..400, l in 1usize..65, s in 1usize..9) {
        let cost = CostModel::default();
        let base = cost.r3d_invocation(l, r).as_secs();
        prop_assert!(cost.r3d_invocation(l + 1, r).as_secs() > base);
        prop_assert!(cost.r3d_invocation(l, r + 1).as_secs() > base);
        // Covering more frames per invocation never lowers sliding fps.
        let fps = cost.sliding_throughput(l, s, r);
        prop_assert!(cost.sliding_throughput(l, s + 1, r) > fps);
        let _ = Configuration::new(r, l, s); // constructor accepts valid knobs
    }

    // ---------- simulated time ----------

    #[test]
    fn sim_clock_addition_is_exact_over_integers(ticks in prop::collection::vec(1u32..1000, 0..50)) {
        let mut clock = SimClock::new();
        let mut total = 0u64;
        for t in &ticks {
            clock.advance(SimDuration::from_secs(*t as f64));
            total += *t as u64;
        }
        prop_assert_eq!(clock.elapsed_secs(), total as f64);
        prop_assert_eq!(clock.events(), ticks.len() as u64);
    }

    // ---------- dataset generation ----------

    #[test]
    fn generated_videos_have_valid_annotations(seed in 0u64..50) {
        let ds = DatasetKind::Bdd100k.generate(0.02, seed);
        for v in ds.store.videos() {
            for iv in &v.intervals {
                prop_assert!(iv.end <= v.num_frames);
                prop_assert!(!iv.is_empty());
            }
            for pair in v.intervals.windows(2) {
                prop_assert!(pair[0].end <= pair[1].start, "intervals must not overlap");
            }
        }
    }

    /// `.zds` persistence is lossless: decode(encode(ds)) reproduces the
    /// corpus byte-for-byte (re-encoding is identical) and keeps its
    /// plan/cache identity (fingerprint).
    #[test]
    fn zds_roundtrip_is_lossless(
        seed in 0u64..30,
        kind in prop::sample::select(DatasetKind::ALL.to_vec()),
    ) {
        let ds = kind.generate(0.03, seed);
        let bytes = encode_dataset(&ds);
        let back = decode_dataset(&bytes).expect("fresh encoding decodes");
        prop_assert_eq!(&back.profile.name, &ds.profile.name);
        prop_assert_eq!(back.profile.family, ds.profile.family);
        prop_assert_eq!(&back.profile.query_classes, &ds.profile.query_classes);
        prop_assert_eq!(back.store.len(), ds.store.len());
        for (a, b) in ds.store.videos().iter().zip(back.store.videos()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.num_frames, b.num_frames);
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_eq!(&a.intervals, &b.intervals);
        }
        prop_assert_eq!(ds.fingerprint(), back.fingerprint());
        prop_assert_eq!(bytes, encode_dataset(&back), "re-encoding must be byte-identical");
    }

    /// `DatasetKind::generate(scale, seed)` is byte-identical across
    /// runs: same encoded bytes, same fingerprint (fingerprint
    /// stability), and any change to scale or seed changes both.
    #[test]
    fn generation_is_byte_identical_across_runs(
        seed in 0u64..30,
        kind in prop::sample::select(DatasetKind::ALL.to_vec()),
    ) {
        let a = kind.generate(0.03, seed);
        let b = kind.generate(0.03, seed);
        prop_assert_eq!(encode_dataset(&a), encode_dataset(&b));
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        let other_seed = kind.generate(0.03, seed + 1);
        prop_assert_ne!(a.fingerprint(), other_seed.fingerprint());
        // A scale large enough to change the video count for every kind
        // (tiny scales clamp to the same 4-video floor, and identical
        // content must keep an identical fingerprint).
        let other_scale = kind.generate(0.2, seed);
        prop_assert_ne!(a.fingerprint(), other_scale.fingerprint());
    }

    #[test]
    fn labels_match_intervals(seed in 0u64..30) {
        let ds = DatasetKind::Thumos14.generate(0.02, seed);
        let classes = [ActionClass::PoleVault];
        for v in ds.store.videos().iter().take(2) {
            let labels = v.labels(&classes);
            let from_runs: usize = runs_from_labels(&labels).iter().map(|(s, e)| e - s).sum();
            let from_count = v.action_frames_in(&classes, 0, v.num_frames);
            prop_assert_eq!(from_runs, from_count);
        }
    }
}
