//! Integration tests for the pluggable data plane: multi-dataset
//! sessions, ZQL `FROM <dataset>` routing, per-fingerprint plan
//! isolation, typed unknown-dataset errors, and `.zds` session identity.

use zeus::prelude::*;
use zeus::serve::AdmitError;

fn fast_options() -> PlannerOptions {
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 2;
    options.trainer.warmup = 64;
    options.candidates.truncate(1);
    options
}

const BDD_SQL: &str = "WHERE action_class = 'cross-right' AND accuracy >= 85%";

/// Two corpora with the *same* query identity (class + target) in one
/// session: only the corpus fingerprint separates their plans. Each
/// trains independently, results are stable on re-query (no clobbering),
/// and the shared plan store holds one resident plan per corpus.
#[test]
fn same_query_on_two_corpora_trains_isolated_plans() {
    let session = ZeusSession::builder()
        .register("bdd_a", DatasetKind::Bdd100k.generate(0.08, 1))
        .register("bdd_b", DatasetKind::Bdd100k.generate(0.08, 2))
        .planner(fast_options())
        .executor(ExecutorKind::ZeusSliding)
        .build()
        .expect("session builds");
    assert_eq!(session.source_names(), vec!["bdd_a", "bdd_b"]);
    assert_ne!(
        session.corpus_named("bdd_a").unwrap(),
        session.corpus_named("bdd_b").unwrap(),
        "different corpora must fingerprint differently"
    );

    let a = session
        .query(&format!("SELECT segment_ids FROM bdd_a {BDD_SQL}"))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(session.plans().resident(), 1);
    let b = session
        .query(&format!("SELECT segment_ids FROM bdd_b {BDD_SQL}"))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(
        session.plans().resident(),
        2,
        "identical SQL on two corpora must install two plans, not reuse one"
    );

    // Re-running each query must reproduce its own result exactly — if
    // corpus B's plan had clobbered corpus A's, this would diverge.
    let a2 = session
        .query(&format!("SELECT segment_ids FROM bdd_a {BDD_SQL}"))
        .unwrap()
        .run()
        .unwrap();
    let b2 = session
        .query(&format!("SELECT segment_ids FROM bdd_b {BDD_SQL}"))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(a.result.f1.to_bits(), a2.result.f1.to_bits());
    assert_eq!(b.result.f1.to_bits(), b2.result.f1.to_bits());
    assert_eq!(session.plans().resident(), 2, "re-queries must not retrain");
}

/// One session hosting corpora from both knob families: `FROM bdd100k`
/// and `FROM thumos14` each plan against their own configuration space
/// and answer with their own classes.
#[test]
fn heterogeneous_families_in_one_session() {
    let session = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .register_kind(DatasetKind::Thumos14)
        .scale(0.06)
        .seed(13)
        .planner(fast_options())
        .executor(ExecutorKind::ZeusSliding)
        .build()
        .expect("session builds");

    let bdd = session
        .query(&format!("SELECT segment_ids FROM bdd100k {BDD_SQL}"))
        .unwrap()
        .run()
        .unwrap();
    let thumos = session
        .query(
            "SELECT segment_ids FROM thumos14 \
             WHERE action_class = 'pole-vault' AND accuracy >= 75%",
        )
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(session.plans().resident(), 2);
    assert!(bdd.result.f1 >= 0.0 && thumos.result.f1 >= 0.0);
    // The default (unrouted) spelling targets the builder's default.
    let unrouted = session
        .query(&format!("SELECT segment_ids FROM UDF(video) {BDD_SQL}"))
        .unwrap();
    assert_eq!(unrouted.dataset_name(), "bdd100k");
    assert_eq!(unrouted.corpus_id(), session.corpus_id());
}

/// `FROM <unknown>` is a typed [`ZeusError::UnknownDataset`] before any
/// planning work — at query preparation, at source lookup, and at
/// serving.
#[test]
fn unknown_dataset_is_a_typed_error() {
    let session = ZeusSession::builder()
        .register("bdd_a", DatasetKind::Bdd100k.generate(0.08, 1))
        .planner(fast_options())
        .build()
        .expect("session builds");

    let err = match session.query(&format!("SELECT segment_ids FROM unknown_name {BDD_SQL}")) {
        Err(e) => e,
        Ok(_) => panic!("unknown dataset must be refused"),
    };
    match err {
        ZeusError::UnknownDataset { name, available } => {
            assert_eq!(name, "unknown_name");
            assert_eq!(available, vec!["bdd_a".to_string()]);
        }
        other => panic!("expected UnknownDataset, got {other}"),
    }
    assert!(matches!(
        session.source_named("nope"),
        Err(ZeusError::UnknownDataset { .. })
    ));
    assert!(matches!(
        session.serve_dataset("nope", ServeConfig::default()),
        Err(ZeusError::UnknownDataset { .. })
    ));
    // An unregistered default is refused at build.
    assert!(matches!(
        ZeusSession::builder()
            .register("bdd_a", DatasetKind::Bdd100k.generate(0.08, 1))
            .default_source("missing")
            .build(),
        Err(ZeusError::UnknownDataset { .. })
    ));
}

/// Registration names normalize case-insensitively: a case-variant
/// re-registration replaces the earlier entry instead of erroring as a
/// duplicate, and `FROM`/lookups find it under the lowercase name.
#[test]
fn case_variant_registrations_replace_not_duplicate() {
    let session = ZeusSession::builder()
        .register("MyData", DatasetKind::Bdd100k.generate(0.08, 1))
        .register("mydata", DatasetKind::Bdd100k.generate(0.08, 2))
        .planner(fast_options())
        .build()
        .expect("case variants are one entry");
    assert_eq!(session.source_names(), vec!["mydata"]);
    assert_eq!(
        session.corpus_named("MYDATA").unwrap(),
        CorpusId::of(&DatasetKind::Bdd100k.generate(0.08, 2)),
        "the later registration wins"
    );
}

/// Plan isolation at the serving layer: a plan trained for corpus A does
/// not serve corpus B (refused with `NoPlan`, never silently reused),
/// and a server refuses queries routed to a dataset it does not serve.
#[test]
fn servers_respect_fingerprint_scoping_and_from_routing() {
    let session = ZeusSession::builder()
        .register("bdd_a", DatasetKind::Bdd100k.generate(0.08, 1))
        .register("bdd_b", DatasetKind::Bdd100k.generate(0.08, 2))
        .planner(fast_options())
        .executor(ExecutorKind::ZeusSliding)
        .build()
        .expect("session builds");

    // Train ONLY corpus A's plan.
    let query_a = session
        .query(&format!("SELECT segment_ids FROM bdd_a {BDD_SQL}"))
        .unwrap();
    query_a.plan().expect("plans");
    let base = query_a.ir().base.clone();

    let config = ServeConfig {
        workers: 2,
        executor: ExecutorKind::ZeusSliding,
        ..ServeConfig::default()
    };
    let server_a = session.serve_dataset("bdd_a", config.clone()).unwrap();
    let server_b = session.serve_dataset("bdd_b", config).unwrap();
    assert_ne!(server_a.corpus_id(), server_b.corpus_id());

    // Server A resolves the plan; server B must NOT see it.
    let outcome = server_a
        .submit(base.clone(), Priority::Standard)
        .expect("corpus A has a plan")
        .wait();
    assert!(!outcome.labels.is_empty());
    assert!(
        matches!(
            server_b.submit(base.clone(), Priority::Standard),
            Err(AdmitError::NoPlan { .. })
        ),
        "corpus B must not reuse corpus A's plan"
    );

    // FROM routing is enforced at admission: a query routed to bdd_a
    // cannot be served by bdd_b's server.
    let misrouted = server_b
        .submit_ir(query_a.ir(), None)
        .expect_err("wrong dataset must be refused");
    assert!(matches!(
        misrouted,
        AdmitError::WrongDataset { ref requested, ref serving }
            if requested == "bdd_a" && serving == "bdd_b"
    ));
    server_a.shutdown();
    server_b.shutdown();
}

/// A corpus saved to `.zds` and loaded in a new session keeps its
/// content fingerprint — so it resolves the plans and cache entries of
/// the session that generated it (bench parity for `.zds`-backed runs).
#[test]
fn zds_corpus_keeps_session_identity() {
    let dir = std::env::temp_dir().join(format!("zeus-data-plane-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bdd.zds");
    let generated = DatasetKind::Bdd100k.generate(0.08, 21);
    generated.save(&path).unwrap();

    let from_gen = ZeusSession::builder()
        .register("bdd100k", DatasetKind::Bdd100k.generate(0.08, 21))
        .planner(fast_options())
        .build()
        .unwrap();
    let from_file = ZeusSession::builder()
        .source_file("bdd100k", &path)
        .planner(fast_options())
        .build()
        .unwrap();
    assert_eq!(
        from_gen.corpus_id(),
        from_file.corpus_id(),
        ".zds round-trip must preserve the corpus identity"
    );
    assert_eq!(from_file.source().store().len(), generated.store.len());

    // A corrupt file is a typed error at build.
    let bad = dir.join("bad.zds");
    std::fs::write(&bad, b"ZDSCnot-a-real-file").unwrap();
    assert!(matches!(
        ZeusSession::builder().source_file("bad", &bad).build(),
        Err(ZeusError::Data(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Composite and filtered sources are first-class session datasets.
#[test]
fn composite_and_filtered_views_are_queryable() {
    use zeus::video::source::{concat, filtered_by_class};
    use zeus::video::ActionClass;

    let bdd = DatasetKind::Bdd100k.generate(0.08, 5);
    let kitti = DatasetKind::Kitti.generate(0.2, 5);
    let all_driving = concat("driving_all", &[&bdd, &kitti]).unwrap();
    let left_turns = filtered_by_class("left_turns", &bdd, ActionClass::LeftTurn).unwrap();

    let session = ZeusSession::builder()
        .register("driving_all", all_driving)
        .register("left_turns", left_turns)
        .planner(fast_options())
        .executor(ExecutorKind::ZeusSliding)
        .build()
        .expect("views build");
    let response = session
        .query(
            "SELECT segment_ids FROM left_turns \
             WHERE action_class = 'left-turn' AND accuracy >= 80% LIMIT 5",
        )
        .unwrap()
        .run()
        .unwrap();
    assert!(response.answer.len() <= 5);
    assert_eq!(
        session.source_named("driving_all").unwrap().store().len(),
        bdd.store.len() + kitti.store.len()
    );
}
