//! Integration tests for the `ZeusSession` façade: the fluent API, the
//! extended ZQL dialect's behavioral effects, and typed (non-panicking)
//! error paths.

use std::sync::OnceLock;

use zeus::prelude::*;

/// One session per test binary: planning is the expensive part, and the
/// session's plan cache is exactly the thing that amortizes it.
fn session() -> &'static ZeusSession {
    static SESSION: OnceLock<ZeusSession> = OnceLock::new();
    SESSION.get_or_init(|| {
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        ZeusSession::builder()
            .dataset(DatasetKind::Bdd100k)
            .scale(0.08)
            .seed(21)
            .planner(options)
            .executor(ExecutorKind::ZeusSliding)
            .build()
            .expect("session builds")
    })
}

const CLASSIC: &str = "SELECT segment_ids FROM UDF(video) \
                       WHERE action_class = 'cross-right' AND accuracy >= 85%";

#[test]
fn classic_query_runs_through_the_session() {
    let response = session()
        .query(CLASSIC)
        .expect("parses")
        .run()
        .expect("runs");
    assert_eq!(response.executor, ExecutorKind::ZeusSliding);
    assert!(response.result.f1 >= 0.0 && response.result.f1 <= 1.0);
    assert!(response.result.throughput_fps > 0.0);
    // The unrefined answer is every predicted run, in canonical order.
    for pair in response.answer.windows(2) {
        assert!((pair[0].video, pair[0].start) <= (pair[1].video, pair[1].start));
    }
}

#[test]
fn limit_caps_the_answer_set() {
    let full = session().query(CLASSIC).unwrap().run().unwrap();
    let limited = session()
        .query(&format!("{CLASSIC} LIMIT 2"))
        .unwrap()
        .run()
        .unwrap();
    assert!(limited.answer.len() <= 2);
    assert!(full.answer.len() >= limited.answer.len());
    // LIMIT refines the answer, not the execution: accuracy metrics match.
    assert_eq!(full.result.f1.to_bits(), limited.result.f1.to_bits());
}

#[test]
fn window_masks_segments_outside_the_range() {
    let full = session().query(CLASSIC).unwrap().run().unwrap();
    let windowed = session()
        .query(&format!("{CLASSIC} WINDOW [0, 120]"))
        .unwrap()
        .run()
        .unwrap();
    for hit in &windowed.answer {
        assert!(hit.start < 120, "segment {hit:?} outside WINDOW [0, 120]");
    }
    assert!(windowed.answer.len() <= full.answer.len());
}

#[test]
fn order_by_confidence_sorts_the_answer() {
    let ranked = session()
        .query(&format!("{CLASSIC} ORDER BY confidence DESC"))
        .unwrap()
        .run()
        .unwrap();
    for pair in ranked.answer.windows(2) {
        assert!(pair[0].confidence >= pair[1].confidence);
    }
}

#[test]
fn latency_budget_buys_throughput_for_sliding_plans() {
    // An absurdly tight budget forces the throughput floor above every
    // accuracy-qualifying configuration, so the budgeted plan must select
    // a configuration at least as fast as the unbudgeted one.
    let unbudgeted = session().query(CLASSIC).unwrap().run().unwrap();
    let budgeted = session()
        .query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'cross-right' AND accuracy >= 85% \
             AND latency_budget <= 1ms",
        )
        .unwrap()
        .run()
        .unwrap();
    assert!(
        budgeted.result.throughput_fps >= unbudgeted.result.throughput_fps,
        "budgeted sliding plan slower than unbudgeted: {} < {}",
        budgeted.result.throughput_fps,
        unbudgeted.result.throughput_fps
    );
}

#[test]
fn streaming_yields_per_video_and_short_circuits_on_limit() {
    let videos: Vec<VideoResult> = session()
        .query(CLASSIC)
        .unwrap()
        .run_streaming()
        .unwrap()
        .collect();
    assert_eq!(
        videos.len(),
        session()
            .source()
            .store()
            .split(zeus::video::video::Split::Test)
            .len(),
        "unlimited stream covers the whole test split"
    );
    assert!(videos.iter().all(|v| v.simulated_secs > 0.0));
    let total_segments: usize = videos.iter().map(|v| v.segments.len()).sum();

    if total_segments > 0 {
        let limited: Vec<VideoResult> = session()
            .query(&format!("{CLASSIC} LIMIT 1"))
            .unwrap()
            .run_streaming()
            .unwrap()
            .collect();
        let emitted: usize = limited.iter().map(|v| v.segments.len()).sum();
        assert_eq!(emitted, 1, "LIMIT 1 stream yields exactly one segment");
        assert!(
            limited.len() <= videos.len(),
            "a satisfied LIMIT must stop executing videos"
        );
    }
}

#[test]
fn excluded_classes_are_subtracted_from_the_answer() {
    let excluded = session()
        .query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'cross-right' \
             AND NOT action_class = 'cross-left' AND accuracy >= 85%",
        )
        .unwrap()
        .run()
        .unwrap();
    // No surviving segment may overlap a ground-truth cross-left span.
    let test = session()
        .source()
        .store()
        .split(zeus::video::video::Split::Test);
    for hit in &excluded.answer {
        let video = test
            .iter()
            .find(|v| v.id == hit.video)
            .expect("known video");
        assert!(
            !video.any_action_in(&[zeus::video::ActionClass::CrossLeft], hit.start, hit.end),
            "segment {hit:?} overlaps an excluded cross-left span"
        );
    }
}

#[test]
fn serving_through_the_session_shares_plans_and_refines_answers() {
    let session = session();
    // Warm the plan, then serve from the same store: no retraining.
    session.query(CLASSIC).unwrap().plan().unwrap();
    let server = session
        .serve(ServeConfig {
            workers: 2,
            executor: ExecutorKind::ZeusSliding,
            ..ServeConfig::default()
        })
        .expect("server starts");

    // Three refinements of one core query: one execution, three answers.
    let full = server
        .submit_ir(session.query(CLASSIC).unwrap().ir(), None)
        .expect("admitted")
        .wait();
    let limited = server
        .submit_ir(
            session
                .query(&format!("{CLASSIC} ORDER BY confidence LIMIT 1"))
                .unwrap()
                .ir(),
            None,
        )
        .expect("admitted")
        .wait();
    let budgeted = server
        .submit_ir(
            session
                .query(&format!("{CLASSIC} AND latency_budget <= 100ms"))
                .unwrap()
                .ir(),
            None,
        )
        .expect("admitted")
        .wait();
    let metrics = server.metrics();
    server.shutdown();

    // Identical execution underneath (serial-equivalence target)...
    assert_eq!(full.labels, limited.labels);
    assert_eq!(full.labels, budgeted.labels);
    assert_eq!(
        metrics.cache_misses, 1,
        "refined views of one core must coalesce/hit the cache"
    );
    // ...with per-view refinement on top.
    assert!(limited.answer.len() <= 1);
    if let Some(best) = limited.answer.first() {
        let max_conf = full
            .answer
            .iter()
            .map(|h| h.confidence)
            .fold(0.0f64, f64::max);
        assert_eq!(best.confidence.to_bits(), max_conf.to_bits());
    }
    // A 100 ms budget rides the interactive admission class.
    assert_eq!(budgeted.priority, Priority::Interactive);
    assert_eq!(full.priority, Priority::Standard);
}

#[test]
fn catalog_plans_are_reused_without_retraining() {
    let dir = std::env::temp_dir().join(format!("zeus-session-catalog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First session trains and persists the plan to the catalog.
    let first = {
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let s1 = ZeusSession::builder()
            .dataset(DatasetKind::Bdd100k)
            .scale(0.08)
            .seed(21)
            .planner(options)
            .catalog(&dir)
            .executor(ExecutorKind::ZeusSliding)
            .build()
            .unwrap();
        s1.query(CLASSIC).unwrap().run().unwrap()
    };

    // Second session (fresh process, conceptually): its planner options
    // have an EMPTY candidate portfolio, so any attempt to train would
    // fail with `PlanError::InvalidOptions` — the query can only succeed
    // by resolving the stored plan from the catalog.
    let mut untrainable = PlannerOptions::default();
    untrainable.candidates.clear();
    let s2 = ZeusSession::builder()
        .dataset(DatasetKind::Bdd100k)
        .scale(0.08)
        .seed(21)
        .planner(untrainable)
        .catalog(&dir)
        .executor(ExecutorKind::ZeusSliding)
        .build()
        .unwrap();
    let reused = s2
        .query(CLASSIC)
        .unwrap()
        .run()
        .expect("catalog plan must be reused without retraining");
    assert_eq!(
        reused.result.f1.to_bits(),
        first.result.f1.to_bits(),
        "stored plan must execute identically to the session that trained it"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn typed_errors_never_panic() {
    let session = session();
    // Parse-level failures.
    assert!(matches!(
        session.query("DROP TABLE videos"),
        Err(ZeusError::Parse(_))
    ));
    assert!(matches!(
        session.query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'cross-right' AND accuracy >= 150%"
        ),
        Err(ZeusError::Parse(_))
    ));
    assert!(matches!(
        session.query(&format!("{CLASSIC} LIMIT 0")),
        Err(ZeusError::Parse(_))
    ));
    // Builder-level failures.
    assert!(matches!(
        ZeusSession::builder().scale(0.0).build(),
        Err(ZeusError::Plan(_))
    ));
    // Serve-level failures.
    assert!(matches!(
        session.serve(ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        }),
        Err(ZeusError::Serve(_))
    ));
    assert!(matches!(
        session.serve(ServeConfig {
            executor: ExecutorKind::FramePp,
            ..ServeConfig::default()
        }),
        Err(ZeusError::Serve(_))
    ));
}
