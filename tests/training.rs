//! The training plane's determinism contracts.
//!
//! Two invariants license the vectorized `TrainingEngine`:
//!
//! 1. **Serial equivalence** — with `vec_envs = 1` and
//!    `train_workers = 1`, the engine produces a bit-identical greedy
//!    policy and `TrainingReport` to the legacy serial `DqnTrainer` under
//!    the same seeds (property-tested across seeds).
//! 2. **Worker-count independence** — the trained per-spec policies are a
//!    pure function of their job seeds, so any worker count yields the
//!    same portfolio (and the same end-to-end `QueryPlan`).

use std::sync::Arc;

use proptest::prelude::*;
use zeus::apfg::{FeatureCache, SimulatedApfg};
use zeus::core::config::ConfigSpace;
use zeus::core::env::VideoTraversalEnv;
use zeus::core::planner::{PlannerOptions, QueryPlanner};
use zeus::core::query::ActionQuery;
use zeus::core::training::{CandidateJob, TrainingEngine, TrainingOptions};
use zeus::rl::{
    DqnAgent, DqnConfig, DqnTrainer, Environment, EpsilonSchedule, RewardMode, TrainerConfig,
};
use zeus::sim::CostModel;
use zeus::video::{ActionClass, DatasetKind, Video};

fn proto_env(corpus_seed: u64, apfg_seed: u64) -> VideoTraversalEnv {
    let ds = DatasetKind::Bdd100k.generate(0.02, corpus_seed);
    let videos: Vec<Video> = ds.store.videos().to_vec();
    let classes = vec![ActionClass::CrossRight];
    let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
    let alphas = space.alphas(&CostModel::default());
    let init = space.most_accurate();
    let apfg = Arc::new(SimulatedApfg::new(
        classes.clone(),
        space.max_resolution(),
        space.max_seg_len(),
        space.max_sampling(),
        apfg_seed,
    ));
    VideoTraversalEnv::new(videos, classes, apfg, space, alphas, init, apfg_seed)
        .expect("tiny corpus is valid")
}

fn tiny_job(seed: u64) -> CandidateJob {
    CandidateJob {
        trainer: TrainerConfig {
            episodes: 2,
            replay_capacity: 1_000,
            warmup: 64,
            batch_size: 32,
            update_every: 2,
            epsilon: EpsilonSchedule::new(1.0, 0.1, 400),
            reward_mode: RewardMode::Aggregate {
                target_accuracy: 0.85,
                window_frames: 400,
                eval_window: 16,
                fastness_bonus: 0.2,
                fp_penalty: 2.0,
                deficit_scale: 3.0,
                local_mix: 0.5,
                beta: 0.3,
            },
            stratify: true,
            seed,
        },
        dqn: DqnConfig::default(),
        dqn_seed: seed ^ 0xD097,
        env_seed: seed ^ 0x5EED,
    }
}

proptest! {
    /// ISSUE 5's hard invariant: `TrainingEngine` with `vec_envs = 1`,
    /// `train_workers = 1` reproduces the legacy serial trainer
    /// bit-for-bit — same greedy policy bytes, same `TrainingReport` —
    /// for arbitrary seeds.
    #[test]
    fn engine_vec1_w1_matches_legacy_serial_trainer(
        seed in 0u64..10_000,
        corpus_pick in 0u64..3,
    ) {
        let proto = proto_env(3 + corpus_pick, seed ^ 0xA11CE);
        let job = tiny_job(seed);

        // Legacy serial path: DqnTrainer::train over one environment.
        let agent = DqnAgent::new(
            proto.state_dim(),
            proto.num_actions(),
            job.dqn.clone(),
            job.dqn_seed,
        );
        let mut trainer = DqnTrainer::new(agent, job.trainer.clone());
        let mut env = proto.fork(job.env_seed);
        let serial_report = trainer.train(&mut env).expect("serial training");
        let serial_policy = trainer.into_agent().policy().to_bytes();

        // Engine path at N = 1 / W = 1 (with the shared feature cache
        // attached, which must be semantically invisible).
        let engine = TrainingEngine::new(TrainingOptions {
            train_workers: 1,
            vec_envs: 1,
        });
        let cached = proto.fork(0).with_cache(Arc::new(FeatureCache::new()));
        let outcome = engine.train_candidate(&cached, &job).expect("engine training");

        prop_assert_eq!(&outcome.report, &serial_report);
        prop_assert_eq!(outcome.policy.to_bytes(), serial_policy);
    }
}

/// Same seeds → same per-spec policies regardless of worker count.
#[test]
fn portfolio_policies_are_worker_count_independent() {
    let proto = proto_env(5, 17).with_cache(Arc::new(FeatureCache::new()));
    let jobs: Vec<CandidateJob> = (0..4).map(|i| tiny_job(900 + i)).collect();
    let cost = CostModel::default();
    let portfolio = |workers: usize| {
        TrainingEngine::new(TrainingOptions {
            train_workers: workers,
            vec_envs: 2,
        })
        .train_portfolio(&proto, &jobs, &cost)
        .expect("portfolio trains")
    };
    let reference = portfolio(1);
    for workers in [2, 4, 8] {
        let other = portfolio(workers);
        assert_eq!(other.candidates.len(), reference.candidates.len());
        for (spec, (a, b)) in reference
            .candidates
            .iter()
            .zip(&other.candidates)
            .enumerate()
        {
            assert_eq!(
                a.report, b.report,
                "spec {spec} report changed with {workers} workers"
            );
            assert_eq!(
                a.policy.to_bytes(),
                b.policy.to_bytes(),
                "spec {spec} policy changed with {workers} workers"
            );
        }
    }
}

/// The whole planner is worker-count independent end to end: the same
/// query plans to the same policy, sliding config, and training report
/// whether the portfolio trains on one worker or four.
#[test]
fn planner_output_is_worker_count_independent() {
    let dataset = DatasetKind::Bdd100k.generate(0.05, 77);
    let plan_with = |workers: usize, vec_envs: usize| {
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(2);
        options.training = TrainingOptions {
            train_workers: workers,
            vec_envs,
        };
        let planner = QueryPlanner::new(&dataset, options);
        let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
        planner.try_plan(&query).expect("plannable")
    };
    let solo = plan_with(1, 2);
    let wide = plan_with(4, 2);
    assert_eq!(solo.sliding_config, wide.sliding_config);
    assert_eq!(solo.training_report, wide.training_report);
    assert_eq!(solo.policy.to_bytes(), wide.policy.to_bytes());
}

/// vec_envs > 1 changes the rollout (fewer updates per step) but stays
/// fully reproducible run-to-run.
#[test]
fn vectorized_rollouts_are_reproducible() {
    let run = || {
        let proto = proto_env(7, 23);
        TrainingEngine::new(TrainingOptions {
            train_workers: 1,
            vec_envs: 4,
        })
        .train_candidate(&proto, &tiny_job(55))
        .expect("engine trains")
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report);
    assert_eq!(a.policy.to_bytes(), b.policy.to_bytes());
    assert!(a.report.steps > 0 && a.report.updates > 0);
}
