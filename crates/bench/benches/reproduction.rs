//! Criterion micro/meso benchmarks for the components behind each table
//! and figure. The `reproduce` binary regenerates the tables themselves
//! (they need full planning runs); these benches track the wall-clock cost
//! of the moving parts so regressions in the reproduction pipeline are
//! caught:
//!
//! * `table2/*` — configuration profiling (one Zeus-Sliding pass).
//! * `table3/*` — corpus generation + statistics.
//! * `fig8/*` — one video through each of the five §6.1 engines.
//! * `table6/*` — DQN update step and APFG invocation (training costs).
//! * `metrics/*` — windowed (§2.1) and event-level evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use zeus_apfg::{Configuration, FeatureGenerator, SimulatedApfg};
use zeus_core::baselines::QueryEngine;
use zeus_core::metrics::{evaluate_events, evaluate_frames, EvalProtocol};
use zeus_core::planner::{PlannerOptions, QueryPlanner};
use zeus_core::query::ActionQuery;
use zeus_core::result::ConfigHistogram;
use zeus_core::ConfigSpace;
use zeus_rl::agent::{DqnAgent, DqnConfig};
use zeus_rl::{Experience, ReplayBuffer};
use zeus_sim::{CostModel, SimClock};
use zeus_video::stats::DatasetStats;
use zeus_video::{ActionClass, DatasetKind};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_table2_profiling(c: &mut Criterion) {
    let ds = DatasetKind::Bdd100k.generate(0.04, 5);
    let apfg = SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 5);
    let cost = CostModel::default();
    let videos: Vec<&zeus_video::Video> = ds.store.videos().iter().collect();

    let mut group = c.benchmark_group("table2");
    for (r, l, s) in [(150usize, 4usize, 8usize), (300, 6, 1)] {
        group.bench_function(format!("profile_({r},{l},{s})"), |b| {
            let engine = zeus_core::baselines::ZeusSliding::new(
                apfg.clone(),
                Configuration::new(r, l, s),
                cost.clone(),
            );
            b.iter(|| black_box(engine.execute(&videos).throughput()))
        });
    }
    group.finish();
}

fn bench_table3_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group.bench_function("generate_bdd_0.05", |b| {
        b.iter(|| black_box(DatasetKind::Bdd100k.generate(0.05, 7).store.total_frames()))
    });
    group.bench_function("stats_bdd_0.05", |b| {
        let ds = DatasetKind::Bdd100k.generate(0.05, 7);
        b.iter(|| {
            black_box(DatasetStats::compute(
                &ds.store,
                &DatasetKind::Bdd100k.query_classes(),
            ))
        })
    });
    group.finish();
}

fn bench_fig8_executors(c: &mut Criterion) {
    // One shared (cheap) plan drives all five engines.
    let ds = DatasetKind::Bdd100k.generate(0.1, 3);
    let mut options = PlannerOptions::default();
    options.trainer.episodes = 2;
    options.trainer.warmup = 64;
    options.candidates.truncate(1);
    let planner = QueryPlanner::new(&ds, options);
    let plan = planner.plan(&ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap());
    let engines = planner.build_engines(&plan);
    let video = ds.store.videos()[0].clone();

    let mut group = c.benchmark_group("fig8");
    let run = |b: &mut criterion::Bencher, engine: &dyn QueryEngine| {
        b.iter_batched(
            || (SimClock::new(), ConfigHistogram::new()),
            |(mut clock, mut hist)| black_box(engine.execute_video(&video, &mut clock, &mut hist)),
            BatchSize::SmallInput,
        )
    };
    group.bench_function("frame_pp_video", |b| run(b, &engines.frame_pp));
    group.bench_function("segment_pp_video", |b| run(b, &engines.segment_pp));
    group.bench_function("sliding_video", |b| run(b, &engines.sliding));
    group.bench_function("heuristic_video", |b| run(b, &engines.heuristic));
    group.bench_function("zeus_rl_video", |b| run(b, &engines.zeus_rl));
    group.finish();
}

fn bench_table6_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6");

    group.bench_function("dqn_update_batch128", |b| {
        let mut agent = DqnAgent::new(zeus_apfg::FEATURE_DIM, 8, DqnConfig::default(), 1);
        let mut replay = ReplayBuffer::new(4096);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for i in 0..1024 {
            replay.push(Experience {
                state: vec![(i % 17) as f32 / 17.0; zeus_apfg::FEATURE_DIM],
                action: i % 8,
                reward: ((i % 5) as f32 - 2.0) / 2.0,
                next_state: vec![(i % 13) as f32 / 13.0; zeus_apfg::FEATURE_DIM],
                done: i % 50 == 0,
            });
        }
        b.iter(|| {
            let batch = replay.sample(128, &mut rng);
            black_box(agent.update(&batch))
        })
    });

    group.bench_function("apfg_invocation", |b| {
        let ds = DatasetKind::Bdd100k.generate(0.02, 9);
        let video = ds.store.videos()[0].clone();
        let apfg = SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 9);
        let config = Configuration::new(300, 8, 1);
        let mut start = 0usize;
        b.iter(|| {
            let out = apfg.process(&video, start % (video.num_frames - 64), config);
            start += 17;
            black_box(out.prediction)
        })
    });

    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    // 100K frames of pseudo-random labels.
    let gt: Vec<bool> = (0..100_000).map(|i| (i / 97) % 11 == 0).collect();
    let pred: Vec<bool> = (0..100_000).map(|i| (i / 89) % 11 == 0).collect();
    group.bench_function("windowed_100k_frames", |b| {
        let protocol = EvalProtocol::new(16);
        b.iter(|| black_box(evaluate_frames(protocol, &gt, &pred).f1()))
    });
    group.bench_function("event_100k_frames", |b| {
        b.iter(|| black_box(evaluate_events(&gt, &pred, 0.5).f1()))
    });
    group.finish();
}

fn bench_fig9_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    let agent = DqnAgent::new(zeus_apfg::FEATURE_DIM, 8, DqnConfig::default(), 4);
    let policy = agent.policy();
    let state = vec![0.3f32; zeus_apfg::FEATURE_DIM];
    group.bench_function("policy_act", |b| b.iter(|| black_box(policy.act(&state))));

    let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
    let cost = CostModel::default();
    group.bench_function("alphas_64_configs", |b| {
        b.iter(|| black_box(space.alphas(&cost)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table2_profiling,
        bench_table3_generation,
        bench_fig8_executors,
        bench_table6_training,
        bench_metrics,
        bench_fig9_policy
);
criterion_main!(benches);
