//! One driver per table and figure of the paper's evaluation (§6), plus
//! the ablations DESIGN.md commits to. Each driver returns a printable
//! [`ExperimentOutput`]; the `reproduce` binary runs them all.

use zeus_apfg::frame_pp::FramePpModel;
use zeus_apfg::segment_pp::SegmentPpFilter;
use zeus_apfg::simulated::domain_shift;
use zeus_apfg::Configuration;
use zeus_core::baselines::{FramePp, QueryEngine, SegmentPp, ZeusHeuristic, ZeusRl, ZeusSliding};
use zeus_core::config::{ConfigSpace, KnobMask};
use zeus_core::parallel::execute_parallel;
use zeus_core::planner::PlannerOptions;
use zeus_core::result::QueryResult;
use zeus_core::ExecutorKind;
use zeus_rl::RewardMode;
use zeus_sim::CostModel;
use zeus_video::stats::DatasetStats;
use zeus_video::{ActionClass, DatasetKind};

use crate::harness::{paper_queries, ExperimentContext, DEFAULT_SCALE, DEFAULT_SEED};
use crate::tables::render;

/// A printable experiment result block.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id, e.g. "table2" or "fig8".
    pub id: String,
    /// Rendered text (tables + notes).
    pub text: String,
}

fn fmt_result(r: &QueryResult) -> Vec<String> {
    vec![
        r.method.clone(),
        format!("{:.3}", r.f1),
        format!("{:.3}", r.precision),
        format!("{:.3}", r.recall),
        format!("{:.0}", r.throughput_fps),
    ]
}

/// Table 1: the qualitative technique matrix (derived from the engine
/// implementations rather than measured).
pub fn table1() -> ExperimentOutput {
    let rows = vec![
        vec![
            "Frame-PP".into(),
            "".into(),
            "".into(),
            "".into(),
            "".into(),
        ],
        vec![
            "Segment-PP".into(),
            "x".into(),
            "".into(),
            "".into(),
            "".into(),
        ],
        vec![
            "Zeus-Sliding".into(),
            "x".into(),
            "".into(),
            "".into(),
            "x".into(),
        ],
        vec![
            "Zeus-Heuristic".into(),
            "x".into(),
            "x".into(),
            "".into(),
            "".into(),
        ],
        vec![
            "Zeus-RL".into(),
            "x".into(),
            "x".into(),
            "x".into(),
            "x".into(),
        ],
    ];
    ExperimentOutput {
        id: "table1".into(),
        text: render(
            "Table 1 — Techniques for processing action queries",
            &["Technique", "Sequence", "Adaptive", "Auto-Knob", "Accuracy"],
            &rows,
        ),
    }
}

/// Table 2: illustrative configuration cost metrics for CrossRight.
pub fn table2(ctx: &ExperimentContext) -> ExperimentOutput {
    // The paper tabulates four illustrative rows; print those plus the
    // knob-space extremes from our profiled space.
    let interesting = [
        ((150, 4, 8), 1282.0, 0.57),
        ((200, 4, 4), 553.0, 0.82),
        ((250, 6, 2), 285.0, 0.86),
        ((300, 6, 1), 115.0, 0.91),
    ];
    let mut rows = Vec::new();
    for ((r, l, s), paper_fps, paper_f1) in interesting {
        let config = Configuration::new(r, l, s);
        if let Some(p) = ctx.plan.profiles.iter().find(|p| p.config == config) {
            rows.push(vec![
                config.to_string(),
                format!("{:.0}", p.throughput_fps),
                format!("{:.3}", p.f1),
                format!("{paper_fps:.0}"),
                format!("{paper_f1:.2}"),
            ]);
        }
    }
    ExperimentOutput {
        id: "table2".into(),
        text: render(
            "Table 2 — Configuration cost metrics, CrossRight (measured vs paper)",
            &["(r, l, s)", "fps", "F1", "paper fps", "paper F1"],
            &rows,
        ),
    }
}

/// Table 3: dataset characteristics of the generated corpora.
pub fn table3(scale: f64) -> ExperimentOutput {
    let paper = [
        (DatasetKind::Bdd100k, 186.0, 7.03, 115.0, 58.7, 6, 305),
        (DatasetKind::Thumos14, 645.0, 40.27, 211.0, 186.3, 18, 3543),
        (
            DatasetKind::ActivityNet,
            633.0,
            56.37,
            909.0,
            1239.1,
            20,
            6931,
        ),
    ];
    let mut rows = Vec::new();
    for (kind, pk, ppct, pmean, pstd, pmin, pmax) in paper {
        let ds = kind.generate(scale, DEFAULT_SEED);
        let stats = DatasetStats::compute(&ds.store, &kind.query_classes());
        rows.push(vec![
            kind.name().into(),
            format!("{}", stats.num_classes),
            format!("{:.0}K", stats.total_frames as f64 / 1000.0),
            format!("{:.2}%", stats.action_fraction * 100.0),
            format!("{:.0}", stats.mean_len),
            format!("{:.1}", stats.std_len),
            format!("({}, {})", stats.min_len, stats.max_len),
            format!("{pk:.0}K/{ppct}%/{pmean}/{pstd}/({pmin},{pmax})"),
        ]);
    }
    ExperimentOutput {
        id: "table3".into(),
        text: render(
            &format!("Table 3 — Dataset characteristics (scale {scale})"),
            &[
                "Dataset",
                "Cls",
                "Frames",
                "%Action",
                "MeanLen",
                "Std",
                "(Min,Max)",
                "paper (full scale)",
            ],
            &rows,
        ),
    }
}

/// Table 4: knob settings + maximum accuracy per query.
pub fn table4(contexts: &[(&str, &ExperimentContext)]) -> ExperimentOutput {
    let paper_max = [
        ("CrossRight", 0.91),
        ("LeftTurn", 0.89),
        ("PoleVault", 0.78),
        ("CleanAndJerk", 0.76),
        ("IroningClothes", 0.85),
        ("TennisServe", 0.80),
    ];
    let mut rows = Vec::new();
    for (name, ctx) in contexts {
        let full_space = ConfigSpace::for_family(ctx.dataset.family());
        let paper = paper_max
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        rows.push(vec![
            ctx.dataset.name().to_string(),
            (*name).into(),
            format!("{}", full_space.len()),
            format!("{:.3}", ctx.plan.max_accuracy),
            format!("{paper:.2}"),
        ]);
    }
    ExperimentOutput {
        id: "table4".into(),
        text: render(
            "Table 4 — Configuration statistics: max accuracy per query (measured vs paper)",
            &["Dataset", "Query", "#Configs", "Max F1", "paper"],
            &rows,
        ),
    }
}

/// Figure 8: end-to-end throughput and F1, five methods x six queries.
pub fn fig8(contexts: &[(&str, &ExperimentContext)]) -> ExperimentOutput {
    let mut rows = Vec::new();
    for (name, ctx) in contexts {
        for outcome in ctx.run_all() {
            let mut row = vec![
                (*name).to_string(),
                format!("{:.2}", ctx.query.target_accuracy),
            ];
            row.extend(fmt_result(&outcome.result));
            rows.push(row);
        }
    }
    ExperimentOutput {
        id: "fig8".into(),
        text: render(
            "Figure 8 — End-to-end comparison (test split)",
            &["Query", "Target", "Method", "F1", "P", "R", "fps"],
            &rows,
        ),
    }
}

/// Table 5 + Figure 9: accuracy-aware planning across targets.
pub fn fig9_table5(sweep: &[(&str, f64, ExperimentContext)]) -> ExperimentOutput {
    let mut rows = Vec::new();
    for (name, target, ctx) in sweep {
        let sliding = ctx.run(ExecutorKind::ZeusSliding);
        let rl = ctx.run(ExecutorKind::ZeusRl);
        rows.push(vec![
            (*name).to_string(),
            format!("{target:.2}"),
            format!("{:.3}", sliding.f1),
            format!("{:.0}", sliding.throughput_fps),
            format!("{:.3}", rl.f1),
            format!("{:.0}", rl.throughput_fps),
            format!("{:.2}x", rl.throughput_fps / sliding.throughput_fps),
        ]);
    }
    ExperimentOutput {
        id: "fig9".into(),
        text: render(
            "Figure 9 / Table 5 — Throughput and accuracy across targets; speedup of Zeus-RL over Zeus-Sliding",
            &["Query", "Target", "Slide F1", "Slide fps", "RL F1", "RL fps", "Speedup"],
            &rows,
        ),
    }
}

/// Table 6: training and inference costs.
pub fn table6(ctx: &ExperimentContext) -> ExperimentOutput {
    let costs = &ctx.plan.costs;
    let frame_pp = ctx.run(ExecutorKind::FramePp);
    let sliding = ctx.run(ExecutorKind::ZeusSliding);
    let heuristic = ctx.run(ExecutorKind::ZeusHeuristic);
    let rl = ctx.run(ExecutorKind::ZeusRl);
    // Inference seconds over the full (paper-sized) corpus: scale the
    // per-test-frame rate up to the paper's 186 K frames for comparability.
    let paper_frames = 186_000.0;
    let inf = |r: &QueryResult| paper_frames / r.throughput_fps;
    let rows = vec![
        vec![
            "Frame-PP".into(),
            format!("{:.2}", costs.frame_pp_training_secs),
            "NA".into(),
            format!("{:.2}", inf(&frame_pp)),
            "101.81 / NA / 396.85".into(),
        ],
        vec![
            "Zeus-Sliding".into(),
            format!("{:.2}", costs.apfg_training_secs),
            "NA".into(),
            format!("{:.2}", inf(&sliding)),
            "247.57 / NA / 181.06".into(),
        ],
        vec![
            "Zeus-Heuristic".into(),
            format!("{:.2}", costs.apfg_training_secs),
            "NA".into(),
            format!("{:.2}", inf(&heuristic)),
            "247.57 / NA / 64.21".into(),
        ],
        vec![
            "Zeus-RL".into(),
            format!("{:.2}", costs.apfg_training_secs),
            format!("{:.2}", costs.rl_training_secs),
            format!("{:.2}", inf(&rl)),
            "247.57 / 90.00 / 38.52".into(),
        ],
    ];
    ExperimentOutput {
        id: "table6".into(),
        text: render(
            "Table 6 — Training and inference costs (simulated secs, scaled to the paper's 186K-frame corpus)",
            &["Method", "APFG train", "RL train", "Inference", "paper (train/RL/inf)"],
            &rows,
        ),
    }
}

/// Figure 10: knob ablation — disable each knob and measure Zeus-RL.
pub fn fig10(queries: &[(DatasetKind, ActionClass, f64)]) -> ExperimentOutput {
    let mut rows = Vec::new();
    for &(kind, class, target) in queries {
        let masks: [(&str, KnobMask); 4] = [
            ("Zeus (all knobs)", KnobMask::none()),
            (
                "-Resolution",
                KnobMask {
                    fix_resolution: Some(ConfigSpace::for_dataset(kind).max_resolution()),
                    ..KnobMask::none()
                },
            ),
            (
                "-SegmentLength",
                KnobMask {
                    fix_seg_len: Some(ConfigSpace::for_dataset(kind).max_seg_len()),
                    ..KnobMask::none()
                },
            ),
            (
                "-SamplingRate",
                KnobMask {
                    fix_sampling: Some(1),
                    ..KnobMask::none()
                },
            ),
        ];
        for (name, mask) in masks {
            let options = PlannerOptions {
                knob_mask: mask,
                ..PlannerOptions::default()
            };
            let ctx =
                ExperimentContext::with_scale(kind, vec![class], target, DEFAULT_SCALE, options);
            let rl = ctx.run(ExecutorKind::ZeusRl);
            rows.push(vec![
                class.display_name().into(),
                name.into(),
                format!("{:.3}", rl.f1),
                format!("{:.0}", rl.throughput_fps),
            ]);
        }
    }
    ExperimentOutput {
        id: "fig10".into(),
        text: render(
            "Figure 10 — Impact of disabling each knob on Zeus-RL",
            &["Query", "Variant", "F1", "fps"],
            &rows,
        ),
    }
}

/// Figure 11: multi-class training.
pub fn fig11() -> ExperimentOutput {
    let combos: [(&str, Vec<ActionClass>); 2] = [
        (
            "CrossRight+CrossLeft",
            vec![ActionClass::CrossRight, ActionClass::CrossLeft],
        ),
        (
            "CrossRight+LeftTurn",
            vec![ActionClass::CrossRight, ActionClass::LeftTurn],
        ),
    ];
    let mut rows = Vec::new();
    for (name, classes) in combos {
        let ctx = ExperimentContext::new(DatasetKind::Bdd100k, classes, 0.85);
        for outcome in ctx.run_all() {
            let mut row = vec![name.to_string()];
            row.extend(fmt_result(&outcome.result));
            rows.push(row);
        }
    }
    ExperimentOutput {
        id: "fig11".into(),
        text: render(
            "Figure 11 — Multi-class training (union queries on BDD100K)",
            &["Classes", "Method", "F1", "P", "R", "fps"],
            &rows,
        ),
    }
}

/// Figure 12: cross-model inference — the CrossRight agent driving other
/// classes' APFGs.
pub fn fig12(cross_right: &ExperimentContext) -> ExperimentOutput {
    let planner_cost = CostModel::default();
    let mut rows = Vec::new();
    let mut res_split_rows = Vec::new();

    for (target_class, label) in [
        (ActionClass::CrossRight, "CrossRight->CrossRight"),
        (ActionClass::CrossLeft, "CrossRight->CrossLeft"),
        (ActionClass::LeftTurn, "CrossRight->LeftTurn"),
    ] {
        let similarity = zeus_apfg::traits::class_similarity(ActionClass::CrossRight, target_class);
        let space = &cross_right.plan.space;
        let apfg = zeus_apfg::SimulatedApfg::new(
            vec![target_class],
            ConfigSpace::for_dataset(DatasetKind::Bdd100k).max_resolution(),
            ConfigSpace::for_dataset(DatasetKind::Bdd100k).max_seg_len(),
            ConfigSpace::for_dataset(DatasetKind::Bdd100k).max_sampling(),
            cross_right.options.seed,
        )
        .with_feature_skew(1.0 - similarity);
        let engine = ZeusRl::new(
            apfg.clone(),
            cross_right.plan.policy.clone(),
            space.clone(),
            cross_right.plan.init_config,
            planner_cost.clone(),
        );
        let videos = cross_right.test_videos();
        let exec = engine.execute(&videos);
        let report = exec.evaluate(&videos, &[target_class], cross_right.protocol());
        rows.push(vec![
            label.into(),
            format!("{:.3}", report.f1()),
            format!("{:.0}", exec.throughput()),
        ]);
        let lo = exec.histogram.low_resolution_fraction(250);
        res_split_rows.push(vec![
            label.into(),
            format!("{:.0}%", lo * 100.0),
            format!("{:.0}%", (1.0 - lo) * 100.0),
        ]);

        // Sliding reference for the target class (12a's Sliding curve).
        if target_class == ActionClass::CrossLeft {
            let sliding = ZeusSliding::new(
                apfg.with_feature_skew(0.0),
                cross_right.plan.sliding_config,
                planner_cost.clone(),
            );
            let exec = sliding.execute(&videos);
            let report = exec.evaluate(&videos, &[target_class], cross_right.protocol());
            rows.push(vec![
                "Sliding (CrossLeft)".into(),
                format!("{:.3}", report.f1()),
                format!("{:.0}", exec.throughput()),
            ]);
        }
    }
    let mut text = render(
        "Figure 12a — Cross-model inference: CrossRight agent on other classes",
        &["Transfer", "F1", "fps"],
        &rows,
    );
    text.push_str(&render(
        "Figure 12b — Frames by resolution under the transferred agent",
        &["Transfer", "low res (<250)", "high res"],
        &res_split_rows,
    ));
    ExperimentOutput {
        id: "fig12".into(),
        text,
    }
}

/// Figure 13: domain adaptation — train on BDD100K, test on Cityscapes and
/// KITTI with the calibrated domain-shift model.
pub fn fig13(cross_right: &ExperimentContext, left_turn: &ExperimentContext) -> ExperimentOutput {
    let cost = CostModel::default();
    let mut rows = Vec::new();
    let transfers: [(&ExperimentContext, ActionClass, DatasetKind); 3] = [
        (
            cross_right,
            ActionClass::CrossRight,
            DatasetKind::Cityscapes,
        ),
        (left_turn, ActionClass::LeftTurn, DatasetKind::Cityscapes),
        (left_turn, ActionClass::LeftTurn, DatasetKind::Kitti),
    ];
    for (ctx, class, target_kind) in transfers {
        let shift = domain_shift(DatasetKind::Bdd100k, target_kind, &[class]);
        let target_ds = target_kind.generate(DEFAULT_SCALE, DEFAULT_SEED ^ 0xC17);
        // The transfer corpora were never trained on, so the whole corpus
        // is a legitimate test set (as in the paper, which evaluates on
        // the full Cityscapes/KITTI annotation sets).
        let videos: Vec<&zeus_video::Video> = target_ds.store.videos().iter().collect();
        let apfg = ctx.plan.apfg.clone().with_domain_shift(shift);
        let protocol = ctx.protocol();

        let engines: Vec<(&str, Box<dyn QueryEngine>)> = vec![
            (
                "Frame-PP",
                Box::new(FramePp::new(
                    FramePpModel::new(vec![class], ctx.plan.space.max_resolution(), 0xF2)
                        .with_domain_shift(shift),
                    cost.clone(),
                )),
            ),
            (
                "Segment-PP",
                Box::new(SegmentPp::new(
                    SegmentPpFilter::new(vec![class], 0x51).with_domain_shift(shift),
                    apfg.clone(),
                    ctx.plan.init_config,
                    cost.clone(),
                )),
            ),
            (
                "Zeus-Sliding",
                Box::new(ZeusSliding::new(
                    apfg.clone(),
                    ctx.plan.sliding_config,
                    cost.clone(),
                )),
            ),
            ("Zeus-Heuristic", {
                let (fast, mid, slow) = zeus_core::planner::heuristic_subset(&ctx.plan.profiles);
                Box::new(ZeusHeuristic::new(
                    apfg.clone(),
                    fast,
                    mid,
                    slow,
                    cost.clone(),
                ))
            }),
            (
                "Zeus-RL",
                Box::new(ZeusRl::new(
                    apfg.clone(),
                    ctx.plan.policy.clone(),
                    ctx.plan.space.clone(),
                    ctx.plan.init_config,
                    cost.clone(),
                )),
            ),
        ];
        for (name, engine) in engines {
            let exec = engine.execute(&videos);
            let report = exec.evaluate(&videos, &[class], protocol);
            rows.push(vec![
                format!("{} – {}", class.display_name(), target_kind.name()),
                name.into(),
                format!("{:.3}", report.f1()),
                format!("{:.0}", exec.throughput()),
            ]);
        }
    }
    ExperimentOutput {
        id: "fig13".into(),
        text: render(
            "Figure 13 — Domain adaptation: trained on BDD100K, tested on Cityscapes / KITTI",
            &["Transfer", "Method", "F1", "fps"],
            &rows,
        ),
    }
}

/// Figure 14: configuration distribution under a 3-config space.
pub fn fig14() -> ExperimentOutput {
    let queries = [
        (DatasetKind::Bdd100k, ActionClass::CrossRight, 0.85),
        (DatasetKind::Thumos14, ActionClass::PoleVault, 0.75),
        (DatasetKind::ActivityNet, ActionClass::IroningClothes, 0.75),
    ];
    let mut rows = Vec::new();
    let mut res_rows = Vec::new();
    for (kind, class, target) in queries {
        // Constrain the agent to fast/mid/slow (§6.8).
        let options = PlannerOptions {
            max_actions: 3,
            ..PlannerOptions::default()
        };
        let ctx = ExperimentContext::with_scale(kind, vec![class], target, DEFAULT_SCALE, options);
        // `restricted_to` preserves the full-space order, so classify the
        // three surviving configurations by measured throughput.
        let cost = CostModel::default();
        let mut by_speed = ctx.plan.space.configs().to_vec();
        by_speed.sort_by(|a, b| {
            cost.sliding_throughput(b.seg_len, b.sampling_rate, b.resolution)
                .total_cmp(&cost.sliding_throughput(a.seg_len, a.sampling_rate, a.resolution))
        });

        for kind_ex in [ExecutorKind::ZeusHeuristic, ExecutorKind::ZeusRl] {
            let r = ctx.run(kind_ex);
            let fr = r.histogram.fractions_for(&[
                by_speed[0],
                by_speed[by_speed.len() / 2],
                by_speed[by_speed.len() - 1],
            ]);
            rows.push(vec![
                class.display_name().into(),
                r.method.clone(),
                format!("{:.0}%", fr[0] * 100.0),
                format!("{:.0}%", fr[1] * 100.0),
                format!("{:.0}%", fr[2] * 100.0),
                format!("{:.3}", r.f1),
                format!("{:.0}", r.throughput_fps),
            ]);
            let threshold = ctx.plan.space.max_resolution();
            let lo = r.histogram.low_resolution_fraction(threshold);
            res_rows.push(vec![
                class.display_name().into(),
                r.method.clone(),
                format!("{:.0}/{:.0}", lo * 100.0, (1.0 - lo) * 100.0),
            ]);
        }
    }
    let mut text = render(
        "Figure 14a — Frames processed by fast/mid/slow configurations",
        &["Query", "Method", "fast", "mid", "slow", "F1", "fps"],
        &rows,
    );
    text.push_str(&render(
        "Figure 14b — Resolution split lo/hi (%)",
        &["Query", "Method", "lo/hi"],
        &res_rows,
    ));
    ExperimentOutput {
        id: "fig14".into(),
        text,
    }
}

/// Ablation: local (Eq. 2) vs aggregate (Alg. 2) rewards.
pub fn ablation_reward() -> ExperimentOutput {
    let mut rows = Vec::new();
    for (name, mode) in [
        ("Aggregate (Alg. 2)", None),
        (
            // β sits above the mean fastness so slow configurations earn
            // positive reward on action segments (Eq. 2's intent); the
            // local rule then overshoots accuracy with no way to trade it
            // back — the §4.5 motivation for aggregate rewards.
            "Local only (Eq. 2)",
            Some(RewardMode::Local { beta: 0.30 }),
        ),
    ] {
        let options = PlannerOptions {
            reward_mode: mode,
            ..PlannerOptions::default()
        };
        let ctx = ExperimentContext::with_scale(
            DatasetKind::Bdd100k,
            vec![ActionClass::CrossRight],
            0.85,
            DEFAULT_SCALE,
            options,
        );
        let r = ctx.run(ExecutorKind::ZeusRl);
        rows.push(vec![
            name.into(),
            format!("{:.3}", r.f1),
            format!("{:.0}", r.throughput_fps),
        ]);
    }
    ExperimentOutput {
        id: "ablation-reward".into(),
        text: render(
            "Ablation — reward function (CrossRight @ 0.85): the local reward lacks accuracy control (§4.5)",
            &["Reward", "F1", "fps"],
            &rows,
        ),
    }
}

/// Ablation: §5 model reuse vs per-configuration ensemble.
pub fn ablation_reuse() -> ExperimentOutput {
    let mut rows = Vec::new();
    for (name, ensemble) in [("Model reuse (§5)", false), ("Per-config ensemble", true)] {
        let options = PlannerOptions {
            per_config_ensemble: ensemble,
            ..PlannerOptions::default()
        };
        let ctx = ExperimentContext::with_scale(
            DatasetKind::Bdd100k,
            vec![ActionClass::CrossRight],
            0.85,
            DEFAULT_SCALE,
            options,
        );
        let r = ctx.run(ExecutorKind::ZeusRl);
        rows.push(vec![
            name.into(),
            format!("{:.3}", r.f1),
            format!("{:.0}", r.throughput_fps),
            format!("{:.0}s", ctx.plan.costs.apfg_training_secs),
        ]);
    }
    ExperimentOutput {
        id: "ablation-reuse".into(),
        text: render(
            "Ablation — APFG model reuse vs per-config ensemble (accuracy vs training cost, §5)",
            &["APFG strategy", "F1", "fps", "APFG training"],
            &rows,
        ),
    }
}

/// Ablation: aggregate-reward window size.
pub fn ablation_window() -> ExperimentOutput {
    let mut rows = Vec::new();
    for mult in [5usize, 25, 100] {
        let options = PlannerOptions {
            window_multiple: mult,
            ..PlannerOptions::default()
        };
        let ctx = ExperimentContext::with_scale(
            DatasetKind::Bdd100k,
            vec![ActionClass::CrossRight],
            0.85,
            DEFAULT_SCALE,
            options,
        );
        let r = ctx.run(ExecutorKind::ZeusRl);
        rows.push(vec![
            format!("W = {} frames", mult * 16),
            format!("{:.3}", r.f1),
            format!("{:.0}", r.throughput_fps),
        ]);
    }
    ExperimentOutput {
        id: "ablation-window".into(),
        text: render(
            "Ablation — aggregate-reward window size W (§4.5)",
            &["Window", "F1", "fps"],
            &rows,
        ),
    }
}

/// Extension: §6.4 inter-video parallelism.
pub fn extension_parallel(ctx: &ExperimentContext) -> ExperimentOutput {
    let engines = ctx.engines();
    let videos = ctx.test_videos();
    let mut rows = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let result = execute_parallel(&engines.zeus_rl, &videos, workers);
        rows.push(vec![
            format!("{workers}"),
            format!("{:.1}", result.makespan_secs()),
            format!("{:.0}", result.parallel_throughput()),
            format!("{:.2}x", result.speedup()),
        ]);
    }
    ExperimentOutput {
        id: "extension-parallel".into(),
        text: render(
            "Extension — inter-video parallel Zeus-RL (§6.4), CrossRight",
            &["Devices", "Makespan (s)", "Effective fps", "Speedup"],
            &rows,
        ),
    }
}

/// Extension: the vectorized training plane — training throughput of the
/// legacy serial trainer vs the `TrainingEngine` at increasing lockstep
/// environment counts, over one representative candidate job (the
/// planner trains one of these per portfolio spec). The row set is
/// gated on the fixed-seed equivalence invariant: the engine at
/// `vec_envs = 1` must reproduce the serial policy bit-for-bit.
pub fn extension_training(ctx: &ExperimentContext) -> ExperimentOutput {
    use zeus_core::training::{bench_env, bench_training, CandidateJob};
    use zeus_core::EvalProtocol;

    let seed = ctx.seed;
    let proto = bench_env(&ctx.dataset, seed).expect("experiment corpus has a training split");
    // The context's trainer config sizes the workload (fast options in
    // tests shrink it), capped at 3 episodes — the benchmark sweeps the
    // job five times (serial + equivalence echo + 3 widths), so the
    // planner's full 20-episode default would dominate the suite.
    let mut base = ctx.options.trainer.clone();
    base.episodes = base.episodes.min(3);
    let job = CandidateJob::representative(
        base,
        EvalProtocol::for_family(ctx.dataset.family()),
        ctx.query.target_accuracy,
        seed,
    );
    let report = bench_training(&proto, &job, &[2, 4, 8]).expect("benchmark trains");

    let mut rows = Vec::new();
    let mut push_row = |s: &zeus_core::training::ThroughputSample, base: f64| {
        rows.push(vec![
            s.label.clone(),
            format!("{}", s.steps),
            format!("{}", s.updates),
            format!("{:.0}", s.steps_per_sec),
            format!("{:.2}x", s.steps_per_sec / base),
        ]);
    };
    let base = report.serial.steps_per_sec;
    push_row(&report.serial, base);
    for s in &report.vectorized {
        push_row(s, base);
    }
    let mut text = render(
        "Extension — vectorized training plane (steps/s, one candidate)",
        &["Configuration", "Steps", "Updates", "Steps/s", "Speedup"],
        &rows,
    );
    text.push_str(&format!(
        "\nfixed-seed serial equivalence at vec_envs = 1: {}; shared feature-cache hit rate {:.1}%\n",
        if report.equivalent { "OK" } else { "FAILED" },
        report.cache_hit_rate * 100.0,
    ));
    ExperimentOutput {
        id: "extension-training".into(),
        text,
    }
}

/// Extension: the `zeus-serve` concurrent serving layer — the
/// latency/throughput curve vs worker count that motivates the device
/// pool. A closed-loop workload of distinct queries (one trained policy
/// shared across accuracy-target identities, so no per-query retraining)
/// saturates servers of 1–8 devices.
pub fn extension_serving(ctx: &ExperimentContext) -> ExperimentOutput {
    use zeus_core::catalog::{decode_plan, encode_plan};
    use zeus_core::query::ActionQuery;
    use zeus_serve::{
        run_closed_loop, CorpusId, PlanStore, Priority, ServeConfig, WorkloadSpec, ZeusServer,
    };

    // 24 query identities over one trained plan; 48 submissions → every
    // identity runs once and repeats hit the result cache.
    let targets: Vec<f64> = (0..24).map(|i| 0.70 + 0.005 * i as f64).collect();
    let corpus = CorpusId::of(&ctx.dataset);
    let templates: Vec<ActionQuery> = targets
        .iter()
        .map(|&t| ActionQuery::multi(ctx.query.classes.clone(), t).unwrap())
        .collect();
    let spec = WorkloadSpec {
        templates: templates.clone(),
        priorities: Priority::ALL.to_vec(),
        total: 48,
        seed: DEFAULT_SEED,
    };

    let mut rows = Vec::new();
    let mut base_qps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let plans = PlanStore::in_memory();
        let stored =
            decode_plan(&encode_plan(&ctx.plan, ctx.options.seed)).expect("plan roundtrip");
        for template in &templates {
            let mut variant = stored.clone();
            variant.query = template.clone();
            plans.install_stored(corpus, variant);
        }
        let server = ZeusServer::start(
            &ctx.dataset,
            plans,
            ServeConfig {
                workers,
                queue_capacity: 256,
                cache_capacity: 64,
                ..ServeConfig::default()
            },
        )
        .expect("serve config is valid");
        let report = run_closed_loop(&server, &spec, 8);
        server.shutdown();
        let m = &report.metrics;
        if workers == 1 {
            base_qps = m.throughput_qps;
        }
        rows.push(vec![
            format!("{workers}"),
            format!("{:.1}", m.p50.as_secs_f64() * 1e3),
            format!("{:.1}", m.p95.as_secs_f64() * 1e3),
            format!("{:.1}", m.p99.as_secs_f64() * 1e3),
            format!("{:.1}", m.throughput_qps),
            if base_qps > 0.0 {
                format!("{:.2}x", m.throughput_qps / base_qps)
            } else {
                "-".into()
            },
            format!("{:.0}%", m.cache_hit_rate() * 100.0),
        ]);
    }
    ExperimentOutput {
        id: "extension-serving".into(),
        text: render(
            "Extension — zeus-serve closed-loop scaling, CrossRight (48 queries, 8 clients)",
            &[
                "Devices",
                "p50 (ms)",
                "p95 (ms)",
                "p99 (ms)",
                "qps",
                "Speedup",
                "Cache hits",
            ],
            &rows,
        ),
    }
}

/// Run the full suite in paper order. `fast` skips the slowest blocks.
pub fn run_all(fast: bool) -> Vec<ExperimentOutput> {
    let mut outputs = Vec::new();
    outputs.push(table1());
    outputs.push(table3(DEFAULT_SCALE));

    // Shared contexts for the six paper queries at Figure 8 targets.
    let queries = paper_queries();
    let contexts: Vec<(&str, ExperimentContext)> = queries
        .iter()
        .map(|&(kind, class, target)| {
            (
                class.display_name(),
                ExperimentContext::new(kind, vec![class], target),
            )
        })
        .collect();
    let ctx_refs: Vec<(&str, &ExperimentContext)> = contexts.iter().map(|(n, c)| (*n, c)).collect();
    let cross_right = &contexts[0].1;
    let left_turn = &contexts[1].1;

    outputs.push(table2(cross_right));
    outputs.push(table4(&ctx_refs));
    outputs.push(fig8(&ctx_refs));
    outputs.push(table6(cross_right));

    // Figure 9 / Table 5: targets 0.75/0.80/0.85 on CrossRight, LeftTurn.
    let mut sweep = Vec::new();
    for &(name, class) in &[
        ("CrossRight", ActionClass::CrossRight),
        ("LeftTurn", ActionClass::LeftTurn),
    ] {
        for &target in &[0.75f64, 0.80, 0.85] {
            sweep.push((
                name,
                target,
                ExperimentContext::new(DatasetKind::Bdd100k, vec![class], target),
            ));
        }
    }
    outputs.push(fig9_table5(&sweep));

    outputs.push(fig12(cross_right));
    outputs.push(fig13(cross_right, left_turn));
    outputs.push(extension_parallel(cross_right));
    outputs.push(extension_training(cross_right));
    outputs.push(extension_serving(cross_right));

    if !fast {
        outputs.push(fig10(&[
            (DatasetKind::Bdd100k, ActionClass::CrossRight, 0.85),
            (DatasetKind::Bdd100k, ActionClass::LeftTurn, 0.85),
        ]));
        outputs.push(fig11());
        outputs.push(fig14());
        outputs.push(ablation_reward());
        outputs.push(ablation_reuse());
        outputs.push(ablation_window());
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_core::query::ActionQuery;
    use zeus_rl::EpsilonSchedule;

    #[test]
    fn training_experiment_reports_speedup_and_equivalence() {
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 1;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let ctx = crate::harness::ExperimentContext::with_scale(
            DatasetKind::Bdd100k,
            vec![ActionClass::CrossRight],
            0.85,
            0.05,
            options,
        );
        let out = extension_training(&ctx);
        assert_eq!(out.id, "extension-training");
        assert!(
            out.text.contains("serial (legacy DqnTrainer)"),
            "{}",
            out.text
        );
        assert!(out.text.contains("vec_envs = 8"), "{}", out.text);
        assert!(
            out.text.contains("equivalence at vec_envs = 1: OK"),
            "equivalence must hold:\n{}",
            out.text
        );
    }

    #[test]
    fn serving_experiment_produces_the_scaling_table() {
        // A fast-options context at reduced scale; the experiment itself
        // only cares that the serving layer drives all worker counts.
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.trainer.epsilon = EpsilonSchedule::new(1.0, 0.1, 500);
        options.candidates.truncate(1);
        let ctx = crate::harness::ExperimentContext::with_scale(
            DatasetKind::Bdd100k,
            vec![ActionClass::CrossRight],
            0.85,
            0.1,
            options,
        );
        let out = extension_serving(&ctx);
        assert_eq!(out.id, "extension-serving");
        for workers in ["1", "2", "4", "8"] {
            assert!(
                out.text
                    .lines()
                    .any(|l| l.trim_start().starts_with(workers)),
                "missing row for {workers} devices:\n{}",
                out.text
            );
        }
        assert!(out.text.contains("Cache hits"));
    }

    #[test]
    fn query_is_reused_not_retrained_across_targets() {
        let _ = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
        // 24 identities in the serving experiment share one trained plan;
        // the identity count is part of the experiment's contract.
        let targets: Vec<f64> = (0..24).map(|i| 0.70 + 0.005 * i as f64).collect();
        assert_eq!(targets.len(), 24);
        assert!(targets.iter().all(|t| (0.0..1.0).contains(t)));
    }
}
