//! Regenerate every table and figure of the Zeus paper's evaluation (§6).
//!
//! ```text
//! cargo run -p zeus-bench --release --bin reproduce            # full suite
//! cargo run -p zeus-bench --release --bin reproduce -- fast    # core subset
//! cargo run -p zeus-bench --release --bin reproduce -- fig8    # one experiment
//! ```
//!
//! Output is deterministic for a fixed build (all randomness is seeded and
//! time is simulated). Expect ~5–15 minutes for the full suite.

use std::io::Write;

use zeus_bench::experiments;
use zeus_bench::harness::DEFAULT_SCALE;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args.first().map(String::as_str);

    let t0 = std::time::Instant::now();
    println!(
        "Zeus reproduction harness — corpus scale {DEFAULT_SCALE}, deterministic seeds.\n\
         Shapes (who wins, by what factor) are the comparison target, not absolute numbers."
    );

    let outputs = match filter {
        Some("fast") => experiments::run_all(true),
        Some(id) if id != "all" => {
            // Single-experiment mode: run the full suite lazily would be
            // wasteful; dispatch the cheap standalone ones directly.
            match id {
                "table1" => vec![experiments::table1()],
                "table3" => vec![experiments::table3(DEFAULT_SCALE)],
                "fig10" => vec![experiments::fig10(&[
                    (
                        zeus_video::DatasetKind::Bdd100k,
                        zeus_video::ActionClass::CrossRight,
                        0.85,
                    ),
                    (
                        zeus_video::DatasetKind::Bdd100k,
                        zeus_video::ActionClass::LeftTurn,
                        0.85,
                    ),
                ])],
                "fig11" => vec![experiments::fig11()],
                "fig14" => vec![experiments::fig14()],
                "ablation-reward" => vec![experiments::ablation_reward()],
                "ablation-reuse" => vec![experiments::ablation_reuse()],
                "ablation-window" => vec![experiments::ablation_window()],
                other => {
                    // Everything else needs the shared contexts; run the
                    // full suite and filter.
                    experiments::run_all(false)
                        .into_iter()
                        .filter(|o| o.id == other)
                        .collect()
                }
            }
        }
        _ => experiments::run_all(false),
    };

    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    for out in &outputs {
        writeln!(lock, "{}", out.text).expect("stdout");
    }
    writeln!(
        lock,
        "\n{} experiment blocks in {:.1?}.",
        outputs.len(),
        t0.elapsed()
    )
    .expect("stdout");
}
