//! Calibration probe: profiles configuration spaces and compares each
//! method across the paper's six queries, so the SimParams constants can
//! be tuned against the paper's published shapes.

use zeus_bench::harness::{paper_queries, ExperimentContext};
use zeus_core::ExecutorKind;
use zeus_video::{ActionClass, DatasetKind};

fn main() {
    let t0 = std::time::Instant::now();
    let ctx = ExperimentContext::new(DatasetKind::Bdd100k, vec![ActionClass::CrossRight], 0.85);
    println!("planning took {:?}", t0.elapsed());

    println!("\nTable-2 rows (paper: (150,4,8)->0.57, (200,4,4)->0.82, (250,6,2)->0.86, (300,6,1)->0.91):");
    for p in &ctx.plan.profiles {
        let c = p.config;
        if [(150, 4, 8), (200, 4, 4), (250, 6, 2), (300, 6, 1)].contains(&(
            c.resolution,
            c.seg_len,
            c.sampling_rate,
        )) {
            println!(
                "  {:>14}  {:7.1} fps  F1 {:.3}",
                c.to_string(),
                p.throughput_fps,
                p.f1
            );
        }
    }
    println!(
        "max F1 over space: {:.3} (paper Table 4: 0.91)",
        ctx.plan.max_accuracy
    );
    println!(
        "episode rewards: {:?}",
        ctx.plan
            .training_report
            .episode_rewards
            .iter()
            .map(|r| (r * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    let r = ctx.run(ExecutorKind::ZeusRl);
    println!(
        "Zeus-RL F1 {:.2} @{:.0}fps; lo-res frac {:.2}; top-5 configs:",
        r.f1,
        r.throughput_fps,
        r.histogram.low_resolution_fraction(200)
    );
    let mut entries = r.histogram.entries();
    entries.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (c, n) in entries.iter().take(5) {
        println!("   {:>14} {:>8} frames", c.to_string(), n);
    }

    println!("\nPer-query sweep (paper targets: BDD 0.85, others 0.75):");
    for (kind, class, target) in paper_queries() {
        let ctx = ExperimentContext::new(kind, vec![class], target);
        print!(
            "{:<12} {:<15} maxF1 {:.2} slide {:<12}",
            kind.name(),
            class.display_name(),
            ctx.plan.max_accuracy,
            ctx.plan.sliding_config.to_string()
        );
        for k in [
            ExecutorKind::ZeusSliding,
            ExecutorKind::ZeusHeuristic,
            ExecutorKind::ZeusRl,
        ] {
            let r = ctx.run(k);
            print!(
                " | {} F1 {:.2} @{:6.0}fps",
                r.method, r.f1, r.throughput_fps
            );
        }
        println!();
    }
    println!("total {:?}", t0.elapsed());
}
