//! Shared experiment driver: dataset → plan → engines → evaluated results.

use zeus_core::baselines::QueryEngine;
use zeus_core::planner::{EngineSet, PlannerOptions, QueryPlan, QueryPlanner};
use zeus_core::query::ActionQuery;
use zeus_core::result::QueryResult;
use zeus_core::{EvalProtocol, ExecutorKind};
use zeus_video::video::Split;
use zeus_video::{ActionClass, DatasetKind, SyntheticDataset, Video};

/// Default corpus scale for the reproduction harness. Keeps per-dataset
/// statistics (Table 3) intact while shrinking video counts so that the
/// full table/figure sweep finishes in minutes on a laptop. Paper-scale
/// (1.0) runs are supported via `ExperimentContext::with_scale`.
pub const DEFAULT_SCALE: f64 = 0.60;

/// Default corpus seed (fixed for bit-reproducible tables).
pub const DEFAULT_SEED: u64 = 2022;

/// One method's evaluated outcome on a query — a point in Figure 8's
/// throughput-vs-F1 plane.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Which technique.
    pub kind: ExecutorKind,
    /// The evaluated result.
    pub result: QueryResult,
}

/// A fully-planned experiment: dataset, query, trained plan.
pub struct ExperimentContext {
    /// The generated corpus.
    pub dataset: SyntheticDataset,
    /// Scale the corpus was generated at.
    pub scale: f64,
    /// Seed the corpus was generated with.
    pub seed: u64,
    /// The planned query.
    pub query: ActionQuery,
    /// Planner options used.
    pub options: PlannerOptions,
    /// The trained plan.
    pub plan: QueryPlan,
}

impl ExperimentContext {
    /// Plan a query on a dataset at the default reproduction scale.
    pub fn new(kind: DatasetKind, classes: Vec<ActionClass>, target: f64) -> Self {
        Self::with_scale(
            kind,
            classes,
            target,
            DEFAULT_SCALE,
            PlannerOptions::default(),
        )
    }

    /// Plan with explicit scale and planner options.
    pub fn with_scale(
        kind: DatasetKind,
        classes: Vec<ActionClass>,
        target: f64,
        scale: f64,
        options: PlannerOptions,
    ) -> Self {
        let dataset = kind.generate(scale, DEFAULT_SEED);
        let query = ActionQuery::multi(classes, target).unwrap();
        let planner = QueryPlanner::new(&dataset, options.clone());
        let plan = planner.plan(&query);
        ExperimentContext {
            dataset,
            scale,
            seed: DEFAULT_SEED,
            query,
            options,
            plan,
        }
    }

    /// The evaluation protocol for this dataset.
    pub fn protocol(&self) -> EvalProtocol {
        EvalProtocol::for_family(self.dataset.family())
    }

    /// Test-split videos.
    pub fn test_videos(&self) -> Vec<&Video> {
        self.dataset.store.split(Split::Test)
    }

    /// Build the five engines from the current plan.
    pub fn engines(&self) -> EngineSet {
        let planner = QueryPlanner::new(&self.dataset, self.options.clone());
        planner.build_engines(&self.plan)
    }

    /// Run one technique on the test split and evaluate it.
    pub fn run(&self, kind: ExecutorKind) -> QueryResult {
        let engines = self.engines();
        let videos = self.test_videos();
        let (name, exec) = match kind {
            ExecutorKind::FramePp => (kind.name(), engines.frame_pp.execute(&videos)),
            ExecutorKind::SegmentPp => (kind.name(), engines.segment_pp.execute(&videos)),
            ExecutorKind::ZeusSliding => (kind.name(), engines.sliding.execute(&videos)),
            ExecutorKind::ZeusHeuristic => (kind.name(), engines.heuristic.execute(&videos)),
            ExecutorKind::ZeusRl => (kind.name(), engines.zeus_rl.execute(&videos)),
        };
        let report = exec.evaluate(&videos, &self.query.classes, self.protocol());
        QueryResult::from_parts(name, &exec, &report)
    }

    /// Run all five techniques (Figure 8's per-query sweep).
    pub fn run_all(&self) -> Vec<MethodOutcome> {
        ExecutorKind::ALL
            .into_iter()
            .map(|kind| MethodOutcome {
                kind,
                result: self.run(kind),
            })
            .collect()
    }
}

/// The paper's six evaluation queries (§6.1) with their Figure 8 accuracy
/// targets (0.85 for BDD100K, 0.75 for Thumos14/ActivityNet, §6.2).
pub fn paper_queries() -> Vec<(DatasetKind, ActionClass, f64)> {
    vec![
        (DatasetKind::Bdd100k, ActionClass::CrossRight, 0.85),
        (DatasetKind::Bdd100k, ActionClass::LeftTurn, 0.85),
        (DatasetKind::Thumos14, ActionClass::PoleVault, 0.75),
        (DatasetKind::Thumos14, ActionClass::CleanAndJerk, 0.75),
        (DatasetKind::ActivityNet, ActionClass::IroningClothes, 0.75),
        (DatasetKind::ActivityNet, ActionClass::TennisServe, 0.75),
    ]
}
