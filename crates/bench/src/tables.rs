//! Plain-text table rendering for the reproduce binary.

/// Render a table with a header row and aligned columns.
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            "Demo",
            &["a", "long-header"],
            &[vec!["x".into(), "1".into()], vec!["yy".into(), "2".into()]],
        );
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-header"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 5);
    }
}
