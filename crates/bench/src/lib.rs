//! # zeus-bench
//!
//! The reproduction harness: shared experiment drivers used by the
//! `reproduce` binary (which regenerates every table and figure of the
//! paper) and by the Criterion benches.

#![warn(missing_docs)]
pub mod experiments;
pub mod harness;
pub mod tables;

pub use harness::{ExperimentContext, MethodOutcome};
