//! Device profiles and simulated device instances: the paper's GPU and
//! CPU inference targets, plus the [`SimDevice`] unit of hardware that the
//! parallel executor (§6.4) and the `zeus-serve` worker pool schedule onto.

use serde::{Deserialize, Serialize};

use crate::clock::SimClock;

/// A hardware profile scaling the base (GPU-calibrated) latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Multiplier over the GPU-calibrated latencies (GPU = 1.0).
    pub slowdown: f64,
}

impl DeviceProfile {
    /// The paper's evaluation GPU: NVIDIA GeForce RTX 2080 Ti (§6.1).
    /// All cost-model constants are calibrated against this device.
    pub fn gpu_rtx_2080_ti() -> Self {
        DeviceProfile {
            name: "NVIDIA GeForce RTX 2080 Ti".to_string(),
            slowdown: 1.0,
        }
    }

    /// The paper's 16-core CPU host. §1 reports R3D at 720×720 running at
    /// 2 fps on the CPU vs 13 fps on a server-grade GPU → 6.5× slowdown.
    pub fn cpu_16_core() -> Self {
        DeviceProfile {
            name: "16-core CPU".to_string(),
            slowdown: 6.5,
        }
    }

    /// A custom profile (e.g., for what-if capacity planning).
    pub fn custom(name: impl Into<String>, slowdown: f64) -> Self {
        assert!(slowdown > 0.0, "slowdown must be positive");
        DeviceProfile {
            name: name.into(),
            slowdown,
        }
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::gpu_rtx_2080_ti()
    }
}

/// One simulated accelerator: a profile plus an accumulating clock.
///
/// A device is the schedulable unit of hardware. The §6.4 fork-join
/// executor creates fresh devices per run; the `zeus-serve` worker pool
/// keeps one long-lived device per worker so busy-time accumulates across
/// queries and drives utilization accounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimDevice {
    id: usize,
    profile: DeviceProfile,
    clock: SimClock,
}

impl SimDevice {
    /// A fresh, idle device.
    pub fn new(id: usize, profile: DeviceProfile) -> Self {
        SimDevice {
            id,
            profile,
            clock: SimClock::new(),
        }
    }

    /// Pool-local device id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The hardware profile this device simulates.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The device's accumulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Mutable access for executors charging work to this device.
    pub fn clock_mut(&mut self) -> &mut SimClock {
        &mut self.clock
    }

    /// Total simulated seconds this device has been busy.
    pub fn busy_secs(&self) -> f64 {
        self.clock.elapsed_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_baseline() {
        assert_eq!(DeviceProfile::gpu_rtx_2080_ti().slowdown, 1.0);
        assert_eq!(DeviceProfile::default(), DeviceProfile::gpu_rtx_2080_ti());
    }

    #[test]
    fn cpu_matches_paper_ratio() {
        // §1: 2 fps CPU vs 13 fps GPU = 6.5x.
        assert!((DeviceProfile::cpu_16_core().slowdown - 13.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn custom_rejects_nonpositive() {
        let _ = DeviceProfile::custom("bad", 0.0);
    }

    #[test]
    fn device_accumulates_busy_time() {
        use crate::clock::SimDuration;
        let mut d = SimDevice::new(3, DeviceProfile::default());
        assert_eq!(d.id(), 3);
        assert_eq!(d.busy_secs(), 0.0);
        d.clock_mut().advance(SimDuration::from_secs(1.5));
        d.clock_mut().advance(SimDuration::from_secs(0.5));
        assert_eq!(d.busy_secs(), 2.0);
        assert_eq!(d.clock().events(), 2);
    }
}
