//! Device profiles: the paper's GPU and CPU inference targets.

use serde::{Deserialize, Serialize};

/// A hardware profile scaling the base (GPU-calibrated) latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Multiplier over the GPU-calibrated latencies (GPU = 1.0).
    pub slowdown: f64,
}

impl DeviceProfile {
    /// The paper's evaluation GPU: NVIDIA GeForce RTX 2080 Ti (§6.1).
    /// All cost-model constants are calibrated against this device.
    pub fn gpu_rtx_2080_ti() -> Self {
        DeviceProfile {
            name: "NVIDIA GeForce RTX 2080 Ti".to_string(),
            slowdown: 1.0,
        }
    }

    /// The paper's 16-core CPU host. §1 reports R3D at 720×720 running at
    /// 2 fps on the CPU vs 13 fps on a server-grade GPU → 6.5× slowdown.
    pub fn cpu_16_core() -> Self {
        DeviceProfile {
            name: "16-core CPU".to_string(),
            slowdown: 6.5,
        }
    }

    /// A custom profile (e.g., for what-if capacity planning).
    pub fn custom(name: impl Into<String>, slowdown: f64) -> Self {
        assert!(slowdown > 0.0, "slowdown must be positive");
        DeviceProfile {
            name: name.into(),
            slowdown,
        }
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::gpu_rtx_2080_ti()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_baseline() {
        assert_eq!(DeviceProfile::gpu_rtx_2080_ti().slowdown, 1.0);
        assert_eq!(DeviceProfile::default(), DeviceProfile::gpu_rtx_2080_ti());
    }

    #[test]
    fn cpu_matches_paper_ratio() {
        // §1: 2 fps CPU vs 13 fps GPU = 6.5x.
        assert!((DeviceProfile::cpu_16_core().slowdown - 13.0 / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "slowdown must be positive")]
    fn custom_rejects_nonpositive() {
        let _ = DeviceProfile::custom("bad", 0.0);
    }
}
