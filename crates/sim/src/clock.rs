//! Simulated time: durations and an accumulating clock.

use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul};

use serde::{Deserialize, Serialize};

/// A span of simulated time, stored as seconds in `f64`.
///
/// Simulated durations are exact (no wall-clock jitter), which makes every
/// throughput table in the reproduction bit-for-bit deterministic.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds. Panics on negative or non-finite input.
    pub fn from_secs(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration(secs)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1e3)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us / 1e6)
    }

    /// Duration in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Duration in milliseconds.
    pub fn as_millis(&self) -> f64 {
        self.0 * 1e3
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs >= 0.0, "cannot scale duration by negative factor");
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        assert!(rhs > 0.0, "cannot divide duration by non-positive factor");
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// An accumulating simulated clock.
///
/// Executors advance the clock by the model cost of each operation; at the
/// end of a run, `throughput(total_video_frames)` yields the fps figure the
/// paper plots (frames of *video covered* per second of *processing time*,
/// which is how a filtering system can exceed the decode rate).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimClock {
    elapsed: SimDuration,
    events: u64,
}

impl SimClock {
    /// A fresh clock at t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `d`, counting one event.
    pub fn advance(&mut self, d: SimDuration) {
        self.elapsed += d;
        self.events += 1;
    }

    /// Total elapsed simulated seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs()
    }

    /// Total elapsed simulated time.
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// Number of `advance` calls (e.g., APFG invocations).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Frames-per-second throughput for a workload that covered
    /// `frames_covered` video frames in the elapsed time.
    ///
    /// Returns `f64::INFINITY` when no time has elapsed and frames were
    /// covered; 0.0 when nothing was covered.
    pub fn throughput(&self, frames_covered: u64) -> f64 {
        if frames_covered == 0 {
            return 0.0;
        }
        let secs = self.elapsed.as_secs();
        if secs == 0.0 {
            f64::INFINITY
        } else {
            frames_covered as f64 / secs
        }
    }

    /// Merge another clock's time and events into this one (used by the
    /// inter-video parallel executor to combine per-worker clocks).
    pub fn merge(&mut self, other: &SimClock) {
        self.elapsed += other.elapsed;
        self.events += other.events;
    }

    /// Reset to t=0.
    pub fn reset(&mut self) {
        self.elapsed = SimDuration::ZERO;
        self.events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(0.5), SimDuration::from_millis(500.0));
        assert_eq!(
            SimDuration::from_millis(1.0),
            SimDuration::from_micros(1000.0)
        );
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!((a + b).as_secs(), 3.0);
        assert_eq!((a * 4.0).as_secs(), 4.0);
        assert_eq!((b / 2.0).as_secs(), 1.0);
        let total: SimDuration = [a, b, a].into_iter().sum();
        assert_eq!(total.as_secs(), 4.0);
    }

    #[test]
    fn clock_accumulates_and_reports_throughput() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_secs(2.0));
        c.advance(SimDuration::from_secs(3.0));
        assert_eq!(c.elapsed_secs(), 5.0);
        assert_eq!(c.events(), 2);
        assert_eq!(c.throughput(1000), 200.0);
    }

    #[test]
    fn throughput_edge_cases() {
        let c = SimClock::new();
        assert_eq!(c.throughput(0), 0.0);
        assert_eq!(c.throughput(10), f64::INFINITY);
    }

    #[test]
    fn merge_combines() {
        let mut a = SimClock::new();
        a.advance(SimDuration::from_secs(1.0));
        let mut b = SimClock::new();
        b.advance(SimDuration::from_secs(2.0));
        b.advance(SimDuration::from_secs(1.0));
        a.merge(&b);
        assert_eq!(a.elapsed_secs(), 4.0);
        assert_eq!(a.events(), 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = SimClock::new();
        c.advance(SimDuration::from_secs(1.0));
        c.reset();
        assert_eq!(c.elapsed_secs(), 0.0);
        assert_eq!(c.events(), 0);
    }
}
