//! Latency cost model calibrated to the paper's published measurements.
//!
//! ## Calibration (R3D invocation latency)
//!
//! Table 2 of the paper reports, for the CrossRight query on the RTX 2080 Ti:
//!
//! | Resolution | Seg. length | Sampling rate | Throughput (fps) |
//! |---|---|---|---|
//! | 150 | 4 | 8 | 1282 |
//! | 200 | 4 | 4 | 553 |
//! | 250 | 6 | 2 | 285 |
//! | 300 | 6 | 1 | 115 |
//!
//! One sliding invocation with configuration `(r, l, s)` covers `l·s` video
//! frames, so the per-invocation latency implied by each row is
//! `t = l·s / fps`. Least-squares fitting `t = A + K·(l·r²)` over the four
//! rows yields:
//!
//! ```text
//! A = 19.37 ms   (fixed launch/readout overhead)
//! K = 60.68 ns   (per input voxel: l frames x r^2 pixels)
//! ```
//!
//! which reproduces all four throughputs within 0.5% (asserted in tests).
//!
//! ## Other constants
//!
//! * `FRAME_PP_SPEEDUP = 5.9` — §6.2: "each APFG invocation is 5.9× faster
//!   in Frame-PP"; a Frame-PP invocation processes one frame with a 2D CNN.
//! * `LIGHT3D_SPEEDUP = 10.0` — Segment-PP's "lightweight 3D-CNN filter"
//!   (§6.1). The paper gives no number; we use the same order of
//!   lightweight-to-heavy ratio as NoScope/PP-style cascades, and expose it
//!   as a tunable.
//! * `TRAIN_PASS_MULT = 3.0` — standard forward+backward ≈ 3× forward.
//! * DQN-head and classifier-head latencies are sub-millisecond MLP passes,
//!   folded into `mlp_head_time`.

use serde::{Deserialize, Serialize};

use crate::clock::SimDuration;
use crate::device::DeviceProfile;

/// Fixed per-invocation overhead of the R3D network, seconds.
pub const R3D_BASE_S: f64 = 0.019371;
/// Per-voxel compute cost of the R3D network, seconds per (frame · pixel).
pub const R3D_PER_VOXEL_S: f64 = 6.068e-8;
/// §6.2: Frame-PP's 2D-CNN invocation is 5.9× faster than an R3D invocation.
pub const FRAME_PP_SPEEDUP: f64 = 5.9;
/// Segment-PP's lightweight 3D filter speedup over the full R3D.
pub const LIGHT3D_SPEEDUP: f64 = 10.0;
/// Forward+backward training pass cost relative to a forward pass.
pub const TRAIN_PASS_MULT: f64 = 3.0;
/// Latency of a small MLP head (classifier or DQN policy) per call, seconds.
/// Three dense layers on a ≤512-d feature: ~50 µs on the calibrated GPU.
pub const MLP_HEAD_S: f64 = 5.0e-5;

/// Latency cost model for all model families used in the paper, scaled by a
/// [`DeviceProfile`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    device: DeviceProfile,
    /// Overridable Frame-PP speedup (defaults to [`FRAME_PP_SPEEDUP`]).
    pub frame_pp_speedup: f64,
    /// Overridable light-filter speedup (defaults to [`LIGHT3D_SPEEDUP`]).
    pub light3d_speedup: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new(DeviceProfile::default())
    }
}

impl CostModel {
    /// Build a cost model for a device.
    pub fn new(device: DeviceProfile) -> Self {
        CostModel {
            device,
            frame_pp_speedup: FRAME_PP_SPEEDUP,
            light3d_speedup: LIGHT3D_SPEEDUP,
        }
    }

    /// The device this model is scaled for.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    fn scale(&self, secs: f64) -> SimDuration {
        SimDuration::from_secs(secs * self.device.slowdown)
    }

    /// Latency of one R3D (APFG) invocation on a segment of `seg_len`
    /// sampled frames at `resolution x resolution` pixels.
    ///
    /// Note `seg_len` is the number of frames *fed to the network* (the
    /// configuration's segment length), not the span `l·s` covered in the
    /// video.
    pub fn r3d_invocation(&self, seg_len: usize, resolution: usize) -> SimDuration {
        assert!(seg_len > 0 && resolution > 0, "empty segment");
        let voxels = (seg_len * resolution * resolution) as f64;
        self.scale(R3D_BASE_S + R3D_PER_VOXEL_S * voxels)
    }

    /// Latency of one Frame-PP 2D-CNN invocation on a single frame.
    ///
    /// Modeled as an R3D invocation over the Frame-PP reference segment
    /// shape divided by the paper's 5.9× per-invocation speedup. The
    /// reference length 6 matches the configurations Table 2 profiles.
    pub fn cnn2d_frame(&self, resolution: usize) -> SimDuration {
        const REF_LEN: usize = 6;
        let r3d = R3D_BASE_S + R3D_PER_VOXEL_S * (REF_LEN * resolution * resolution) as f64;
        self.scale(r3d / self.frame_pp_speedup)
    }

    /// Latency of one lightweight 3D-filter invocation (Segment-PP).
    pub fn light3d_invocation(&self, seg_len: usize, resolution: usize) -> SimDuration {
        assert!(seg_len > 0 && resolution > 0, "empty segment");
        let voxels = (seg_len * resolution * resolution) as f64;
        self.scale((R3D_BASE_S + R3D_PER_VOXEL_S * voxels) / self.light3d_speedup)
    }

    /// Latency of a small MLP head pass (APFG classifier or DQN policy).
    pub fn mlp_head(&self) -> SimDuration {
        self.scale(MLP_HEAD_S)
    }

    /// Latency of one training pass (forward + backward) over a segment.
    pub fn r3d_training_pass(&self, seg_len: usize, resolution: usize) -> SimDuration {
        self.r3d_invocation(seg_len, resolution) * TRAIN_PASS_MULT
    }

    /// Latency of one 2D-CNN training pass over a frame.
    pub fn cnn2d_training_pass(&self, resolution: usize) -> SimDuration {
        self.cnn2d_frame(resolution) * TRAIN_PASS_MULT
    }

    /// Latency of one DQN update step over a minibatch of experiences.
    ///
    /// An update is `batch` forward+backward MLP passes plus sampling
    /// overhead; folded to `batch * 2 * MLP head` cost.
    pub fn dqn_update(&self, batch: usize) -> SimDuration {
        self.scale(MLP_HEAD_S * 2.0 * batch as f64)
    }

    /// Sliding-window throughput (fps) of a configuration: frames covered
    /// per invocation divided by invocation latency. This is exactly the
    /// quantity Table 2 tabulates.
    pub fn sliding_throughput(
        &self,
        seg_len: usize,
        sampling_rate: usize,
        resolution: usize,
    ) -> f64 {
        let covered = (seg_len * sampling_rate) as f64;
        covered / self.r3d_invocation(seg_len, resolution).as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The four rows of Table 2 with the paper's measured throughput.
    const TABLE2: [(usize, usize, usize, f64); 4] = [
        (150, 4, 8, 1282.0),
        (200, 4, 4, 553.0),
        (250, 6, 2, 285.0),
        (300, 6, 1, 115.0),
    ];

    #[test]
    fn calibration_reproduces_table2_within_one_percent() {
        let m = CostModel::default();
        for (r, l, s, paper_fps) in TABLE2 {
            let fps = m.sliding_throughput(l, s, r);
            let rel = (fps - paper_fps).abs() / paper_fps;
            assert!(
                rel < 0.01,
                "config ({r},{l},{s}): model {fps:.1} fps vs paper {paper_fps} fps ({:.2}% off)",
                rel * 100.0
            );
        }
    }

    #[test]
    fn faster_configs_are_faster() {
        let m = CostModel::default();
        // Throughput must be monotone: higher sampling rate, lower res
        // and shorter windows all increase fps.
        assert!(m.sliding_throughput(4, 8, 150) > m.sliding_throughput(4, 4, 150));
        assert!(m.sliding_throughput(4, 4, 150) > m.sliding_throughput(4, 4, 300));
        assert!(m.r3d_invocation(4, 150).as_secs() < m.r3d_invocation(8, 150).as_secs());
    }

    #[test]
    fn frame_pp_is_5_9x_faster_per_invocation() {
        let m = CostModel::default();
        let r3d = m.r3d_invocation(6, 300).as_secs();
        let f2d = m.cnn2d_frame(300).as_secs();
        assert!((r3d / f2d - FRAME_PP_SPEEDUP).abs() < 1e-9);
    }

    #[test]
    fn light_filter_is_cheaper_than_r3d() {
        let m = CostModel::default();
        let heavy = m.light3d_invocation(6, 300).as_secs() * LIGHT3D_SPEEDUP;
        assert!((heavy - m.r3d_invocation(6, 300).as_secs()).abs() < 1e-12);
    }

    #[test]
    fn cpu_profile_scales_latency() {
        let gpu = CostModel::new(DeviceProfile::gpu_rtx_2080_ti());
        let cpu = CostModel::new(DeviceProfile::cpu_16_core());
        let g = gpu.r3d_invocation(6, 300).as_secs();
        let c = cpu.r3d_invocation(6, 300).as_secs();
        assert!((c / g - 6.5).abs() < 1e-9);
    }

    #[test]
    fn training_pass_is_3x_inference() {
        let m = CostModel::default();
        let inf = m.r3d_invocation(4, 200).as_secs();
        let tr = m.r3d_training_pass(4, 200).as_secs();
        assert!((tr / inf - TRAIN_PASS_MULT).abs() < 1e-9);
    }

    #[test]
    fn dqn_update_scales_with_batch() {
        let m = CostModel::default();
        let one = m.dqn_update(1).as_secs();
        let kilo = m.dqn_update(1000).as_secs();
        assert!((kilo / one - 1000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty segment")]
    fn zero_segment_panics() {
        let m = CostModel::default();
        let _ = m.r3d_invocation(0, 100);
    }
}
