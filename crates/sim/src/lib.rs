//! # zeus-sim
//!
//! Simulated device clocks and cost models for the Zeus reproduction.
//!
//! The paper evaluates on an NVIDIA GeForce RTX 2080 Ti with 16 CPU cores
//! (§6.1). We do not have that testbed (or any GPU), so every throughput
//! number in this repository is produced by a *simulated clock* driven by a
//! latency model **calibrated to the paper's own published measurements**:
//!
//! * Table 2 lists four (configuration → throughput) pairs for the R3D
//!   APFG. Fitting `t_inv(l, r) = A + K · l · r²` to those four points by
//!   least squares gives `A = 19.37 ms` and `K = 60.68 ns/(frame·px)`;
//!   the fit reproduces all four paper throughputs within 0.5%
//!   (see `tests` in [`cost`]). The affine form matches the physics:
//!   a fixed kernel-launch/readout overhead plus compute proportional to
//!   voxels processed.
//! * §6.2 states each Frame-PP (2D CNN) invocation is 5.9× faster than an
//!   R3D invocation; §1 states R3D on a 16-core CPU is ~6.5× slower than
//!   on the GPU (2 fps vs 13 fps at 720×720).
//!
//! Because all methods share one latency model, every *ratio* the paper
//! reports (speedups, crossovers) is preserved even if one disagrees with
//! the absolute constants.

#![warn(missing_docs)]
pub mod clock;
pub mod cost;
pub mod device;

pub use clock::{SimClock, SimDuration};
pub use cost::CostModel;
pub use device::{DeviceProfile, SimDevice};
