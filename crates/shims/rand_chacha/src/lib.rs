//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher in
//! counter mode driving the local `rand` shim's [`RngCore`].
//!
//! Streams are deterministic given a seed but are not bit-compatible with
//! upstream `rand_chacha` (the repository only relies on internal
//! determinism, never on upstream byte streams).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher state: 4 constants, 8 key words, 64-bit block counter,
    /// 64-bit stream id.
    key: [u32; 8],
    stream: u64,
    counter: u64,
    /// Buffered keystream block and read position.
    block: [u32; 16],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// "expand 32-byte k" — the ChaCha constant words.
    const SIGMA: [u32; 4] = [0x61707865, 0x3320646E, 0x79622D32, 0x6B206574];

    fn refill(&mut self) {
        let mut s: [u32; 16] = [
            Self::SIGMA[0],
            Self::SIGMA[1],
            Self::SIGMA[2],
            Self::SIGMA[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = s;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut s, 0, 4, 8, 12);
            quarter_round(&mut s, 1, 5, 9, 13);
            quarter_round(&mut s, 2, 6, 10, 14);
            quarter_round(&mut s, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut s, 0, 5, 10, 15);
            quarter_round(&mut s, 1, 6, 11, 12);
            quarter_round(&mut s, 2, 7, 8, 13);
            quarter_round(&mut s, 3, 4, 9, 14);
        }
        for (o, i) in s.iter_mut().zip(input.iter()) {
            *o = o.wrapping_add(*i);
        }
        self.block = s;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    /// Expand a 64-bit seed into the 256-bit key with SplitMix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        let mut rng = ChaCha8Rng {
            key,
            stream: seed.wrapping_mul(0x2545F4914F6CDD1D).rotate_left(17),
            counter: 0,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.block[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(
            same < 4,
            "streams should be uncorrelated, {same} collisions"
        );
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn uniform_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
