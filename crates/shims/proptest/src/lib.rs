//! Offline stand-in for `proptest`: a deterministic mini
//! property-testing harness covering the strategy combinators this
//! workspace uses — numeric ranges, tuples, `prop::collection::vec`,
//! `prop::sample::select`, `any::<T>()`, and `prop_map` — plus the
//! `proptest!` / `prop_assert!` macros.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs' debug output via the assertion message), and a
//! fixed deterministic seed per test (override the case count with the
//! `PROPTEST_CASES` environment variable).

#![warn(missing_docs)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand_chacha::ChaCha8Rng;

    /// A value generator: the shim's version of `proptest::Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut ChaCha8Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut ChaCha8Rng) -> T {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;
        fn generate(&self, rng: &mut ChaCha8Rng) -> T {
            rand::Rng::gen_range(rng, self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::strategy::Strategy;
    use rand_chacha::ChaCha8Rng;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
            let n = rand::Rng::gen_range(rng, self.size.lo..self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec`: vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`prop::sample`).

    use super::strategy::Strategy;
    use rand_chacha::ChaCha8Rng;

    /// Strategy drawing uniformly from a fixed set of values.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut ChaCha8Rng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].clone()
        }
    }

    /// `prop::sample::select`: choose uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for [`Arbitrary`] scalars sampled from raw RNG bits.
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_scalar {
    ($($t:ty),*) => {$(
        impl strategy::Strategy for AnyScalar<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                <$t as rand::StandardSample>::standard_sample(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyScalar<$t>;
            fn arbitrary() -> AnyScalar<$t> {
                AnyScalar(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_scalar!(bool, u32, u64, usize, f32, f64);

/// `any::<T>()`: the canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Number of cases each property runs (default 32; override with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Deterministic per-test RNG, decorrelated across tests by name.
pub fn test_rng(test_name: &str) -> ChaCha8Rng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    ChaCha8Rng::seed_from_u64(h)
}

/// The commonly-imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
    };
}

/// Skip the current generated case when an assumption fails. The shim
/// expands to `continue` targeting the per-case loop, so it must appear at
/// the top level of the property body (not inside a user loop) — which is
/// how this workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Assert inside a property (panics with the formatted message; the shim
/// performs no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases()` generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::cases() {
                    let _ = __case;
                    let ($($arg,)*) = (
                        $($crate::strategy::Strategy::generate(&$strat, &mut __rng),)*
                    );
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 0usize..10, (lo, hi) in (0u32..5, 5u32..10)) {
            prop_assert!(a < 10);
            prop_assert!(lo < hi, "{lo} vs {hi}");
        }

        #[test]
        fn vecs_respect_sizes(v in prop::collection::vec(any::<bool>(), 1..7)) {
            prop_assert!((1..7).contains(&v.len()));
        }

        #[test]
        fn select_draws_members(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&x));
        }

        #[test]
        fn map_transforms(n in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(n % 2 == 0 && n < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = 0usize..1000;
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
