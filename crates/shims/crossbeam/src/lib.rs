//! Offline stand-in for `crossbeam`, mapping `crossbeam::thread::scope`
//! onto `std::thread::scope` (stable since Rust 1.63) with crossbeam's
//! `Result`-returning signature and closure-takes-`&Scope` spawn API.

#![warn(missing_docs)]

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// A scope handle passed to spawned closures; spawning through it ties
    /// child lifetimes to the scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// so it can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a thread scope; all spawned threads are joined before
    /// this returns. Mirrors crossbeam's `Result` return (this shim always
    /// returns `Ok`; panics in unjoined children propagate as panics, which
    /// every caller in this workspace treats as fatal anyway).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
