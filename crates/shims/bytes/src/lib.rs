//! Offline stand-in for the `bytes` crate: a cheaply-cloneable,
//! reference-counted immutable byte buffer covering the subset of the
//! `Bytes` API this workspace uses.

#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// A reference-counted immutable byte buffer; clones share the allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes(Arc::from(s))
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn slices_deref() {
        let a = Bytes::from(vec![5u8, 6]);
        assert_eq!(&a[..], &[5, 6]);
        assert_eq!(a.iter().sum::<u8>(), 11);
    }
}
