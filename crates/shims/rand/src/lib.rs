//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` covering exactly
//! what the Zeus reproduction uses: [`RngCore`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`seq::SliceRandom::shuffle`].
//!
//! Numeric streams are deterministic but are **not** bit-compatible with
//! upstream `rand`; every consumer in this repository only relies on
//! internal determinism (same seed → same stream), which this shim
//! provides.

#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits
/// (the shim's equivalent of sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 high bits → uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly (floats land in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Slice helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly choose one element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the low bits are usable.
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(-2.5f32..=2.5);
            assert!((-2.5..=2.5).contains(&c));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
