//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` for documentation and
//! forward compatibility but never serializes through serde (the plan
//! catalog uses its own binary format). The derives therefore expand to
//! nothing; the marker traits in the sibling `serde` shim are never used
//! as bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
