//! Offline stand-in for `criterion`: the same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, `Criterion`, benchmark groups,
//! `Bencher::iter`/`iter_batched`) backed by a minimal mean-of-N timing
//! loop instead of criterion's statistical machinery.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one input per measured call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    total: Duration,
    runs: u64,
}

impl Bencher {
    /// Measure `f` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = f();
            self.total += start.elapsed();
            self.runs += 1;
            std::hint::black_box(out);
        }
    }

    /// Measure `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.total += start.elapsed();
            self.runs += 1;
            std::hint::black_box(out);
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        run_one(self.sample_size, &id.into(), f);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion.sample_size, &id, f);
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(samples: usize, id: &str, mut f: F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        runs: 0,
    };
    f(&mut b);
    let mean_ns = if b.runs == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.runs as f64
    };
    println!(
        "bench {id:<40} {:>12.0} ns/iter ({} iters)",
        mean_ns, b.runs
    );
}

/// Group benchmark functions under one callable, mirroring criterion's
/// `criterion_group!` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 5);
    }

    #[test]
    fn iter_batched_feeds_fresh_inputs() {
        let mut c = Criterion::default().sample_size(4);
        let mut seen = Vec::new();
        c.bench_function("batched", |b| {
            let mut i = 0;
            b.iter_batched(
                || {
                    i += 1;
                    i
                },
                |x| seen.push(x),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3, 4]);
    }
}
