//! Offline stand-in for `parking_lot`: `RwLock`/`Mutex` wrappers over the
//! std primitives with parking_lot's poison-free API (guards are returned
//! directly; a poisoned std lock recovers the inner data, matching
//! parking_lot's behaviour of never poisoning).

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
