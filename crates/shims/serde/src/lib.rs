//! Offline stand-in for `serde`.
//!
//! Exposes marker traits and re-exports the no-op derives from the
//! sibling `serde_derive` shim. Nothing in this workspace serializes
//! through serde (the plan catalog has its own binary codec), so the
//! traits carry no methods.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; never used as a
/// bound in this workspace).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods; never used as
/// a bound in this workspace).
pub trait Deserialize<'de> {}
