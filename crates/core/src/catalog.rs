//! The plan catalog: persistent trained query plans.
//!
//! Planning a query is a one-time cost (Table 6: APFG fine-tuning + RL
//! training); a production VDBMS amortises it by storing the trained plan
//! and reusing it for every execution of the same query. The catalog
//! persists the parts of a [`crate::planner::QueryPlan`] needed to rebuild
//! the executors — the trained policy weights, the selected static
//! configuration, the Pareto action space, and the APFG seed — in a small
//! versioned binary format (`.zpln` files).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use zeus_apfg::Configuration;
use zeus_rl::agent::GreedyPolicy;
use zeus_video::ActionClass;

use zeus_apfg::SimulatedApfg;
use zeus_sim::CostModel;

use crate::baselines::{ZeusRl, ZeusSliding};
use crate::config::ConfigSpace;
use crate::metrics::EvalProtocol;
use crate::planner::QueryPlan;
use crate::query::ActionQuery;

const MAGIC: &[u8; 4] = b"ZPLN";
const VERSION: u32 = 1;

/// The persisted portion of a query plan.
#[derive(Debug, Clone)]
pub struct StoredPlan {
    /// The planned query.
    pub query: ActionQuery,
    /// The trained greedy policy.
    pub policy: GreedyPolicy,
    /// Zeus-Sliding's static configuration.
    pub sliding_config: Configuration,
    /// The initial (most accurate) configuration.
    pub init_config: Configuration,
    /// The Pareto-frontier action space (configuration triples, in action
    /// order).
    pub space_configs: Vec<Configuration>,
    /// Knob maxima used to normalise APFG features.
    pub knob_maxima: (usize, usize, usize),
    /// APFG seed (the behavioural model is deterministic given it).
    pub apfg_seed: u64,
    /// Evaluation window.
    pub protocol: EvalProtocol,
}

impl StoredPlan {
    /// Reconstruct the action space in trained order.
    pub fn space(&self) -> ConfigSpace {
        ConfigSpace::from_configs(self.space_configs.clone())
    }

    /// Rebuild the query's APFG (deterministic given the stored seed).
    pub fn apfg(&self) -> SimulatedApfg {
        let (r, l, s) = self.knob_maxima;
        SimulatedApfg::new(self.query.classes.clone(), r, l, s, self.apfg_seed)
    }

    /// Rebuild the Zeus-RL executor from the stored plan.
    pub fn zeus_rl_engine(&self, cost: CostModel) -> ZeusRl {
        ZeusRl::new(
            self.apfg(),
            self.policy.clone(),
            self.space(),
            self.init_config,
            cost,
        )
    }

    /// Rebuild the Zeus-Sliding executor from the stored plan.
    pub fn sliding_engine(&self, cost: CostModel) -> ZeusSliding {
        ZeusSliding::new(self.apfg(), self.sliding_config, cost)
    }
}

/// Errors from catalog decode.
#[derive(Debug)]
pub enum CatalogError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a plan file / corrupt content.
    Corrupt(String),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "catalog I/O error: {e}"),
            CatalogError::Corrupt(s) => write!(f, "corrupt plan file: {s}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<io::Error> for CatalogError {
    fn from(e: io::Error) -> Self {
        CatalogError::Io(e)
    }
}

struct Writer(Vec<u8>);

impl Writer {
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn config(&mut self, c: Configuration) {
        self.u32(c.resolution as u32);
        self.u32(c.seg_len as u32);
        self.u32(c.sampling_rate as u32);
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.0.extend_from_slice(b);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CatalogError> {
        if self.pos + n > self.buf.len() {
            return Err(CatalogError::Corrupt("unexpected end of file".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, CatalogError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CatalogError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CatalogError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn config(&mut self) -> Result<Configuration, CatalogError> {
        let r = self.u32()? as usize;
        let l = self.u32()? as usize;
        let s = self.u32()? as usize;
        if r == 0 || l == 0 || s == 0 {
            return Err(CatalogError::Corrupt("zero knob in configuration".into()));
        }
        Ok(Configuration::new(r, l, s))
    }
}

fn class_id(c: ActionClass) -> u8 {
    ActionClass::ALL
        .iter()
        .position(|&x| x == c)
        .expect("class in ALL") as u8
}

fn class_from_id(id: u8) -> Result<ActionClass, CatalogError> {
    ActionClass::ALL
        .get(id as usize)
        .copied()
        .ok_or_else(|| CatalogError::Corrupt(format!("unknown class id {id}")))
}

/// Encode a plan's persistent parts.
pub fn encode_plan(plan: &QueryPlan, apfg_seed: u64) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(4096));
    w.0.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u32(plan.query.classes.len() as u32);
    for &c in &plan.query.classes {
        w.0.push(class_id(c));
    }
    w.f64(plan.query.target_accuracy);
    w.config(plan.sliding_config);
    w.config(plan.init_config);
    w.u32(plan.space.len() as u32);
    for &c in plan.space.configs() {
        w.config(c);
    }
    w.u32(plan.space.max_resolution() as u32);
    w.u32(plan.space.max_seg_len() as u32);
    w.u32(plan.space.max_sampling() as u32);
    w.u64(apfg_seed);
    w.u32(plan.protocol.window as u32);
    w.bytes(&plan.policy.to_bytes());
    w.0
}

/// Decode a stored plan.
pub fn decode_plan(bytes: &[u8]) -> Result<StoredPlan, CatalogError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CatalogError::Corrupt("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CatalogError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let n_classes = r.u32()? as usize;
    if n_classes == 0 || n_classes > ActionClass::ALL.len() {
        return Err(CatalogError::Corrupt("invalid class count".into()));
    }
    let mut classes = Vec::with_capacity(n_classes);
    for _ in 0..n_classes {
        classes.push(class_from_id(r.take(1)?[0])?);
    }
    let target = r.f64()?;
    if !(target > 0.0 && target < 1.0) {
        return Err(CatalogError::Corrupt(format!("invalid target {target}")));
    }
    let sliding_config = r.config()?;
    let init_config = r.config()?;
    let n_configs = r.u32()? as usize;
    if n_configs == 0 || n_configs > 4096 {
        return Err(CatalogError::Corrupt("invalid config count".into()));
    }
    let mut space_configs = Vec::with_capacity(n_configs);
    for _ in 0..n_configs {
        space_configs.push(r.config()?);
    }
    let max_res = r.u32()? as usize;
    let max_len = r.u32()? as usize;
    let max_samp = r.u32()? as usize;
    let apfg_seed = r.u64()?;
    let window = r.u32()? as usize;
    if window == 0 {
        return Err(CatalogError::Corrupt("zero eval window".into()));
    }
    let policy_len = r.u32()? as usize;
    let policy_bytes = r.take(policy_len)?;
    let policy = GreedyPolicy::from_bytes(policy_bytes)
        .map_err(|e| CatalogError::Corrupt(format!("policy: {e}")))?;

    Ok(StoredPlan {
        query: ActionQuery::multi(classes, target)
            .map_err(|e| CatalogError::Corrupt(format!("query: {e}")))?,
        policy,
        sliding_config,
        init_config,
        space_configs,
        knob_maxima: (max_res, max_len, max_samp),
        apfg_seed,
        protocol: EvalProtocol::new(window),
    })
}

/// A directory of persisted plans.
#[derive(Debug, Clone)]
pub struct PlanCatalog {
    dir: PathBuf,
}

impl PlanCatalog {
    /// Open (creating if needed) a catalog directory.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<PlanCatalog> {
        fs::create_dir_all(&dir)?;
        Ok(PlanCatalog {
            dir: dir.as_ref().to_path_buf(),
        })
    }

    /// Stable file name for a query.
    pub fn key(query: &ActionQuery) -> String {
        let classes: Vec<&str> = query.classes.iter().map(|c| c.query_name()).collect();
        format!(
            "{}-{:03}.zpln",
            classes.join("+"),
            (query.target_accuracy * 100.0).round() as u32
        )
    }

    /// Persist a plan; returns the file path.
    pub fn save(&self, plan: &QueryPlan, apfg_seed: u64) -> io::Result<PathBuf> {
        let path = self.dir.join(Self::key(&plan.query));
        fs::write(&path, encode_plan(plan, apfg_seed))?;
        Ok(path)
    }

    /// Load the stored plan for a query, if present.
    pub fn load(&self, query: &ActionQuery) -> Result<Option<StoredPlan>, CatalogError> {
        let path = self.dir.join(Self::key(query));
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(decode_plan(&bytes)?)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CatalogError::Io(e)),
        }
    }

    /// List stored plan files.
    pub fn list(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "zpln") {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlannerOptions, QueryPlanner};
    use zeus_video::DatasetKind;

    fn tiny_plan() -> (QueryPlan, u64) {
        let ds = DatasetKind::Bdd100k.generate(0.08, 3);
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let seed = options.seed;
        let planner = QueryPlanner::new(&ds, options);
        let plan = planner.plan(&ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap());
        (plan, seed)
    }

    #[test]
    fn plan_roundtrips_through_bytes() {
        let (plan, seed) = tiny_plan();
        let bytes = encode_plan(&plan, seed);
        let stored = decode_plan(&bytes).unwrap();
        assert_eq!(stored.query, plan.query);
        assert_eq!(stored.sliding_config, plan.sliding_config);
        assert_eq!(stored.init_config, plan.init_config);
        assert_eq!(stored.space_configs, plan.space.configs());
        assert_eq!(stored.apfg_seed, seed);
        assert_eq!(stored.protocol, plan.protocol);
        // The restored policy acts identically.
        let s = vec![0.25f32; zeus_apfg::FEATURE_DIM];
        assert_eq!(stored.policy.act(&s), plan.policy.act(&s));
    }

    #[test]
    fn restored_engines_match_the_original_plan() {
        use crate::baselines::QueryEngine;
        let ds = DatasetKind::Bdd100k.generate(0.08, 3);
        let (plan, seed) = tiny_plan();
        let stored = decode_plan(&encode_plan(&plan, seed)).unwrap();
        let cost = CostModel::default();

        let planner = QueryPlanner::new(&ds, PlannerOptions::default());
        let engines = planner.build_engines(&plan);
        let restored = stored.zeus_rl_engine(cost);

        let video = &ds.store.videos()[0];
        let mut c1 = zeus_sim::SimClock::new();
        let mut h1 = crate::result::ConfigHistogram::new();
        let a = engines.zeus_rl.execute_video(video, &mut c1, &mut h1);
        let mut c2 = zeus_sim::SimClock::new();
        let mut h2 = crate::result::ConfigHistogram::new();
        let b = restored.execute_video(video, &mut c2, &mut h2);
        assert_eq!(a, b, "restored plan must execute identically");
        assert_eq!(c1.elapsed_secs().to_bits(), c2.elapsed_secs().to_bits());
    }

    #[test]
    fn decode_rejects_corruption() {
        let (plan, seed) = tiny_plan();
        let bytes = encode_plan(&plan, seed);
        assert!(decode_plan(&bytes[..10]).is_err(), "truncation");
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(decode_plan(&bad_magic).is_err(), "magic");
        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(decode_plan(&bad_version).is_err(), "version");
    }

    #[test]
    fn catalog_save_load_list() {
        let (plan, seed) = tiny_plan();
        let dir = std::env::temp_dir().join(format!("zeus-catalog-test-{}", std::process::id()));
        let catalog = PlanCatalog::open(&dir).unwrap();
        let path = catalog.save(&plan, seed).unwrap();
        assert!(path.exists());
        let stored = catalog.load(&plan.query).unwrap().expect("plan present");
        assert_eq!(stored.query, plan.query);
        assert_eq!(catalog.list().unwrap().len(), 1);
        // Missing query → None.
        let other = ActionQuery::new(ActionClass::PoleVault, 0.75).unwrap();
        assert!(catalog.load(&other).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_is_stable_and_filesystem_safe() {
        let q = ActionQuery::multi(vec![ActionClass::CrossRight, ActionClass::CrossLeft], 0.85)
            .unwrap();
        let k = PlanCatalog::key(&q);
        assert_eq!(k, "cross-right+cross-left-085.zpln");
    }
}
