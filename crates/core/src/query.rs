//! The action-query language (§1).
//!
//! Zeus queries look like:
//!
//! ```sql
//! SELECT segment_ids FROM UDF(video)
//! WHERE action_class = 'left-turn' AND accuracy >= 80%
//! ```
//!
//! Multi-class queries (§6.5) union classes:
//!
//! ```sql
//! ... WHERE action_class IN ('cross-right', 'cross-left') AND accuracy >= 0.85
//! ```

use serde::{Deserialize, Serialize};
use zeus_video::ActionClass;

/// A parsed action-localization query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionQuery {
    /// Target classes (one normally; several for §6.5 union queries).
    pub classes: Vec<ActionClass>,
    /// User-specified accuracy target α ∈ (0, 1).
    pub target_accuracy: f64,
}

impl ActionQuery {
    /// Build a single-class query.
    pub fn new(class: ActionClass, target_accuracy: f64) -> Self {
        Self::multi(vec![class], target_accuracy)
    }

    /// Build a multi-class (union) query.
    pub fn multi(classes: Vec<ActionClass>, target_accuracy: f64) -> Self {
        assert!(!classes.is_empty(), "query needs at least one class");
        assert!(
            (0.0..1.0).contains(&target_accuracy) && target_accuracy > 0.0,
            "target accuracy must be in (0, 1): {target_accuracy}"
        );
        ActionQuery {
            classes,
            target_accuracy,
        }
    }

    /// Render back to SQL-ish text.
    pub fn to_sql(&self) -> String {
        let class_pred = if self.classes.len() == 1 {
            format!("action_class = '{}'", self.classes[0].query_name())
        } else {
            let list = self
                .classes
                .iter()
                .map(|c| format!("'{}'", c.query_name()))
                .collect::<Vec<_>>()
                .join(", ");
            format!("action_class IN ({list})")
        };
        format!(
            "SELECT segment_ids FROM UDF(video) WHERE {class_pred} AND accuracy >= {:.0}%",
            self.target_accuracy * 100.0
        )
    }
}

/// Errors from [`parse_query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The query skeleton (SELECT ... FROM UDF(video) WHERE ...) is absent.
    NotAnActionQuery(String),
    /// `action_class` predicate missing or malformed.
    MissingClass,
    /// An action class name was not recognised.
    UnknownClass(String),
    /// `accuracy` predicate missing or malformed.
    MissingAccuracy,
    /// Accuracy outside (0, 1).
    BadAccuracy(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NotAnActionQuery(s) => write!(f, "not an action query: {s}"),
            ParseError::MissingClass => write!(f, "missing action_class predicate"),
            ParseError::UnknownClass(c) => write!(f, "unknown action class '{c}'"),
            ParseError::MissingAccuracy => write!(f, "missing accuracy predicate"),
            ParseError::BadAccuracy(a) => write!(f, "accuracy out of range: {a}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse the SQL-ish action-query dialect of §1.
///
/// Accepted forms (case-insensitive keywords):
/// * `action_class = 'left-turn'` or `action_class IN ('a', 'b')`
/// * `accuracy >= 80%` or `accuracy >= 0.8`
pub fn parse_query(sql: &str) -> Result<ActionQuery, ParseError> {
    let lower = sql.to_ascii_lowercase();
    if !(lower.contains("select") && lower.contains("udf") && lower.contains("where")) {
        return Err(ParseError::NotAnActionQuery(sql.trim().to_string()));
    }

    // --- action_class predicate ---
    let classes = if let Some(pos) = lower.find("action_class") {
        let rest = &sql[pos + "action_class".len()..];
        let rest_l = &lower[pos + "action_class".len()..];
        if let Some(inpos) = rest_l.trim_start().strip_prefix("in") {
            // IN ('a', 'b', ...)
            let open = inpos.find('(').ok_or(ParseError::MissingClass)?;
            let close = inpos[open..].find(')').ok_or(ParseError::MissingClass)? + open;
            let inner = &inpos[open + 1..close];
            let mut classes = Vec::new();
            for part in inner.split(',') {
                let name = part.trim().trim_matches('\'').trim_matches('"');
                let class = ActionClass::from_query_name(name)
                    .ok_or_else(|| ParseError::UnknownClass(name.to_string()))?;
                classes.push(class);
            }
            if classes.is_empty() {
                return Err(ParseError::MissingClass);
            }
            classes
        } else {
            // = 'name'
            let eq = rest.find('=').ok_or(ParseError::MissingClass)?;
            let after = rest[eq + 1..].trim_start();
            let quote_end = after[1..]
                .find(['\'', '"'])
                .ok_or(ParseError::MissingClass)?;
            let name = &after[1..1 + quote_end];
            vec![ActionClass::from_query_name(name)
                .ok_or_else(|| ParseError::UnknownClass(name.to_string()))?]
        }
    } else {
        return Err(ParseError::MissingClass);
    };

    // --- accuracy predicate ---
    let acc_pos = lower.find("accuracy").ok_or(ParseError::MissingAccuracy)?;
    let after = &sql[acc_pos + "accuracy".len()..];
    let after = after.trim_start();
    let after = after
        .strip_prefix(">=")
        .or_else(|| after.strip_prefix('='))
        .or_else(|| after.strip_prefix('>'))
        .ok_or(ParseError::MissingAccuracy)?
        .trim_start();
    let num_end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(after.len());
    let num_str = &after[..num_end];
    let mut value: f64 = num_str
        .parse()
        .map_err(|_| ParseError::BadAccuracy(num_str.to_string()))?;
    if after[num_end..].trim_start().starts_with('%') || value > 1.0 {
        value /= 100.0;
    }
    if !(value > 0.0 && value < 1.0) {
        return Err(ParseError::BadAccuracy(format!("{value}")));
    }

    Ok(ActionQuery::multi(classes, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        // §1's example query (left turn at 80%).
        let q = parse_query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'left-turn' AND accuracy >= 80%",
        )
        .unwrap();
        assert_eq!(q.classes, vec![ActionClass::LeftTurn]);
        assert!((q.target_accuracy - 0.80).abs() < 1e-9);
    }

    #[test]
    fn parses_fractional_accuracy() {
        let q = parse_query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'pole-vault' AND accuracy >= 0.75",
        )
        .unwrap();
        assert_eq!(q.classes, vec![ActionClass::PoleVault]);
        assert!((q.target_accuracy - 0.75).abs() < 1e-9);
    }

    #[test]
    fn parses_multi_class_in_list() {
        let q = parse_query(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class IN ('cross-right', 'cross-left') AND accuracy >= 85%",
        )
        .unwrap();
        assert_eq!(
            q.classes,
            vec![ActionClass::CrossRight, ActionClass::CrossLeft]
        );
    }

    #[test]
    fn roundtrips_through_to_sql() {
        let q = ActionQuery::multi(vec![ActionClass::CrossRight, ActionClass::LeftTurn], 0.85);
        let parsed = parse_query(&q.to_sql()).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn rejects_unknown_class() {
        let err = parse_query(
            "SELECT segment_ids FROM UDF(video) WHERE action_class = 'backflip' AND accuracy >= 80%",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::UnknownClass("backflip".to_string()));
    }

    #[test]
    fn rejects_missing_pieces() {
        assert!(matches!(
            parse_query("SELECT * FROM t"),
            Err(ParseError::NotAnActionQuery(_))
        ));
        assert!(matches!(
            parse_query("SELECT segment_ids FROM UDF(video) WHERE accuracy >= 80%"),
            Err(ParseError::MissingClass)
        ));
        assert!(matches!(
            parse_query("SELECT segment_ids FROM UDF(video) WHERE action_class = 'left-turn'"),
            Err(ParseError::MissingAccuracy)
        ));
    }

    #[test]
    fn rejects_out_of_range_accuracy() {
        assert!(matches!(
            parse_query(
                "SELECT segment_ids FROM UDF(video) WHERE action_class = 'left-turn' AND accuracy >= 150%"
            ),
            Err(ParseError::BadAccuracy(_))
        ));
    }

    #[test]
    #[should_panic(expected = "target accuracy")]
    fn constructor_validates() {
        let _ = ActionQuery::new(ActionClass::LeftTurn, 1.5);
    }
}
