//! The action-query language (§1) and its extended ZQL dialect.
//!
//! Zeus queries look like:
//!
//! ```sql
//! SELECT segment_ids FROM UDF(video)
//! WHERE action_class = 'left-turn' AND accuracy >= 80%
//! ```
//!
//! Multi-class queries (§6.5) union classes:
//!
//! ```sql
//! ... WHERE action_class IN ('cross-right', 'cross-left') AND accuracy >= 0.85
//! ```
//!
//! # ZQL grammar
//!
//! The extended dialect accepted by [`parse_zql`] (keywords are
//! case-insensitive; clauses after `WHERE` may appear in any order,
//! except that `WINDOW`, `ORDER BY` and `LIMIT` follow the predicates):
//!
//! ```text
//! query       := SELECT segment_ids FROM source WHERE predicates
//!                [window] [order] [limit]
//! source      := UDF(video)                       -- the session default
//!              | dataset_name                     -- a registered corpus
//! predicates  := class_pred { AND class_pred | AND NOT class_pred
//!                           | AND accuracy_pred | AND budget_pred }
//! class_pred  := action_class = 'name'
//!              | action_class IN ('name' {, 'name'})
//! accuracy_pred := accuracy >= number['%']        -- target α ∈ (0, 1)
//! budget_pred := latency_budget <= number ms      -- per-query budget
//! window      := WINDOW [t0, t1]                  -- frame range, t0 < t1
//! order       := ORDER BY confidence [DESC|ASC]   -- answer-set ordering
//! limit       := LIMIT n                          -- n ≥ 1 segments
//! ```
//!
//! Semantics:
//!
//! * `FROM <dataset_name>` routes the query to a named corpus registered
//!   with the session's dataset registry (`FROM bdd100k`,
//!   `FROM my_corpus`); `FROM UDF(video)` keeps the paper's original
//!   spelling and targets the session's default corpus. Names are
//!   lowercase identifiers over `[a-z0-9_-]` (normalized at parse).
//! * `AND NOT action_class ...` excludes segments overlapping the named
//!   class(es) from the answer set (boolean class predicates).
//! * `accuracy` is the paper's user-specified target α: `80%` and `0.8`
//!   are the same value; `accuracy >= 100%` (or any value outside the
//!   open interval `(0, 1)`) is rejected with [`ParseError::BadAccuracy`].
//! * `latency_budget <= Xms` bounds the query's latency: the planner
//!   converts it into a throughput floor during static-configuration
//!   selection, and the serving layer maps tight budgets to higher
//!   admission priorities.
//! * `WINDOW [t0, t1]` restricts the answer to segments intersecting the
//!   frame range `[t0, t1)` of every video.
//! * `ORDER BY confidence` sorts the answer set by segment confidence
//!   (descending unless `ASC`); `LIMIT n` keeps the first `n` segments.
//!
//! Every query parses into a [`QueryIr`], the intermediate representation
//! consumed by both the planner ([`crate::planner::QueryPlanner`]) and the
//! serving layer (`zeus_serve::ZeusServer::submit_ir`). `QueryIr::to_sql`
//! renders back to text such that `parse_zql(ir.to_sql()) == Ok(ir)`.

use serde::{Deserialize, Serialize};
use zeus_video::ActionClass;

/// A parsed action-localization query (the classic §1 core: classes and
/// an accuracy target).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionQuery {
    /// Target classes (one normally; several for §6.5 union queries).
    pub classes: Vec<ActionClass>,
    /// User-specified accuracy target α ∈ (0, 1).
    pub target_accuracy: f64,
}

impl ActionQuery {
    /// Build a single-class query.
    ///
    /// Returns [`ParseError::BadAccuracy`] when the target is outside the
    /// open interval `(0, 1)`.
    pub fn new(class: ActionClass, target_accuracy: f64) -> Result<Self, ParseError> {
        Self::multi(vec![class], target_accuracy)
    }

    /// Build a multi-class (union) query.
    ///
    /// Returns [`ParseError::MissingClass`] on an empty class list and
    /// [`ParseError::BadAccuracy`] when the target is outside `(0, 1)`.
    pub fn multi(classes: Vec<ActionClass>, target_accuracy: f64) -> Result<Self, ParseError> {
        if classes.is_empty() {
            return Err(ParseError::MissingClass);
        }
        if !(target_accuracy > 0.0 && target_accuracy < 1.0) {
            return Err(ParseError::BadAccuracy(format!("{target_accuracy}")));
        }
        Ok(ActionQuery {
            classes,
            target_accuracy,
        })
    }

    /// Render back to SQL-ish text (display form, integer percent).
    pub fn to_sql(&self) -> String {
        format!(
            "SELECT segment_ids FROM UDF(video) WHERE {} AND accuracy >= {:.0}%",
            class_predicate(&self.classes),
            self.target_accuracy * 100.0
        )
    }
}

fn class_predicate(classes: &[ActionClass]) -> String {
    if classes.len() == 1 {
        format!("action_class = '{}'", classes[0].query_name())
    } else {
        let list = classes
            .iter()
            .map(|c| format!("'{}'", c.query_name()))
            .collect::<Vec<_>>()
            .join(", ");
        format!("action_class IN ({list})")
    }
}

/// Answer-set ordering requested by `ORDER BY confidence`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderBy {
    /// Highest-confidence segments first (the default direction).
    ConfidenceDesc,
    /// Lowest-confidence segments first.
    ConfidenceAsc,
}

/// The compiled intermediate representation of an extended ZQL query:
/// what the planner plans and the server serves.
///
/// The classic core ([`QueryIr::base`]) determines the trained plan and
/// the cache identity; the extensions (`exclude`, `window`, `limit`,
/// `latency_budget_ms`, `order`) are relational refinements applied to
/// the answer set plus planning/admission hints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryIr {
    /// The classic query core: union classes + accuracy target.
    pub base: ActionQuery,
    /// `FROM <dataset>` routing: the registered corpus this query
    /// targets. `None` (the `FROM UDF(video)` spelling) targets the
    /// session's default corpus.
    pub source: Option<String>,
    /// Classes excluded by `AND NOT action_class ...` predicates.
    pub exclude: Vec<ActionClass>,
    /// `WINDOW [t0, t1]` frame range (half-open `[t0, t1)`).
    pub window: Option<(usize, usize)>,
    /// `LIMIT n` answer-set cap.
    pub limit: Option<usize>,
    /// `latency_budget <= Xms` per-query latency budget in milliseconds.
    pub latency_budget_ms: Option<f64>,
    /// `ORDER BY confidence` answer-set ordering.
    pub order: Option<OrderBy>,
    /// `EXPLAIN ANALYZE` prefix: run the query and report per-stage
    /// timings alongside the answer. Not part of the plan/cache
    /// identity — an explained query shares its plan and cached result
    /// with the plain spelling.
    pub explain: bool,
}

impl QueryIr {
    /// Wrap a classic query with no extensions.
    pub fn from_query(base: ActionQuery) -> Self {
        QueryIr {
            base,
            source: None,
            exclude: Vec::new(),
            window: None,
            limit: None,
            latency_budget_ms: None,
            order: None,
            explain: false,
        }
    }

    /// Request per-stage timing (builder-style sugar for setting
    /// [`QueryIr::explain`]).
    pub fn explained(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Route this query to a named dataset (builder-style sugar for
    /// setting [`QueryIr::source`]).
    pub fn on_dataset(mut self, name: impl Into<String>) -> Self {
        self.source = Some(name.into());
        self
    }

    /// The classic core (classes + accuracy target) that keys plans and
    /// result caches.
    pub fn action_query(&self) -> &ActionQuery {
        &self.base
    }

    /// True when the query carries no extended clauses (a classic §1
    /// query).
    pub fn is_classic(&self) -> bool {
        self.source.is_none()
            && self.exclude.is_empty()
            && self.window.is_none()
            && self.limit.is_none()
            && self.latency_budget_ms.is_none()
            && self.order.is_none()
    }

    /// Validate cross-clause invariants. [`parse_zql`] calls this; callers
    /// constructing a `QueryIr` by hand should too.
    pub fn validate(&self) -> Result<(), ParseError> {
        if self.base.classes.is_empty() {
            return Err(ParseError::MissingClass);
        }
        if !(self.base.target_accuracy > 0.0 && self.base.target_accuracy < 1.0) {
            return Err(ParseError::BadAccuracy(format!(
                "{}",
                self.base.target_accuracy
            )));
        }
        if let Some(name) = &self.source {
            if !is_dataset_name(name) {
                return Err(ParseError::BadSource(name.clone()));
            }
        }
        if let Some(conflict) = self.base.classes.iter().find(|c| self.exclude.contains(c)) {
            return Err(ParseError::ConflictingClasses(
                conflict.query_name().to_string(),
            ));
        }
        if let Some((t0, t1)) = self.window {
            if t0 >= t1 {
                return Err(ParseError::BadWindow(format!("[{t0}, {t1}]")));
            }
        }
        if self.limit == Some(0) {
            return Err(ParseError::BadLimit("0".into()));
        }
        if let Some(ms) = self.latency_budget_ms {
            if !(ms > 0.0 && ms.is_finite()) {
                return Err(ParseError::BadLatencyBudget(format!("{ms}")));
            }
        }
        Ok(())
    }

    /// Render back to the extended dialect. The accuracy target and the
    /// latency budget are printed at full precision so that
    /// `parse_zql(ir.to_sql()) == Ok(ir)` round-trips exactly.
    pub fn to_sql(&self) -> String {
        let mut sql = format!(
            "{}SELECT segment_ids FROM {} WHERE {}",
            if self.explain { "EXPLAIN ANALYZE " } else { "" },
            self.source.as_deref().unwrap_or("UDF(video)"),
            class_predicate(&self.base.classes)
        );
        for class in &self.exclude {
            sql.push_str(&format!(" AND NOT action_class = '{}'", class.query_name()));
        }
        sql.push_str(&format!(" AND accuracy >= {}", self.base.target_accuracy));
        if let Some(ms) = self.latency_budget_ms {
            sql.push_str(&format!(" AND latency_budget <= {ms}ms"));
        }
        if let Some((t0, t1)) = self.window {
            sql.push_str(&format!(" WINDOW [{t0}, {t1}]"));
        }
        match self.order {
            Some(OrderBy::ConfidenceDesc) => sql.push_str(" ORDER BY confidence DESC"),
            Some(OrderBy::ConfidenceAsc) => sql.push_str(" ORDER BY confidence ASC"),
            None => {}
        }
        if let Some(n) = self.limit {
            sql.push_str(&format!(" LIMIT {n}"));
        }
        sql
    }
}

/// Errors from [`parse_zql`] and the query constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The query skeleton (SELECT ... FROM ... WHERE ...) is absent.
    NotAnActionQuery(String),
    /// The `FROM` operand is neither `UDF(video)` nor a valid dataset
    /// name (`[a-z0-9_-]+` after lowercasing).
    BadSource(String),
    /// `action_class` predicate missing or malformed.
    MissingClass,
    /// An action class name was not recognised.
    UnknownClass(String),
    /// `accuracy` predicate missing or malformed.
    MissingAccuracy,
    /// Accuracy outside the open interval (0, 1).
    BadAccuracy(String),
    /// A class appears both included and excluded (`AND NOT`).
    ConflictingClasses(String),
    /// `WINDOW [t0, t1]` malformed or empty (t0 ≥ t1).
    BadWindow(String),
    /// `LIMIT n` malformed or zero.
    BadLimit(String),
    /// `latency_budget <= Xms` malformed or non-positive.
    BadLatencyBudget(String),
    /// `ORDER BY` names something other than `confidence`.
    BadOrderBy(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::NotAnActionQuery(s) => write!(f, "not an action query: {s}"),
            ParseError::BadSource(s) => {
                write!(
                    f,
                    "bad FROM operand '{s}': expected UDF(video) or a dataset name"
                )
            }
            ParseError::MissingClass => write!(f, "missing action_class predicate"),
            ParseError::UnknownClass(c) => write!(f, "unknown action class '{c}'"),
            ParseError::MissingAccuracy => write!(f, "missing accuracy predicate"),
            ParseError::BadAccuracy(a) => write!(f, "accuracy out of range: {a}"),
            ParseError::ConflictingClasses(c) => {
                write!(f, "class '{c}' both selected and excluded (AND NOT)")
            }
            ParseError::BadWindow(w) => write!(f, "bad WINDOW clause: {w}"),
            ParseError::BadLimit(l) => write!(f, "bad LIMIT clause: {l}"),
            ParseError::BadLatencyBudget(b) => write!(f, "bad latency_budget: {b}"),
            ParseError::BadOrderBy(o) => write!(f, "bad ORDER BY clause: {o}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Split `sql` at the first occurrence of a keyword (already-lowercased
/// haystack), returning (before, after-keyword).
fn split_keyword<'a>(sql: &'a str, lower: &str, keyword: &str) -> Option<(&'a str, &'a str)> {
    lower
        .find(keyword)
        .map(|pos| (&sql[..pos], &sql[pos + keyword.len()..]))
}

/// Parse a `usize` prefix of `s` (after trimming), returning the value
/// and the rest.
fn parse_usize_prefix(s: &str) -> Option<(usize, &str)> {
    let s = s.trim_start();
    let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    if end == 0 {
        return None;
    }
    s[..end].parse().ok().map(|v| (v, &s[end..]))
}

/// Parse the extended ZQL dialect into a validated [`QueryIr`].
///
/// See the module docs for the grammar. Accepts the classic §1 dialect as
/// the degenerate case (every extension clause optional).
pub fn parse_zql(sql: &str) -> Result<QueryIr, ParseError> {
    let (sql, explain) = strip_explain(sql);
    let lower = sql.to_ascii_lowercase();
    if !(lower.contains("select") && lower.contains("from") && lower.contains("where")) {
        return Err(ParseError::NotAnActionQuery(sql.trim().to_string()));
    }

    // --- FROM routing: `UDF(video)` targets the session default;
    // anything else must be a registered dataset name. ---
    let not_a_query = || ParseError::NotAnActionQuery(sql.trim().to_string());
    // Unreachable `ok_or_else`s given the skeleton check above, but keep
    // typed errors rather than index panics.
    let from_pos = find_word(&lower, "from").ok_or_else(not_a_query)?;
    let after = &lower[from_pos + "from".len()..];
    let where_rel = find_word(after, "where").ok_or_else(not_a_query)?;
    let source = {
        let operand = after[..where_rel].trim();
        // Only the call form `udf(...)` is the default-corpus spelling;
        // a *name* starting with "udf" (e.g. `udf_logs`) is a regular
        // registered dataset.
        if operand.starts_with("udf(") || operand.starts_with("udf ") {
            None
        } else if is_dataset_name(operand) {
            Some(operand.to_string())
        } else {
            return Err(ParseError::BadSource(operand.to_string()));
        }
    };
    // Every remaining clause lives after WHERE; scanning only from there
    // keeps keyword-bearing dataset names (`time_window`, `speed_limit`,
    // `accuracy_test`, ...) out of the predicate/clause parsers.
    let where_pos = from_pos + "from".len() + where_rel;
    let sql = &sql[where_pos..];
    let lower = lower[where_pos..].to_string();

    // --- Trailing clauses: LIMIT, ORDER BY, WINDOW (peeled right to
    // left so predicate parsing never sees them). ---
    let (sql, lower, limit) = match split_keyword(sql, &lower, "limit") {
        Some((before, after)) => {
            let (n, rest) =
                parse_usize_prefix(after).ok_or(ParseError::BadLimit(after.trim().to_string()))?;
            if !rest.trim().is_empty() {
                return Err(ParseError::BadLimit(after.trim().to_string()));
            }
            (before, before.to_ascii_lowercase(), Some(n))
        }
        None => (sql, lower, None),
    };

    let (sql, lower, order) = match split_keyword(sql, &lower, "order by") {
        Some((before, after)) => {
            let spec = after.trim();
            let spec_l = spec.to_ascii_lowercase();
            let order = if spec_l == "confidence" || spec_l == "confidence desc" {
                OrderBy::ConfidenceDesc
            } else if spec_l == "confidence asc" {
                OrderBy::ConfidenceAsc
            } else {
                return Err(ParseError::BadOrderBy(spec.to_string()));
            };
            (before, before.to_ascii_lowercase(), Some(order))
        }
        None => (sql, lower, None),
    };

    let (sql, lower, window) = match split_keyword(sql, &lower, "window") {
        Some((before, after)) => {
            let spec = after.trim();
            let bad = || ParseError::BadWindow(spec.to_string());
            let inner = spec
                .strip_prefix('[')
                .and_then(|s| s.strip_suffix(']'))
                .ok_or_else(bad)?;
            let (t0_s, t1_s) = inner.split_once(',').ok_or_else(bad)?;
            let t0: usize = t0_s.trim().parse().map_err(|_| bad())?;
            let t1: usize = t1_s.trim().parse().map_err(|_| bad())?;
            (before, before.to_ascii_lowercase(), Some((t0, t1)))
        }
        None => (sql, lower, None),
    };

    // --- Class predicates: every `action_class`, split into included
    // and excluded (`AND NOT`) sets. ---
    let mut classes = Vec::new();
    let mut exclude = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = lower[search..].find("action_class") {
        let pos = search + rel;
        // Excluded when the predicate is introduced by a standalone
        // `NOT` token (a word merely *ending* in "not" is not negation).
        let before = lower[..pos].trim_end();
        let negated = before.ends_with("not")
            && before[..before.len() - "not".len()]
                .chars()
                .next_back()
                .is_none_or(char::is_whitespace);
        let rest = &sql[pos + "action_class".len()..];
        let rest_l = &lower[pos + "action_class".len()..];
        let (names, consumed) = parse_class_operand(rest, rest_l)?;
        let sink = if negated { &mut exclude } else { &mut classes };
        for name in names {
            let class = ActionClass::from_query_name(&name)
                .ok_or_else(|| ParseError::UnknownClass(name.clone()))?;
            if !sink.contains(&class) {
                sink.push(class);
            }
        }
        search = pos + "action_class".len() + consumed;
    }
    if classes.is_empty() {
        return Err(ParseError::MissingClass);
    }

    // --- accuracy predicate ---
    let acc_pos = lower.find("accuracy").ok_or(ParseError::MissingAccuracy)?;
    let after = &sql[acc_pos + "accuracy".len()..];
    let after = after.trim_start();
    let after = after
        .strip_prefix(">=")
        .or_else(|| after.strip_prefix('='))
        .or_else(|| after.strip_prefix('>'))
        .ok_or(ParseError::MissingAccuracy)?
        .trim_start();
    let num_end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(after.len());
    let num_str = &after[..num_end];
    let mut value: f64 = num_str
        .parse()
        .map_err(|_| ParseError::BadAccuracy(num_str.to_string()))?;
    if after[num_end..].trim_start().starts_with('%') || value > 1.0 {
        value /= 100.0;
    }
    if !(value > 0.0 && value < 1.0) {
        return Err(ParseError::BadAccuracy(format!("{value}")));
    }

    // --- latency budget ---
    let latency_budget_ms = match lower.find("latency_budget") {
        Some(pos) => {
            let after = &sql[pos + "latency_budget".len()..];
            let after = after.trim_start();
            let bad = || ParseError::BadLatencyBudget(after.trim().to_string());
            let after = after
                .strip_prefix("<=")
                .or_else(|| after.strip_prefix('<'))
                .or_else(|| after.strip_prefix('='))
                .ok_or_else(bad)?
                .trim_start();
            let num_end = after
                .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                .unwrap_or(after.len());
            let ms: f64 = after[..num_end].parse().map_err(|_| bad())?;
            if !after[num_end..].trim_start().starts_with("ms") {
                return Err(bad());
            }
            if !(ms > 0.0 && ms.is_finite()) {
                return Err(ParseError::BadLatencyBudget(format!("{ms}")));
            }
            Some(ms)
        }
        None => None,
    };

    let ir = QueryIr {
        base: ActionQuery::multi(classes, value)?,
        source,
        exclude,
        window,
        limit,
        latency_budget_ms,
        order,
        explain,
    };
    ir.validate()?;
    Ok(ir)
}

/// Strip a leading `EXPLAIN ANALYZE` prefix (case-insensitive,
/// whole-word), returning the remaining query text and whether the
/// prefix was present.
fn strip_explain(sql: &str) -> (&str, bool) {
    let trimmed = sql.trim_start();
    let lower = trimmed.to_ascii_lowercase();
    if let Some(rest) = lower.strip_prefix("explain") {
        let rest = rest.trim_start();
        if rest.starts_with("analyze") {
            let consumed = (trimmed.len() - rest.len()) + "analyze".len();
            let after = &trimmed[consumed..];
            if after.starts_with(char::is_whitespace) {
                return (after, true);
            }
        }
    }
    (sql, false)
}

/// Is `name` a valid (already-lowercased) dataset identifier?
fn is_dataset_name(name: &str) -> bool {
    // The name grammar is owned by `zeus_video::source::normalize_name`;
    // a routable name must additionally already *be* its normalized form
    // (the parser lowercases, and `to_sql` must round-trip).
    zeus_video::source::normalize_name(name).is_ok_and(|normalized| normalized == name)
}

/// Find a keyword as a standalone word (not a substring of an
/// identifier) in an already-lowercased haystack.
fn find_word(lower: &str, word: &str) -> Option<usize> {
    let mut search = 0;
    while let Some(rel) = lower[search..].find(word) {
        let pos = search + rel;
        let before_ok = lower[..pos]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_');
        let after_ok = lower[pos + word.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_ascii_alphanumeric() && c != '_');
        if before_ok && after_ok {
            return Some(pos);
        }
        search = pos + word.len();
    }
    None
}

/// Parse the operand of one `action_class` predicate (`= 'name'` or
/// `IN ('a', 'b')`). Returns the class names and how many bytes of
/// `rest` were consumed.
fn parse_class_operand(rest: &str, rest_l: &str) -> Result<(Vec<String>, usize), ParseError> {
    if let Some(inpos) = rest_l.trim_start().strip_prefix("in") {
        let skipped = rest_l.len() - rest_l.trim_start().len();
        let open = inpos.find('(').ok_or(ParseError::MissingClass)?;
        let close = inpos[open..].find(')').ok_or(ParseError::MissingClass)? + open;
        let inner = &rest[skipped + 2 + open + 1..skipped + 2 + close];
        let mut names = Vec::new();
        for part in inner.split(',') {
            let name = part.trim().trim_matches('\'').trim_matches('"');
            if name.is_empty() {
                return Err(ParseError::MissingClass);
            }
            names.push(name.to_string());
        }
        if names.is_empty() {
            return Err(ParseError::MissingClass);
        }
        Ok((names, skipped + 2 + close + 1))
    } else {
        let eq = rest.find('=').ok_or(ParseError::MissingClass)?;
        let after = rest[eq + 1..].trim_start();
        let skipped = rest[eq + 1..].len() - after.len();
        // The operand must open with an ASCII quote (anything else —
        // including typographic quotes pasted from formatted text — is a
        // typed parse error, never a slicing panic).
        let quote = match after.chars().next() {
            Some(q @ ('\'' | '"')) => q,
            _ => return Err(ParseError::MissingClass),
        };
        let quote_end = after[1..].find(quote).ok_or(ParseError::MissingClass)?;
        let name = &after[1..1 + quote_end];
        Ok((vec![name.to_string()], eq + 1 + skipped + 1 + quote_end + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> QueryIr {
        parse_zql(sql).unwrap()
    }

    #[test]
    fn parses_the_papers_example() {
        // §1's example query (left turn at 80%).
        let ir = q("SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'left-turn' AND accuracy >= 80%");
        assert_eq!(ir.base.classes, vec![ActionClass::LeftTurn]);
        assert!((ir.base.target_accuracy - 0.80).abs() < 1e-9);
        assert!(ir.is_classic());
    }

    #[test]
    fn parses_fractional_accuracy() {
        let ir = q("SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'pole-vault' AND accuracy >= 0.75");
        assert_eq!(ir.base.classes, vec![ActionClass::PoleVault]);
        assert!((ir.base.target_accuracy - 0.75).abs() < 1e-9);
    }

    #[test]
    fn parses_multi_class_in_list() {
        let ir = q("SELECT segment_ids FROM UDF(video) \
             WHERE action_class IN ('cross-right', 'cross-left') AND accuracy >= 85%");
        assert_eq!(
            ir.base.classes,
            vec![ActionClass::CrossRight, ActionClass::CrossLeft]
        );
    }

    #[test]
    fn parses_the_full_extended_dialect() {
        let ir = q("SELECT segment_ids FROM UDF(video) \
             WHERE action_class IN ('cross-right', 'cross-left') \
             AND NOT action_class = 'left-turn' \
             AND accuracy >= 0.85 AND latency_budget <= 250ms \
             WINDOW [120, 480] ORDER BY confidence DESC LIMIT 10");
        assert_eq!(
            ir.base.classes,
            vec![ActionClass::CrossRight, ActionClass::CrossLeft]
        );
        assert_eq!(ir.exclude, vec![ActionClass::LeftTurn]);
        assert_eq!(ir.window, Some((120, 480)));
        assert_eq!(ir.limit, Some(10));
        assert_eq!(ir.latency_budget_ms, Some(250.0));
        assert_eq!(ir.order, Some(OrderBy::ConfidenceDesc));
    }

    #[test]
    fn extended_ir_roundtrips_through_to_sql() {
        let ir = QueryIr {
            base: ActionQuery::multi(vec![ActionClass::CrossRight], 0.846).unwrap(),
            source: Some("bdd100k".into()),
            exclude: vec![ActionClass::CrossLeft],
            window: Some((0, 300)),
            limit: Some(5),
            latency_budget_ms: Some(512.5),
            order: Some(OrderBy::ConfidenceAsc),
            explain: true,
        };
        assert_eq!(parse_zql(&ir.to_sql()), Ok(ir));
    }

    #[test]
    fn from_dataset_routes_and_roundtrips() {
        let ir = q("SELECT segment_ids FROM bdd100k \
             WHERE action_class = 'cross-right' AND accuracy >= 85%");
        assert_eq!(ir.source.as_deref(), Some("bdd100k"));
        assert!(!ir.is_classic(), "FROM <dataset> is an extended clause");
        assert_eq!(parse_zql(&ir.to_sql()), Ok(ir));
        // Names are lowercased at parse.
        let upper = q("SELECT segment_ids FROM THUMOS14 \
             WHERE action_class = 'pole-vault' AND accuracy >= 75%");
        assert_eq!(upper.source.as_deref(), Some("thumos14"));
        // UDF(video) stays the default-corpus spelling.
        let classic = q("SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'cross-right' AND accuracy >= 85%");
        assert_eq!(classic.source, None);
        // A *name* beginning with "udf" is a regular dataset, not the
        // default-corpus spelling — only the call form `udf(...)` is.
        let udfish = q("SELECT segment_ids FROM udf_logs \
             WHERE action_class = 'cross-right' AND accuracy >= 85%");
        assert_eq!(udfish.source.as_deref(), Some("udf_logs"));
        assert_eq!(parse_zql(&udfish.to_sql()), Ok(udfish));
    }

    #[test]
    fn keyword_bearing_dataset_names_parse_and_roundtrip() {
        // Clause keywords inside the FROM operand must not confuse the
        // predicate/clause parsers (they scan from WHERE onward only).
        for name in ["time_window", "speed_limit", "accuracy_test", "order_v2"] {
            let ir = q(&format!(
                "SELECT segment_ids FROM {name} \
                 WHERE action_class = 'cross-right' AND accuracy >= 85% LIMIT 3"
            ));
            assert_eq!(ir.source.as_deref(), Some(name));
            assert_eq!(ir.limit, Some(3));
            assert_eq!(parse_zql(&ir.to_sql()), Ok(ir));
        }
    }

    #[test]
    fn bad_from_operands_are_typed_errors() {
        for from in ["two words", "däta", "videos.parquet"] {
            let sql = format!(
                "SELECT segment_ids FROM {from} \
                 WHERE action_class = 'cross-right' AND accuracy >= 85%"
            );
            assert!(
                matches!(parse_zql(&sql), Err(ParseError::BadSource(_))),
                "FROM {from} must be rejected"
            );
        }
    }

    #[test]
    fn classic_query_roundtrips_through_to_sql() {
        let base =
            ActionQuery::multi(vec![ActionClass::CrossRight, ActionClass::LeftTurn], 0.85).unwrap();
        let ir = QueryIr::from_query(base.clone());
        assert_eq!(parse_zql(&ir.to_sql()), Ok(ir));
        // The display form (integer percent) parses back too.
        let parsed = parse_zql(&base.to_sql()).unwrap();
        assert_eq!(parsed.base, base);
    }

    #[test]
    fn rejects_unknown_class() {
        let err = parse_zql(
            "SELECT segment_ids FROM UDF(video) WHERE action_class = 'backflip' AND accuracy >= 80%",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::UnknownClass("backflip".to_string()));
    }

    #[test]
    fn rejects_missing_pieces() {
        assert!(matches!(
            parse_zql("SELECT * FROM t"),
            Err(ParseError::NotAnActionQuery(_))
        ));
        assert!(matches!(
            parse_zql("SELECT segment_ids FROM UDF(video) WHERE accuracy >= 80%"),
            Err(ParseError::MissingClass)
        ));
        assert!(matches!(
            parse_zql("SELECT segment_ids FROM UDF(video) WHERE action_class = 'left-turn'"),
            Err(ParseError::MissingAccuracy)
        ));
    }

    #[test]
    fn rejects_out_of_range_accuracy() {
        for acc in ["150%", "100%", "1.0", "0", "0%"] {
            let sql = format!(
                "SELECT segment_ids FROM UDF(video) WHERE action_class = 'left-turn' AND accuracy >= {acc}"
            );
            assert!(
                matches!(parse_zql(&sql), Err(ParseError::BadAccuracy(_))),
                "accuracy {acc} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_bad_extended_clauses() {
        let base = "SELECT segment_ids FROM UDF(video) \
                    WHERE action_class = 'left-turn' AND accuracy >= 80%";
        assert!(matches!(
            parse_zql(&format!("{base} LIMIT 0")),
            Err(ParseError::BadLimit(_))
        ));
        assert!(matches!(
            parse_zql(&format!("{base} LIMIT many")),
            Err(ParseError::BadLimit(_))
        ));
        assert!(matches!(
            parse_zql(&format!("{base} WINDOW [300, 100]")),
            Err(ParseError::BadWindow(_))
        ));
        assert!(matches!(
            parse_zql(&format!("{base} WINDOW (1, 2)")),
            Err(ParseError::BadWindow(_))
        ));
        assert!(matches!(
            parse_zql(&format!("{base} ORDER BY recency")),
            Err(ParseError::BadOrderBy(_))
        ));
        let budget = "SELECT segment_ids FROM UDF(video) WHERE action_class = 'left-turn' \
                      AND accuracy >= 80% AND latency_budget <= 10s";
        assert!(matches!(
            parse_zql(budget),
            Err(ParseError::BadLatencyBudget(_))
        ));
    }

    #[test]
    fn typographic_quotes_are_a_parse_error_not_a_panic() {
        // Curly quotes pasted from formatted text are multi-byte; the
        // parser must return a typed error, never panic on a slice.
        let err = parse_zql(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = \u{2019}cross-right\u{2019} AND accuracy >= 85%",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::MissingClass);
    }

    #[test]
    fn words_ending_in_not_do_not_negate() {
        // "cannot" ends in "not" but is not the NOT keyword.
        let ir = q("SELECT segment_ids FROM UDF(video) \
             WHERE cannot action_class = 'cross-right' AND accuracy >= 85%");
        assert_eq!(ir.base.classes, vec![ActionClass::CrossRight]);
        assert!(ir.exclude.is_empty());
    }

    #[test]
    fn rejects_conflicting_class_predicates() {
        let err = parse_zql(
            "SELECT segment_ids FROM UDF(video) WHERE action_class = 'left-turn' \
             AND NOT action_class = 'left-turn' AND accuracy >= 80%",
        )
        .unwrap_err();
        assert_eq!(err, ParseError::ConflictingClasses("left-turn".into()));
    }

    #[test]
    fn constructor_validates_without_panicking() {
        assert!(matches!(
            ActionQuery::new(ActionClass::LeftTurn, 1.5),
            Err(ParseError::BadAccuracy(_))
        ));
        assert!(matches!(
            ActionQuery::new(ActionClass::LeftTurn, 0.0),
            Err(ParseError::BadAccuracy(_))
        ));
        assert!(matches!(
            ActionQuery::multi(vec![], 0.8),
            Err(ParseError::MissingClass)
        ));
        assert!(ActionQuery::new(ActionClass::LeftTurn, 0.8).is_ok());
    }

    #[test]
    fn classic_dialect_base_is_exposed_on_the_ir() {
        let ir = parse_zql(
            "SELECT segment_ids FROM UDF(video) \
             WHERE action_class = 'left-turn' AND accuracy >= 80% LIMIT 3",
        )
        .unwrap();
        assert_eq!(ir.base.classes, vec![ActionClass::LeftTurn]);
        assert_eq!(ir.limit, Some(3));
    }
}
