//! Accuracy metrics: the IoU-windowed segment F1 of §2.1.
//!
//! "A binary ground truth label for a segment is generated using
//! intersection-over-union (IoU) over the frame-level ground truth labels.
//! A given segment of length K frames is labeled as a true positive if
//! IoU > 0.5 over labels L(n) to L(n+K)." We evaluate on consecutive
//! non-overlapping windows of K frames: a window's binary label (ground
//! truth or predicted) is positive when more than half its frames are
//! positive.

use serde::{Deserialize, Serialize};
use zeus_video::{ConfigFamily, DatasetKind};

/// The evaluation protocol: window length K.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalProtocol {
    /// Window length K in frames.
    pub window: usize,
}

impl EvalProtocol {
    /// Protocol with an explicit window.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        EvalProtocol { window }
    }

    /// Default window per configuration family, scaled to the family's
    /// action lengths (driving actions are short — K=16; the untrimmed
    /// sports/activity corpora use the paper's longer segment scale —
    /// K=64).
    pub fn for_family(family: ConfigFamily) -> Self {
        match family {
            ConfigFamily::Driving => EvalProtocol::new(16),
            ConfigFamily::Untrimmed => EvalProtocol::new(64),
        }
    }

    /// Default window for a built-in corpus — sugar over
    /// [`EvalProtocol::for_family`].
    pub fn for_dataset(kind: DatasetKind) -> Self {
        Self::for_family(kind.family())
    }

    /// Binary window labels from frame labels: positive when IoU with the
    /// window exceeds 0.5 (i.e., strictly more than half the frames are
    /// positive). The final partial window uses its own length.
    pub fn window_labels(&self, frames: &[bool]) -> Vec<bool> {
        frames
            .chunks(self.window)
            .map(|w| {
                let positives = w.iter().filter(|&&b| b).count();
                positives * 2 > w.len()
            })
            .collect()
    }
}

/// Confusion counts plus derived precision/recall/F1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// True-positive windows.
    pub tp: u64,
    /// False-positive windows.
    pub fp: u64,
    /// False-negative windows.
    pub fn_: u64,
    /// True-negative windows.
    pub tn: u64,
}

impl EvalReport {
    /// Accumulate window labels of one video.
    pub fn accumulate(&mut self, gt: &[bool], pred: &[bool]) {
        assert_eq!(gt.len(), pred.len(), "window counts must match");
        for (&g, &p) in gt.iter().zip(pred.iter()) {
            match (g, p) {
                (true, true) => self.tp += 1,
                (false, true) => self.fp += 1,
                (true, false) => self.fn_ += 1,
                (false, false) => self.tn += 1,
            }
        }
    }

    /// Merge another report into this one.
    pub fn merge(&mut self, other: &EvalReport) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Precision `tp / (tp + fp)`; 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score — the paper's "accuracy" metric throughout §6.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total windows evaluated.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// A lower confidence bound on F1: `f1 − z·σ` with a binomial
    /// approximation `σ ≈ sqrt(f1·(1−f1) / positives)`. Used by the
    /// planner to de-bias validation-based selection (choosing the max
    /// over many configurations inflates the winner's validation score).
    pub fn f1_lower_bound(&self, z: f64) -> f64 {
        let f1 = self.f1();
        let n = (self.tp + self.fn_).max(1) as f64;
        (f1 - z * (f1 * (1.0 - f1) / n).sqrt()).max(0.0)
    }
}

/// Evaluate predicted frame labels against ground truth for one video.
pub fn evaluate_frames(protocol: EvalProtocol, gt: &[bool], pred: &[bool]) -> EvalReport {
    assert_eq!(gt.len(), pred.len(), "frame label lengths must match");
    let mut report = EvalReport::default();
    report.accumulate(&protocol.window_labels(gt), &protocol.window_labels(pred));
    report
}

/// Event-level evaluation: match *output segments* (maximal predicted
/// runs) against ground-truth action instances by temporal IoU.
///
/// This is the §2.1 protocol read at the segment level — "a given segment
/// ... is labeled as a true positive if IoU > 0.5 over labels L(n) to
/// L(n+K)" — and the standard temporal-action-localization criterion
/// (e.g., Thumos14 mAP@tIoU). Greedy matching: each ground-truth instance
/// claims the unmatched predicted segment with the highest IoU; a pair
/// counts as a true positive when IoU ≥ `min_iou`. Unmatched predictions
/// are false positives; unmatched instances are false negatives. `tn` is
/// not meaningful at event level and stays 0.
pub fn evaluate_events(gt: &[bool], pred: &[bool], min_iou: f64) -> EvalReport {
    assert_eq!(gt.len(), pred.len(), "frame label lengths must match");
    assert!((0.0..=1.0).contains(&min_iou), "IoU threshold in [0,1]");
    let gt_runs = zeus_video::annotation::runs_from_labels(gt);
    let pred_runs = zeus_video::annotation::runs_from_labels(pred);

    let mut matched_pred = vec![false; pred_runs.len()];
    let mut tp = 0u64;
    let mut fn_ = 0u64;
    for &(gs, ge) in &gt_runs {
        let mut best: Option<(usize, f64)> = None;
        for (i, &(ps, pe)) in pred_runs.iter().enumerate() {
            if matched_pred[i] {
                continue;
            }
            let iou = zeus_video::annotation::interval_iou(gs, ge, ps, pe);
            if iou >= min_iou && best.is_none_or(|(_, b)| iou > b) {
                best = Some((i, iou));
            }
        }
        match best {
            Some((i, _)) => {
                matched_pred[i] = true;
                tp += 1;
            }
            None => fn_ += 1,
        }
    }
    let fp = matched_pred.iter().filter(|&&m| !m).count() as u64;
    EvalReport { tp, fp, fn_, tn: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_labels_iou_threshold() {
        let p = EvalProtocol::new(4);
        // 2/4 positives = IoU 0.5 exactly → NOT positive (needs > 0.5).
        let frames = [true, true, false, false];
        assert_eq!(p.window_labels(&frames), vec![false]);
        // 3/4 positives → positive.
        let frames = [true, true, true, false];
        assert_eq!(p.window_labels(&frames), vec![true]);
    }

    #[test]
    fn window_labels_partial_tail() {
        let p = EvalProtocol::new(4);
        // 6 frames → one full window + one 2-frame tail.
        let frames = [false, false, false, false, true, true];
        assert_eq!(p.window_labels(&frames), vec![false, true]);
    }

    #[test]
    fn perfect_prediction_scores_one() {
        let p = EvalProtocol::new(4);
        let gt = vec![true, true, true, false, false, false, false, false];
        let r = evaluate_frames(p, &gt, &gt);
        assert_eq!(r.f1(), 1.0);
        assert_eq!(r.tp, 1);
        assert_eq!(r.tn, 1);
    }

    #[test]
    fn hand_computed_f1() {
        let mut r = EvalReport::default();
        r.accumulate(&[true, true, false, false], &[true, false, true, false]);
        // tp=1 fp=1 fn=1 tn=1 → P = 0.5, R = 0.5, F1 = 0.5
        assert_eq!(r.precision(), 0.5);
        assert_eq!(r.recall(), 0.5);
        assert_eq!(r.f1(), 0.5);
        assert_eq!(r.total(), 4);
    }

    #[test]
    fn degenerate_cases() {
        let empty = EvalReport::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);

        let mut all_missed = EvalReport::default();
        all_missed.accumulate(&[true, true], &[false, false]);
        assert_eq!(all_missed.f1(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = EvalReport::default();
        a.accumulate(&[true], &[true]);
        let mut b = EvalReport::default();
        b.accumulate(&[false], &[true]);
        a.merge(&b);
        assert_eq!(a.tp, 1);
        assert_eq!(a.fp, 1);
    }

    #[test]
    fn per_dataset_windows() {
        assert_eq!(EvalProtocol::for_dataset(DatasetKind::Bdd100k).window, 16);
        assert_eq!(EvalProtocol::for_dataset(DatasetKind::Thumos14).window, 64);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_lengths_panic() {
        let _ = evaluate_frames(EvalProtocol::new(4), &[true], &[]);
    }

    fn labels(runs: &[(usize, usize)], len: usize) -> Vec<bool> {
        let mut v = vec![false; len];
        for &(s, e) in runs {
            for l in &mut v[s..e] {
                *l = true;
            }
        }
        v
    }

    #[test]
    fn event_eval_exact_match() {
        let gt = labels(&[(10, 30), (50, 70)], 100);
        let r = evaluate_events(&gt, &gt, 0.5);
        assert_eq!((r.tp, r.fp, r.fn_), (2, 0, 0));
        assert_eq!(r.f1(), 1.0);
    }

    #[test]
    fn event_eval_tolerates_boundary_slop() {
        // Prediction overshoots by 8 frames on each side: IoU = 20/36 > 0.5.
        let gt = labels(&[(20, 40)], 100);
        let pred = labels(&[(12, 48)], 100);
        let r = evaluate_events(&gt, &pred, 0.5);
        assert_eq!((r.tp, r.fp, r.fn_), (1, 0, 0));
    }

    #[test]
    fn event_eval_rejects_poor_overlap() {
        // IoU = 10/50 = 0.2 < 0.5 → both an FN and an FP.
        let gt = labels(&[(20, 40)], 100);
        let pred = labels(&[(30, 70)], 100);
        let r = evaluate_events(&gt, &pred, 0.5);
        assert_eq!((r.tp, r.fp, r.fn_), (0, 1, 1));
        assert_eq!(r.f1(), 0.0);
    }

    #[test]
    fn event_eval_counts_spurious_and_missed() {
        let gt = labels(&[(10, 30)], 100);
        let pred = labels(&[(12, 28), (60, 80)], 100);
        let r = evaluate_events(&gt, &pred, 0.5);
        assert_eq!((r.tp, r.fp, r.fn_), (1, 1, 0));
        // Missed entirely:
        let r = evaluate_events(&gt, &labels(&[], 100), 0.5);
        assert_eq!((r.tp, r.fp, r.fn_), (0, 0, 1));
    }

    #[test]
    fn event_eval_greedy_matches_best_iou() {
        // Two predictions overlap one gt; the better one must match and
        // the other becomes an FP.
        let gt = labels(&[(20, 60)], 100);
        let pred = labels(&[(18, 58), (61, 99)], 100);
        let r = evaluate_events(&gt, &pred, 0.5);
        assert_eq!((r.tp, r.fp, r.fn_), (1, 1, 0));
    }

    #[test]
    fn event_eval_fragmented_detection_fails_iou() {
        // A long action detected as many small fragments: no single
        // fragment reaches IoU 0.5, so the action is missed and the
        // fragments are false positives — the fast-config failure mode.
        let gt = labels(&[(0, 100)], 200);
        let pred = labels(&[(0, 20), (40, 60), (80, 100)], 200);
        let r = evaluate_events(&gt, &pred, 0.5);
        assert_eq!(r.tp, 0);
        assert_eq!(r.fn_, 1);
        assert_eq!(r.fp, 3);
    }
}
