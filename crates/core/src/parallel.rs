//! Inter-video parallel execution — the §6.4 extension.
//!
//! "It is possible to extend Zeus-RL to support inter-video parallelism.
//! Here, batching inputs across videos would allow better GPU utilization."
//! This module executes a video set across a [`DevicePool`] of simulated
//! devices (each with its own clock) using real threads via `crossbeam`,
//! and reports the *makespan* (the slowest device's elapsed time) — the
//! quantity that determines wall-clock speedup from adding devices.
//!
//! [`DevicePool`] is the shared hardware abstraction: the one-shot
//! fork-join here creates a fresh pool per call, while the `zeus-serve`
//! worker pool owns one long-lived pool whose device clocks accumulate
//! busy-time across queries.

use crossbeam::thread;
use zeus_sim::{DeviceProfile, SimClock, SimDevice};
use zeus_video::Video;

use crate::baselines::QueryEngine;
use crate::result::{ConfigHistogram, ExecutionResult};

/// A pool of simulated devices, the schedulable hardware of both the
/// §6.4 fork-join executor and the `zeus-serve` worker pool.
#[derive(Debug, Clone)]
pub struct DevicePool {
    devices: Vec<SimDevice>,
}

impl DevicePool {
    /// A pool of `n` identical devices.
    pub fn homogeneous(n: usize, profile: DeviceProfile) -> Self {
        assert!(n > 0, "need at least one worker");
        DevicePool {
            devices: (0..n)
                .map(|id| SimDevice::new(id, profile.clone()))
                .collect(),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the pool has no devices (never for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The devices, in id order.
    pub fn devices(&self) -> &[SimDevice] {
        &self.devices
    }

    /// Mutable access to the devices, in id order (each training-engine
    /// worker thread owns one device and charges its simulated time).
    pub fn devices_mut(&mut self) -> &mut [SimDevice] {
        &mut self.devices
    }

    /// Consume the pool, yielding its devices (the serve worker pool hands
    /// one device to each worker thread).
    pub fn into_devices(self) -> Vec<SimDevice> {
        self.devices
    }

    /// Per-device accumulated busy seconds.
    pub fn busy_secs(&self) -> Vec<f64> {
        self.devices.iter().map(SimDevice::busy_secs).collect()
    }

    /// Fork-join execute `videos` across the pool: device `i` runs videos
    /// `i, i + n, i + 2n, ...` on its own clock; results merge
    /// deterministically by video id. Device clocks accumulate (call on a
    /// fresh pool for a standalone measurement).
    pub fn fork_join<E>(&mut self, engine: &E, videos: &[&Video]) -> ParallelResult
    where
        E: QueryEngine + Sync,
    {
        let workers = self.devices.len();
        let shares: Vec<Vec<&Video>> = (0..workers)
            .map(|w| {
                videos
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % workers == w)
                    .map(|(_, v)| *v)
                    .collect()
            })
            .collect();

        let outcomes: Vec<(ExecutionResult, f64)> = thread::scope(|s| {
            let handles: Vec<_> = self
                .devices
                .iter_mut()
                .zip(&shares)
                .map(|(device, share)| {
                    s.spawn(move |_| {
                        let before = device.busy_secs();
                        let mut clock = SimClock::new();
                        let mut hist = ConfigHistogram::new();
                        let mut labels = Vec::with_capacity(share.len());
                        for v in share {
                            let l = engine.execute_video(v, &mut clock, &mut hist);
                            labels.push((v.id, l));
                        }
                        device.clock_mut().merge(&clock);
                        let secs = device.busy_secs() - before;
                        (
                            ExecutionResult {
                                labels,
                                clock,
                                histogram: hist,
                            },
                            secs,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
        .expect("thread scope failed");

        let mut merged_labels = Vec::new();
        let mut merged_clock = SimClock::new();
        let mut merged_hist = ConfigHistogram::new();
        let mut worker_secs = Vec::with_capacity(outcomes.len());
        for (result, secs) in outcomes {
            merged_labels.extend(result.labels);
            merged_clock.merge(&result.clock);
            merged_hist.merge(&result.histogram);
            worker_secs.push(secs);
        }
        merged_labels.sort_by_key(|(id, _)| *id);

        ParallelResult {
            merged: ExecutionResult {
                labels: merged_labels,
                clock: merged_clock,
                histogram: merged_hist,
            },
            worker_secs,
        }
    }
}

/// Result of a parallel run: the merged predictions plus per-worker
/// simulated clocks.
#[derive(Debug, Clone)]
pub struct ParallelResult {
    /// Merged execution result. Its `clock` holds the *total* device-time
    /// (sum over workers), as if run on one device.
    pub merged: ExecutionResult,
    /// Per-worker elapsed simulated seconds.
    pub worker_secs: Vec<f64>,
}

impl ParallelResult {
    /// The makespan: elapsed time of the busiest device.
    pub fn makespan_secs(&self) -> f64 {
        self.worker_secs.iter().copied().fold(0.0, f64::max)
    }

    /// Effective throughput with `workers` devices (frames / makespan).
    pub fn parallel_throughput(&self) -> f64 {
        let frames = self.merged.total_frames() as f64;
        let m = self.makespan_secs();
        if m == 0.0 {
            f64::INFINITY
        } else {
            frames / m
        }
    }

    /// Speedup of the parallel run over single-device execution.
    pub fn speedup(&self) -> f64 {
        let total: f64 = self.worker_secs.iter().sum();
        let m = self.makespan_secs();
        if m == 0.0 {
            1.0
        } else {
            total / m
        }
    }
}

/// Execute `videos` with `engine` across `workers` fresh simulated
/// devices.
///
/// Videos are assigned round-robin (longest-first would be better for
/// balance; round-robin matches a streaming arrival order). Each worker
/// thread runs its share with an independent clock; results merge
/// deterministically by video id. This is a convenience wrapper around
/// [`DevicePool::fork_join`] on a throwaway pool.
pub fn execute_parallel<E>(engine: &E, videos: &[&Video], workers: usize) -> ParallelResult
where
    E: QueryEngine + Sync,
{
    assert!(workers > 0, "need at least one worker");
    DevicePool::homogeneous(workers, DeviceProfile::default()).fork_join(engine, videos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_apfg::{Configuration, SimulatedApfg};
    use zeus_sim::CostModel;
    use zeus_video::{ActionClass, DatasetKind};

    use crate::baselines::ZeusSliding;

    fn engine() -> ZeusSliding {
        ZeusSliding::new(
            SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 3),
            Configuration::new(200, 4, 4),
            CostModel::default(),
        )
    }

    #[test]
    fn parallel_matches_sequential_output() {
        let ds = DatasetKind::Bdd100k.generate(0.04, 5);
        let videos = ds.store.split(zeus_video::video::Split::Test);
        let e = engine();
        let seq = e.execute(&videos);
        let par = execute_parallel(&e, &videos, 4);
        // Same predictions regardless of parallelism (determinism).
        let mut seq_labels = seq.labels.clone();
        seq_labels.sort_by_key(|(id, _)| *id);
        assert_eq!(seq_labels, par.merged.labels);
        // Same total device-time.
        assert!((seq.clock.elapsed_secs() - par.merged.clock.elapsed_secs()).abs() < 1e-9);
    }

    #[test]
    fn speedup_grows_with_workers() {
        let ds = DatasetKind::Bdd100k.generate(0.12, 5);
        let videos: Vec<&zeus_video::Video> = ds.store.videos().iter().collect();
        let e = engine();
        let p2 = execute_parallel(&e, &videos, 2);
        let p4 = execute_parallel(&e, &videos, 4);
        assert!(p2.speedup() > 1.5, "2-worker speedup {}", p2.speedup());
        assert!(p4.speedup() > p2.speedup(), "4 workers should beat 2");
        assert!(p4.parallel_throughput() > p2.parallel_throughput());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let ds = DatasetKind::Bdd100k.generate(0.02, 5);
        let videos = ds.store.split(zeus_video::video::Split::Test);
        let _ = execute_parallel(&engine(), &videos, 0);
    }

    #[test]
    fn pool_devices_accumulate_across_fork_joins() {
        let ds = DatasetKind::Bdd100k.generate(0.04, 5);
        let videos = ds.store.split(zeus_video::video::Split::Test);
        let e = engine();
        let mut pool = DevicePool::homogeneous(3, zeus_sim::DeviceProfile::default());
        assert_eq!(pool.len(), 3);
        let first = pool.fork_join(&e, &videos);
        let after_one: f64 = pool.busy_secs().iter().sum();
        let second = pool.fork_join(&e, &videos);
        let after_two: f64 = pool.busy_secs().iter().sum();
        // Device clocks persist: two identical runs double the busy time.
        assert!((after_two - 2.0 * after_one).abs() < 1e-9);
        // Results are per-run, not cumulative.
        assert_eq!(first.merged.labels, second.merged.labels);
        assert_eq!(first.worker_secs, second.worker_secs);
    }
}
