//! Frame-PP engine: the 2D-CNN-per-frame baseline (§6.1).
//!
//! "Frame-PP uses a 2D-CNN on individual frames in the video and outputs a
//! binary label ... To improve accuracy on action queries, we instead apply
//! Frame-PP on all frames." Every frame costs one 2D-CNN invocation.

use zeus_apfg::frame_pp::FramePpModel;
use zeus_apfg::Configuration;
use zeus_sim::{CostModel, SimClock};
use zeus_video::Video;

use crate::baselines::{ExecutorKind, QueryEngine};
use crate::result::ConfigHistogram;

/// The Frame-PP query engine.
#[derive(Debug, Clone)]
pub struct FramePp {
    model: FramePpModel,
    cost: CostModel,
}

impl FramePp {
    /// Build from a frame model (already configured with the query's
    /// classes and the highest available resolution, §6.2).
    pub fn new(model: FramePpModel, cost: CostModel) -> Self {
        FramePp { model, cost }
    }
}

impl QueryEngine for FramePp {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::FramePp
    }

    fn execute_video(
        &self,
        video: &Video,
        clock: &mut SimClock,
        hist: &mut ConfigHistogram,
    ) -> Vec<bool> {
        let per_frame = self.cost.cnn2d_frame(self.model.resolution);
        let pseudo_config = Configuration::new(self.model.resolution, 1, 1);
        let mut labels = Vec::with_capacity(video.num_frames);
        for n in 0..video.num_frames {
            clock.advance(per_frame);
            labels.push(self.model.predict_frame(video, n));
        }
        hist.record(pseudo_config, video.num_frames as u64);
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionClass, ActionInterval, VideoId};

    fn video() -> Video {
        Video {
            id: VideoId(0),
            num_frames: 320,
            fps: 30.0,
            seed: 3,
            intervals: vec![ActionInterval::new(100, 200, ActionClass::CrossRight)],
        }
    }

    #[test]
    fn labels_every_frame_and_charges_time() {
        let model = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let engine = FramePp::new(model, CostModel::default());
        let v = video();
        let result = engine.execute(&[&v]);
        assert_eq!(result.labels[0].1.len(), 320);
        assert_eq!(result.clock.events(), 320);
        // Throughput equals the per-frame model rate.
        let expected = 1.0 / CostModel::default().cnn2d_frame(300).as_secs();
        assert!((result.throughput() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn frame_pp_throughput_is_low() {
        // §6.2: Frame-PP is the slowest technique on BDD (~113 fps at
        // r=300 under the calibrated cost model).
        let model = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let engine = FramePp::new(model, CostModel::default());
        let v = video();
        let result = engine.execute(&[&v]);
        assert!(result.throughput() < 150.0, "fps {}", result.throughput());
    }
}
