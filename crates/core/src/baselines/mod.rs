//! The five query-processing techniques of §6.1.
//!
//! | Engine | Paper description |
//! |---|---|
//! | [`FramePp`] | 2D-CNN on every frame (frame-level probabilistic predicates) |
//! | [`SegmentPp`] | lightweight 3D filter on non-overlapping segments + full R3D on survivors |
//! | [`ZeusSliding`] | full R3D in a sliding window with one static configuration |
//! | [`ZeusHeuristic`] | hard-coded rules over a fast/mid/slow configuration subset |
//! | [`ZeusRl`] | the system: DQN-selected configurations (Figure 5) |

mod frame_pp;
mod heuristic;
mod segment_pp;
mod sliding;
mod zeus_rl;

pub use frame_pp::FramePp;
pub use heuristic::ZeusHeuristic;
pub use segment_pp::SegmentPp;
pub use sliding::ZeusSliding;
pub use zeus_rl::ZeusRl;

use serde::{Deserialize, Serialize};
use zeus_sim::SimClock;
use zeus_video::Video;

use crate::result::{ConfigHistogram, ExecutionResult};

/// Which technique an engine implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// Frame-level probabilistic predicates.
    FramePp,
    /// Segment-level filter cascade.
    SegmentPp,
    /// Static-configuration sliding window.
    ZeusSliding,
    /// Rule-based adaptive configurations.
    ZeusHeuristic,
    /// RL-based adaptive configurations (the system).
    ZeusRl,
}

impl ExecutorKind {
    /// All techniques in the paper's presentation order.
    pub const ALL: [ExecutorKind; 5] = [
        ExecutorKind::FramePp,
        ExecutorKind::SegmentPp,
        ExecutorKind::ZeusSliding,
        ExecutorKind::ZeusHeuristic,
        ExecutorKind::ZeusRl,
    ];

    /// Display name as the paper prints it.
    pub fn name(&self) -> &'static str {
        match self {
            ExecutorKind::FramePp => "Frame-PP",
            ExecutorKind::SegmentPp => "Segment-PP",
            ExecutorKind::ZeusSliding => "Zeus-Sliding",
            ExecutorKind::ZeusHeuristic => "Zeus-Heuristic",
            ExecutorKind::ZeusRl => "Zeus-RL",
        }
    }
}

impl std::fmt::Display for ExecutorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A query-processing engine: turns a video into per-frame predictions
/// while charging simulated time.
pub trait QueryEngine {
    /// Which technique this is.
    fn kind(&self) -> ExecutorKind;

    /// Process one video; returns per-frame predicted labels and charges
    /// `clock`/`hist`.
    fn execute_video(
        &self,
        video: &Video,
        clock: &mut SimClock,
        hist: &mut ConfigHistogram,
    ) -> Vec<bool>;

    /// Process a set of videos sequentially on one device.
    fn execute(&self, videos: &[&Video]) -> ExecutionResult {
        let mut clock = SimClock::new();
        let mut hist = ConfigHistogram::new();
        let mut labels = Vec::with_capacity(videos.len());
        for v in videos {
            let l = self.execute_video(v, &mut clock, &mut hist);
            debug_assert_eq!(l.len(), v.num_frames, "must label every frame");
            labels.push((v.id, l));
        }
        ExecutionResult {
            labels,
            clock,
            histogram: hist,
        }
    }
}
