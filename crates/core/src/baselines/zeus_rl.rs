//! Zeus-RL engine: the system — DQN-selected configurations (Figure 5).
//!
//! At each time step the executor feeds the current ProxyFeature to the
//! trained DQN, which emits the next Configuration; the APFG processes the
//! next segment under it, the classifier labels the covered span, and the
//! loop continues. The first segment of each video uses the most accurate
//! configuration (§3).

use zeus_apfg::{Configuration, FeatureGenerator, SimulatedApfg};
use zeus_rl::agent::GreedyPolicy;
use zeus_sim::{CostModel, SimClock};
use zeus_video::Video;

use crate::baselines::{ExecutorKind, QueryEngine};
use crate::config::ConfigSpace;
use crate::result::ConfigHistogram;

/// The Zeus-RL query engine.
#[derive(Debug, Clone)]
pub struct ZeusRl {
    apfg: SimulatedApfg,
    policy: GreedyPolicy,
    space: ConfigSpace,
    init_config: Configuration,
    cost: CostModel,
}

impl ZeusRl {
    /// Build from a trained policy over `space`.
    pub fn new(
        apfg: SimulatedApfg,
        policy: GreedyPolicy,
        space: ConfigSpace,
        init_config: Configuration,
        cost: CostModel,
    ) -> Self {
        ZeusRl {
            apfg,
            policy,
            space,
            init_config,
            cost,
        }
    }

    /// Replace the APFG (used by §6.5 cross-model and §6.6 domain-shift
    /// studies, which pair a trained policy with a different APFG).
    pub fn with_apfg(mut self, apfg: SimulatedApfg) -> Self {
        self.apfg = apfg;
        self
    }

    fn step_cost(&self, c: Configuration) -> zeus_sim::SimDuration {
        // One R3D pass + classifier head + DQN head per time step.
        self.cost.r3d_invocation(c.seg_len, c.resolution)
            + self.cost.mlp_head()
            + self.cost.mlp_head()
    }
}

impl QueryEngine for ZeusRl {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::ZeusRl
    }

    fn execute_video(
        &self,
        video: &Video,
        clock: &mut SimClock,
        hist: &mut ConfigHistogram,
    ) -> Vec<bool> {
        let mut labels = vec![false; video.num_frames];
        let mut current = self.init_config;
        let mut start = 0usize;

        while start < video.num_frames {
            let end = (start + current.frames_covered()).min(video.num_frames);
            clock.advance(self.step_cost(current));
            hist.record(current, (end - start) as u64);
            let out = self.apfg.process(video, start, current);
            if out.prediction {
                for l in &mut labels[start..end] {
                    *l = true;
                }
            }
            // The agent picks the next configuration from the feature.
            let action = self.policy.act(&out.feature);
            current = self.space.configs()[action];
            start = end;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use zeus_nn::{Activation, Mlp};
    use zeus_rl::agent::{DqnAgent, DqnConfig};
    use zeus_video::{ActionClass, ActionInterval, VideoId};

    fn untrained_policy(state_dim: usize, actions: usize) -> GreedyPolicy {
        DqnAgent::new(state_dim, actions, DqnConfig::default(), 42).policy()
    }

    fn video() -> Video {
        Video {
            id: VideoId(0),
            num_frames: 2000,
            fps: 30.0,
            seed: 13,
            intervals: vec![ActionInterval::new(700, 900, ActionClass::CrossRight)],
        }
    }

    fn engine(policy: GreedyPolicy) -> ZeusRl {
        let space = ConfigSpace::from_knobs(&[150, 300], &[4, 8], &[1, 8]);
        ZeusRl::new(
            SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 3),
            policy,
            space.clone(),
            space.most_accurate(),
            CostModel::default(),
        )
    }

    #[test]
    fn covers_every_frame_exactly_once() {
        let e = engine(untrained_policy(zeus_apfg::FEATURE_DIM, 8));
        let v = video();
        let r = e.execute(&[&v]);
        assert_eq!(r.labels[0].1.len(), 2000);
        assert_eq!(r.histogram.total_frames(), 2000);
    }

    #[test]
    fn first_segment_uses_most_accurate_config() {
        let e = engine(untrained_policy(zeus_apfg::FEATURE_DIM, 8));
        let v = video();
        let r = e.execute(&[&v]);
        let init = Configuration::new(300, 8, 1);
        let has_init = r.histogram.entries().iter().any(|(c, _)| *c == init);
        assert!(has_init, "init config must appear in the histogram");
    }

    #[test]
    fn policy_decides_the_trajectory() {
        // Two different (random) policies generally process the video with
        // different configuration mixes.
        let e1 = engine(untrained_policy(zeus_apfg::FEATURE_DIM, 8));
        let p2 = {
            let mut rng = ChaCha8Rng::seed_from_u64(999);
            let net = Mlp::new(&[zeus_apfg::FEATURE_DIM, 8, 8], Activation::Relu, &mut rng);
            // Hand-rolled policy wrapper via DqnAgent snapshot mechanics is
            // overkill here; a different seed suffices.
            let _ = net;
            DqnAgent::new(zeus_apfg::FEATURE_DIM, 8, DqnConfig::default(), 999).policy()
        };
        let e2 = engine(p2);
        let v = video();
        let h1 = e1.execute(&[&v]).histogram.entries();
        let h2 = e2.execute(&[&v]).histogram.entries();
        assert_ne!(h1, h2, "different policies should traverse differently");
    }
}
