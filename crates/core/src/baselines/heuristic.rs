//! Zeus-Heuristic engine: rule-based adaptive configurations (§6.1).
//!
//! "Zeus-Heuristic dynamically uses a subset of available configurations
//! based on hard-coded rules to process the video, including (1) using the
//! slowest configuration when the APFG returns ACTION prediction, (2) a
//! faster configuration when the APFG prediction flips from ACTION to
//! NO-ACTION, and (3) the fastest configuration when the APFG returns a
//! NO-ACTION prediction across ten consecutive time steps."

use zeus_apfg::{Configuration, FeatureGenerator, SimulatedApfg};
use zeus_sim::{CostModel, SimClock};
use zeus_video::Video;

use crate::baselines::{ExecutorKind, QueryEngine};
use crate::result::ConfigHistogram;

/// Consecutive NO-ACTION steps before dropping to the fastest config
/// (rule 3 of §6.1).
pub const NO_ACTION_RUN: usize = 10;

/// The Zeus-Heuristic query engine over a fast/mid/slow subset.
#[derive(Debug, Clone)]
pub struct ZeusHeuristic {
    apfg: SimulatedApfg,
    fast: Configuration,
    mid: Configuration,
    slow: Configuration,
    cost: CostModel,
}

impl ZeusHeuristic {
    /// Build with an explicit fast/mid/slow configuration subset (the
    /// §6.8 experiment constrains all adaptive agents to exactly three).
    pub fn new(
        apfg: SimulatedApfg,
        fast: Configuration,
        mid: Configuration,
        slow: Configuration,
        cost: CostModel,
    ) -> Self {
        ZeusHeuristic {
            apfg,
            fast,
            mid,
            slow,
            cost,
        }
    }

    /// The (fast, mid, slow) subset.
    pub fn subset(&self) -> (Configuration, Configuration, Configuration) {
        (self.fast, self.mid, self.slow)
    }

    fn step_cost(&self, c: Configuration) -> zeus_sim::SimDuration {
        self.cost.r3d_invocation(c.seg_len, c.resolution) + self.cost.mlp_head()
    }
}

impl QueryEngine for ZeusHeuristic {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::ZeusHeuristic
    }

    fn execute_video(
        &self,
        video: &Video,
        clock: &mut SimClock,
        hist: &mut ConfigHistogram,
    ) -> Vec<bool> {
        let mut labels = vec![false; video.num_frames];
        let mut current = self.mid;
        let mut consecutive_no_action = 0usize;
        let mut prev_prediction = false;
        let mut start = 0usize;

        while start < video.num_frames {
            let end = (start + current.frames_covered()).min(video.num_frames);
            clock.advance(self.step_cost(current));
            hist.record(current, (end - start) as u64);
            let out = self.apfg.process(video, start, current);
            if out.prediction {
                for l in &mut labels[start..end] {
                    *l = true;
                }
            }

            // Hard-coded rules (§6.1).
            if out.prediction {
                current = self.slow; // rule 1
                consecutive_no_action = 0;
            } else {
                consecutive_no_action += 1;
                if prev_prediction {
                    current = self.mid; // rule 2: flip ACTION -> NO-ACTION
                }
                if consecutive_no_action >= NO_ACTION_RUN {
                    current = self.fast; // rule 3
                }
            }
            prev_prediction = out.prediction;
            start = end;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionClass, ActionInterval, VideoId};

    fn engine() -> ZeusHeuristic {
        ZeusHeuristic::new(
            SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 11),
            Configuration::new(150, 8, 8),
            Configuration::new(250, 6, 2),
            Configuration::new(300, 4, 1),
            CostModel::default(),
        )
    }

    fn sparse_video() -> Video {
        Video {
            id: VideoId(0),
            num_frames: 4000,
            fps: 30.0,
            seed: 8,
            intervals: vec![ActionInterval::new(2000, 2150, ActionClass::CrossRight)],
        }
    }

    fn dense_video() -> Video {
        Video {
            id: VideoId(1),
            num_frames: 4000,
            fps: 30.0,
            seed: 9,
            intervals: vec![ActionInterval::new(200, 3800, ActionClass::CrossRight)],
        }
    }

    #[test]
    fn uses_fast_configs_on_sparse_video() {
        let e = engine();
        let v = sparse_video();
        let r = e.execute(&[&v]);
        // Most frames processed with the fastest configuration.
        let fr = r.histogram.fractions_for(&[Configuration::new(150, 8, 8)]);
        assert!(fr[0] > 0.5, "fast fraction {} on sparse video", fr[0]);
    }

    #[test]
    fn locks_into_slow_configs_on_dense_video() {
        // §6.2: "when the fraction of action frames is high,
        // Zeus-Heuristic uses slower configurations for the majority of
        // frames ... delivering lower throughput".
        let e = engine();
        let sparse = e.execute(&[&sparse_video()]);
        let dense = e.execute(&[&dense_video()]);
        assert!(
            dense.throughput() < sparse.throughput() * 0.6,
            "dense {} vs sparse {}",
            dense.throughput(),
            sparse.throughput()
        );
        let slow_fr = dense
            .histogram
            .fractions_for(&[Configuration::new(300, 4, 1)]);
        assert!(
            slow_fr[0] > 0.4,
            "slow fraction {} on dense video",
            slow_fr[0]
        );
    }

    #[test]
    fn switches_to_slow_on_detection() {
        // After an ACTION prediction the very next step must use the
        // slowest configuration: verify through the histogram having slow
        // frames right at the action.
        let e = engine();
        let v = sparse_video();
        let r = e.execute(&[&v]);
        let entries = r.histogram.entries();
        let slow_frames: u64 = entries
            .iter()
            .filter(|(c, _)| *c == Configuration::new(300, 4, 1))
            .map(|(_, n)| *n)
            .sum();
        assert!(slow_frames > 0, "slow config must engage at the action");
    }
}
