//! Zeus-Sliding engine: static-configuration sliding window (§2, Figure 4).
//!
//! "Zeus-Sliding processes segments in the video using ... the R3D network
//! in a sliding window fashion on the input video to generate segment-level
//! predictions. Zeus-Sliding uses a static Configuration for the entire
//! dataset. It chooses the fastest configuration that meets the target
//! accuracy."

use zeus_apfg::{Configuration, FeatureGenerator, SimulatedApfg};
use zeus_sim::{CostModel, SimClock};
use zeus_video::Video;

use crate::baselines::{ExecutorKind, QueryEngine};
use crate::result::ConfigHistogram;

/// The Zeus-Sliding query engine.
#[derive(Debug, Clone)]
pub struct ZeusSliding {
    apfg: SimulatedApfg,
    config: Configuration,
    cost: CostModel,
}

impl ZeusSliding {
    /// Build with a static configuration (the planner picks the fastest
    /// configuration meeting the accuracy target, §4.2/§6.1).
    pub fn new(apfg: SimulatedApfg, config: Configuration, cost: CostModel) -> Self {
        ZeusSliding { apfg, config, cost }
    }

    /// The static configuration in use.
    pub fn config(&self) -> Configuration {
        self.config
    }
}

impl QueryEngine for ZeusSliding {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::ZeusSliding
    }

    fn execute_video(
        &self,
        video: &Video,
        clock: &mut SimClock,
        hist: &mut ConfigHistogram,
    ) -> Vec<bool> {
        let step_cost = self
            .cost
            .r3d_invocation(self.config.seg_len, self.config.resolution)
            + self.cost.mlp_head();
        let stride = self.config.frames_covered();
        let mut labels = vec![false; video.num_frames];
        let mut start = 0usize;
        while start < video.num_frames {
            let end = (start + stride).min(video.num_frames);
            clock.advance(step_cost);
            hist.record(self.config, (end - start) as u64);
            let out = self.apfg.process(video, start, self.config);
            if out.prediction {
                for l in &mut labels[start..end] {
                    *l = true;
                }
            }
            start = end;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionClass, ActionInterval, VideoId};

    fn video() -> Video {
        // Long enough that the truncated final window is negligible in
        // the throughput comparison against Table 2.
        Video {
            id: VideoId(0),
            num_frames: 9600,
            fps: 30.0,
            seed: 6,
            intervals: vec![ActionInterval::new(300, 450, ActionClass::CrossRight)],
        }
    }

    fn engine(config: Configuration) -> ZeusSliding {
        ZeusSliding::new(
            SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 7),
            config,
            CostModel::default(),
        )
    }

    #[test]
    fn throughput_matches_the_calibrated_cost_model() {
        // Table 2's throughput figures are sliding throughputs; the engine
        // must reproduce them (up to the negligible MLP-head overhead).
        for (r, l, s, paper_fps) in [
            (150usize, 4usize, 8usize, 1282.0f64),
            (200, 4, 4, 553.0),
            (250, 6, 2, 285.0),
            (300, 6, 1, 115.0),
        ] {
            let e = engine(Configuration::new(r, l, s));
            let v = video();
            let result = e.execute(&[&v]);
            let rel = (result.throughput() - paper_fps).abs() / paper_fps;
            assert!(
                rel < 0.015,
                "({r},{l},{s}): {} fps vs paper {paper_fps} ({:.2}% off)",
                result.throughput(),
                rel * 100.0
            );
        }
    }

    #[test]
    fn accurate_config_localizes_the_action() {
        let e = engine(Configuration::new(300, 8, 1));
        let v = video();
        let r = e.execute(&[&v]);
        let labels = &r.labels[0].1;
        let hits = labels[300..450].iter().filter(|&&b| b).count();
        assert!(hits > 120, "recalled {hits}/150 action frames");
        let fps_outside: usize = labels[..250].iter().filter(|&&b| b).count();
        assert!(
            fps_outside < 50,
            "false positives before action: {fps_outside}"
        );
    }

    #[test]
    fn histogram_records_every_frame_under_the_static_config() {
        let c = Configuration::new(200, 4, 4);
        let e = engine(c);
        let v = video();
        let r = e.execute(&[&v]);
        assert_eq!(r.histogram.total_frames(), 9600);
        assert_eq!(r.histogram.entries(), vec![(c, 9600)]);
    }
}
