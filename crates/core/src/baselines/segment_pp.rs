//! Segment-PP engine: the lightweight-filter cascade baseline (§6.1).
//!
//! "Segment-PP uses a lightweight 3D-CNN filter on all non-overlapping
//! segments in the video to quickly eliminate segments that do not satisfy
//! the query predicate. The R3D model then processes the filtered segments
//! to generate the final query output."

use zeus_apfg::segment_pp::SegmentPpFilter;
use zeus_apfg::{Configuration, FeatureGenerator, SimulatedApfg};
use zeus_sim::{CostModel, SimClock};
use zeus_video::Video;

use crate::baselines::{ExecutorKind, QueryEngine};
use crate::result::ConfigHistogram;

/// Resolution at which the lightweight filter operates (cheap, coarse).
const FILTER_RESOLUTION: usize = 64;
/// Frames the filter samples per chunk.
const FILTER_SEG_LEN: usize = 8;

/// The Segment-PP query engine.
#[derive(Debug, Clone)]
pub struct SegmentPp {
    filter: SegmentPpFilter,
    apfg: SimulatedApfg,
    /// Full-model configuration for surviving segments (the most accurate
    /// configuration, so the cascade's ceiling matches the APFG's).
    heavy_config: Configuration,
    cost: CostModel,
}

impl SegmentPp {
    /// Build the cascade.
    pub fn new(
        filter: SegmentPpFilter,
        apfg: SimulatedApfg,
        heavy_config: Configuration,
        cost: CostModel,
    ) -> Self {
        SegmentPp {
            filter,
            apfg,
            heavy_config,
            cost,
        }
    }
}

impl QueryEngine for SegmentPp {
    fn kind(&self) -> ExecutorKind {
        ExecutorKind::SegmentPp
    }

    fn execute_video(
        &self,
        video: &Video,
        clock: &mut SimClock,
        hist: &mut ConfigHistogram,
    ) -> Vec<bool> {
        let chunk = self.heavy_config.frames_covered();
        let filter_cost = self
            .cost
            .light3d_invocation(FILTER_SEG_LEN, FILTER_RESOLUTION);
        let heavy_cost = self
            .cost
            .r3d_invocation(self.heavy_config.seg_len, self.heavy_config.resolution)
            + self.cost.mlp_head();

        let mut labels = vec![false; video.num_frames];
        let mut start = 0usize;
        while start < video.num_frames {
            let end = (start + chunk).min(video.num_frames);
            clock.advance(filter_cost);
            if self.filter.passes(video, start, chunk) {
                clock.advance(heavy_cost);
                hist.record(self.heavy_config, (end - start) as u64);
                let out = self.apfg.process(video, start, self.heavy_config);
                if out.prediction {
                    for l in &mut labels[start..end] {
                        *l = true;
                    }
                }
            }
            start = end;
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionClass, ActionInterval, VideoId};

    fn video() -> Video {
        Video {
            id: VideoId(0),
            num_frames: 960,
            fps: 30.0,
            seed: 4,
            intervals: vec![ActionInterval::new(200, 420, ActionClass::LeftTurn)],
        }
    }

    fn engine(class: ActionClass) -> SegmentPp {
        let heavy = Configuration::new(300, 8, 1);
        SegmentPp::new(
            SegmentPpFilter::new(vec![class], 9),
            SimulatedApfg::new(vec![class], 300, 8, 8, 9),
            heavy,
            CostModel::default(),
        )
    }

    #[test]
    fn cascade_is_faster_than_running_heavy_everywhere() {
        // On a rare easy class most chunks are filtered, so throughput
        // beats always-running the heavy model.
        let e = engine(ActionClass::LeftTurn);
        let v = video();
        let result = e.execute(&[&v]);
        let cost = CostModel::default();
        let always_heavy_fps = cost.sliding_throughput(8, 1, 300);
        assert!(
            result.throughput() > always_heavy_fps,
            "cascade {} fps vs heavy-everywhere {always_heavy_fps} fps",
            result.throughput()
        );
    }

    #[test]
    fn labels_have_video_length() {
        let e = engine(ActionClass::LeftTurn);
        let v = video();
        let r = e.execute(&[&v]);
        assert_eq!(r.labels[0].1.len(), v.num_frames);
    }

    #[test]
    fn filter_misses_reduce_recall_on_hard_classes() {
        // On a hard class (PoleVault traits) the filter drops many true
        // chunks, so some action frames stay unlabeled.
        let v = Video {
            id: VideoId(1),
            num_frames: 960,
            fps: 30.0,
            seed: 5,
            intervals: vec![ActionInterval::new(100, 800, ActionClass::PoleVault)],
        };
        let e = engine(ActionClass::PoleVault);
        let r = e.execute(&[&v]);
        let recalled = r.labels[0].1[100..800].iter().filter(|&&b| b).count();
        let frac = recalled as f64 / 700.0;
        assert!(frac < 0.9, "hard-class recall should suffer: {frac}");
    }
}
