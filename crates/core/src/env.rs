//! The video-traversal environment: the MDP of §4.1 over a training corpus.
//!
//! Algorithm 1's episode structure: videos are concatenated into one
//! episode and permuted randomly each episode ("Zeus permutes the videos in
//! a random order for each episode to prevent overfitting", §5). The state
//! is the ProxyFeature of the *current* segment; the chosen configuration
//! constructs and processes the *next* segment, whose feature becomes the
//! next state (Algorithm 1, lines 6–8).
//!
//! The corpus is held behind an `Arc`, so the vectorized training plane
//! can [`VideoTraversalEnv::fork`] N seeded copies (one per lockstep
//! environment, one set per portfolio candidate) without cloning a single
//! video. An optional shared [`FeatureCache`] memoises APFG invocations
//! across those copies — the §5 pre-processing optimization applied
//! on-line: parallel rollouts that revisit a `(video, start, config)`
//! never recompute its ProxyFeature.

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use zeus_apfg::{ApfgOutput, Configuration, FeatureCache, FeatureGenerator};
use zeus_rl::{Environment, Transition};
use zeus_video::{ActionClass, Video};

use crate::config::ConfigSpace;

/// Typed construction failures of the traversal environment — everything
/// that used to be an `assert!` on environment input reachable from user
/// configuration (an empty corpus, a malformed fastness table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvError {
    /// The training split holds no videos.
    NoVideos,
    /// The fastness table does not line up with the configuration space.
    AlphaMismatch {
        /// Number of configurations in the space.
        configs: usize,
        /// Number of fastness values supplied.
        alphas: usize,
    },
}

impl std::fmt::Display for EnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvError::NoVideos => write!(f, "environment needs training videos"),
            EnvError::AlphaMismatch { configs, alphas } => write!(
                f,
                "one fastness value per configuration required: {configs} configs vs {alphas} alphas"
            ),
        }
    }
}

impl std::error::Error for EnvError {}

/// The Zeus training environment.
pub struct VideoTraversalEnv {
    videos: Arc<[Video]>,
    order: Vec<usize>,
    apfg: Arc<dyn FeatureGenerator + Send + Sync>,
    cache: Option<Arc<FeatureCache>>,
    classes: Vec<ActionClass>,
    space: ConfigSpace,
    alphas: Vec<f32>,
    init_config: Configuration,
    rng: ChaCha8Rng,
    vid_cursor: usize,
    frame_cursor: usize,
    state: Vec<f32>,
}

impl std::fmt::Debug for VideoTraversalEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VideoTraversalEnv")
            .field("videos", &self.videos.len())
            .field("actions", &self.space.len())
            .field("cached", &self.cache.is_some())
            .field("vid_cursor", &self.vid_cursor)
            .field("frame_cursor", &self.frame_cursor)
            .finish()
    }
}

impl VideoTraversalEnv {
    /// Build an environment over training videos.
    ///
    /// `alphas` must be the normalised fastness values of `space`
    /// (see [`ConfigSpace::alphas`]); `init_config` is the most accurate
    /// configuration, used for each video's initial segment (§3).
    pub fn new(
        videos: Vec<Video>,
        classes: Vec<ActionClass>,
        apfg: Arc<dyn FeatureGenerator + Send + Sync>,
        space: ConfigSpace,
        alphas: Vec<f32>,
        init_config: Configuration,
        seed: u64,
    ) -> Result<Self, EnvError> {
        Self::shared(
            videos.into(),
            classes,
            apfg,
            space,
            alphas,
            init_config,
            seed,
        )
    }

    /// Build an environment over an already-shared corpus — the fan-out
    /// path: every [`VideoTraversalEnv::fork`] and every parallel worker
    /// borrows the same `Arc<[Video]>` instead of re-cloning the corpus.
    pub fn shared(
        videos: Arc<[Video]>,
        classes: Vec<ActionClass>,
        apfg: Arc<dyn FeatureGenerator + Send + Sync>,
        space: ConfigSpace,
        alphas: Vec<f32>,
        init_config: Configuration,
        seed: u64,
    ) -> Result<Self, EnvError> {
        if videos.is_empty() {
            return Err(EnvError::NoVideos);
        }
        if space.len() != alphas.len() {
            return Err(EnvError::AlphaMismatch {
                configs: space.len(),
                alphas: alphas.len(),
            });
        }
        let order: Vec<usize> = (0..videos.len()).collect();
        Ok(VideoTraversalEnv {
            videos,
            order,
            apfg,
            cache: None,
            classes,
            space,
            alphas,
            init_config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            vid_cursor: 0,
            frame_cursor: 0,
            state: Vec::new(),
        })
    }

    /// Route APFG invocations through a shared, thread-safe feature
    /// cache. Caching is semantically invisible — the APFG is a pure
    /// function of `(video, start, config)` — but parallel rollouts stop
    /// recomputing ProxyFeatures they have already seen.
    pub fn with_cache(mut self, cache: Arc<FeatureCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// A cheap seeded copy for vectorized / multi-worker rollouts: the
    /// corpus, APFG, and cache are shared by `Arc`, only the traversal
    /// state is fresh. `fork(s)` behaves identically to constructing a
    /// new environment over the same corpus with seed `s`.
    pub fn fork(&self, seed: u64) -> Self {
        VideoTraversalEnv {
            videos: Arc::clone(&self.videos),
            order: (0..self.videos.len()).collect(),
            apfg: Arc::clone(&self.apfg),
            cache: self.cache.clone(),
            classes: self.classes.clone(),
            space: self.space.clone(),
            alphas: self.alphas.clone(),
            init_config: self.init_config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            vid_cursor: 0,
            frame_cursor: 0,
            state: Vec::new(),
        }
    }

    /// Re-seed in place: restores the exact state of a freshly
    /// constructed environment with `seed` (identity video order, cursors
    /// at zero) without touching the shared corpus.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.rng = ChaCha8Rng::seed_from_u64(seed);
        self.order = (0..self.videos.len()).collect();
        self.vid_cursor = 0;
        self.frame_cursor = 0;
        self.state = Vec::new();
    }

    /// Number of training videos in the corpus.
    pub fn num_videos(&self) -> usize {
        self.videos.len()
    }

    /// The attached shared feature cache, if any.
    pub fn cache(&self) -> Option<&Arc<FeatureCache>> {
        self.cache.as_ref()
    }

    /// One APFG invocation, memoised when a cache is attached.
    fn process(&self, video: &Video, start: usize, config: Configuration) -> ApfgOutput {
        match &self.cache {
            Some(cache) => cache.get_or_compute(self.apfg.as_ref(), video, start, config),
            None => self.apfg.process(video, start, config),
        }
    }

    fn current_video(&self) -> &Video {
        &self.videos[self.order[self.vid_cursor]]
    }

    /// Process the initial segment of the current video with the most
    /// accurate configuration (Algorithm 1's `Init_Segment`).
    fn init_state(&mut self) {
        let video = &self.videos[self.order[self.vid_cursor]];
        let out = self.process(video, 0, self.init_config);
        self.frame_cursor = self.init_config.frames_covered().min(video.num_frames);
        self.state = out.feature;
    }

    /// Total frames across all training videos.
    pub fn total_frames(&self) -> usize {
        self.videos.iter().map(|v| v.num_frames).sum()
    }
}

impl Environment for VideoTraversalEnv {
    fn state_dim(&self) -> usize {
        self.apfg.feature_dim()
    }

    fn num_actions(&self) -> usize {
        self.space.len()
    }

    fn alphas(&self) -> &[f32] {
        &self.alphas
    }

    fn reset(&mut self) -> Vec<f32> {
        self.order.shuffle(&mut self.rng);
        self.vid_cursor = 0;
        self.init_state();
        self.state.clone()
    }

    fn step(&mut self, action: usize) -> Transition {
        // Actions come from the agent, whose head is sized to the space;
        // an out-of-range index is an internal logic error, not user
        // input.
        debug_assert!(action < self.space.len(), "action out of range");
        let config = self.space.configs()[action];
        let video = self.current_video();
        let start = self.frame_cursor;
        let out = self.process(video, start, config);
        let span_end = (start + config.frames_covered()).min(video.num_frames);

        let gt: Vec<bool> = (start..span_end)
            .map(|n| video.label_at(&self.classes, n))
            .collect();
        let pred = vec![out.prediction; span_end - start];

        let prev_state = std::mem::take(&mut self.state);
        self.state = out.feature;
        self.frame_cursor = span_end;

        let mut done = false;
        if self.frame_cursor >= self.current_video().num_frames {
            self.vid_cursor += 1;
            if self.vid_cursor >= self.videos.len() {
                done = true;
                self.vid_cursor = 0; // keep cursors valid until next reset
                self.frame_cursor = 0;
            } else {
                // Concatenated episode: the next video's initial segment is
                // processed with the chosen configuration's successor state.
                self.init_state();
            }
        }

        Transition {
            state: prev_state,
            action,
            next_state: self.state.clone(),
            done,
            gt,
            pred,
            alpha: self.alphas[action],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_apfg::SimulatedApfg;
    use zeus_sim::CostModel;
    use zeus_video::DatasetKind;

    fn tiny_env(seed: u64) -> VideoTraversalEnv {
        let ds = DatasetKind::Bdd100k.generate(0.02, 3);
        let videos: Vec<Video> = ds.store.videos().to_vec();
        let classes = vec![ActionClass::CrossRight];
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let alphas = space.alphas(&CostModel::default());
        let init = space.most_accurate();
        let apfg = Arc::new(SimulatedApfg::new(
            classes.clone(),
            space.max_resolution(),
            space.max_seg_len(),
            space.max_sampling(),
            seed,
        ));
        VideoTraversalEnv::new(videos, classes, apfg, space, alphas, init, seed)
            .expect("tiny corpus is valid")
    }

    /// Drive an env to completion with a fixed action, returning the
    /// per-step (action, state, done) trace.
    fn trace(env: &mut VideoTraversalEnv, action: usize) -> Vec<(Vec<f32>, bool)> {
        let mut out = vec![(env.reset(), false)];
        loop {
            let t = env.step(action);
            let done = t.done;
            out.push((t.next_state, done));
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn reset_returns_feature_state() {
        let mut env = tiny_env(1);
        let s = env.reset();
        assert_eq!(s.len(), env.state_dim());
        assert_eq!(env.num_actions(), 64);
    }

    #[test]
    fn steps_cover_the_whole_corpus() {
        let mut env = tiny_env(2);
        let _ = env.reset();
        let total = env.total_frames();
        let mut covered = 0usize;
        // Always take action 0 and count frames until done. The initial
        // segment of each video is processed with the init config and not
        // returned through transitions, so covered < total but must
        // terminate and stay consistent.
        let mut steps = 0;
        loop {
            let t = env.step(0);
            covered += t.span_len();
            steps += 1;
            assert!(steps < 1_000_000, "episode failed to terminate");
            if t.done {
                break;
            }
        }
        let init_spans = env.videos.len() * env.init_config.frames_covered();
        assert!(
            covered + init_spans >= total,
            "covered {covered} of {total}"
        );
    }

    #[test]
    fn episodes_shuffle_video_order() {
        let mut env = tiny_env(3);
        let before = env.order.clone();
        let mut changed = false;
        for _ in 0..5 {
            let _ = env.reset();
            if env.order != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "video order should be permuted across episodes");
    }

    #[test]
    fn transition_labels_match_ground_truth() {
        let mut env = tiny_env(4);
        let _ = env.reset();
        let video_idx = env.order[0];
        let start = env.frame_cursor;
        let t = env.step(5);
        let video = &env.videos[video_idx];
        for (i, &g) in t.gt.iter().enumerate() {
            assert_eq!(
                g,
                video.label_at(&[ActionClass::CrossRight], start + i),
                "gt mismatch at offset {i}"
            );
        }
    }

    #[test]
    fn empty_corpus_is_a_typed_error() {
        let classes = vec![ActionClass::CrossRight];
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let alphas = space.alphas(&CostModel::default());
        let init = space.most_accurate();
        let apfg = Arc::new(SimulatedApfg::new(classes.clone(), 300, 8, 8, 0));
        let err =
            VideoTraversalEnv::new(vec![], classes, apfg, space, alphas, init, 0).unwrap_err();
        assert_eq!(err, EnvError::NoVideos);
    }

    #[test]
    fn alpha_mismatch_is_a_typed_error() {
        let ds = DatasetKind::Bdd100k.generate(0.02, 3);
        let classes = vec![ActionClass::CrossRight];
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let init = space.most_accurate();
        let apfg = Arc::new(SimulatedApfg::new(classes.clone(), 300, 8, 8, 0));
        let err = VideoTraversalEnv::new(
            ds.store.videos().to_vec(),
            classes,
            apfg,
            space.clone(),
            vec![0.5; 3],
            init,
            0,
        )
        .unwrap_err();
        assert_eq!(
            err,
            EnvError::AlphaMismatch {
                configs: space.len(),
                alphas: 3
            }
        );
    }

    #[test]
    fn fork_matches_fresh_construction_and_shares_the_corpus() {
        let base = tiny_env(7);
        let mut forked = base.fork(7);
        let mut fresh = tiny_env(7);
        assert!(Arc::ptr_eq(&base.videos, &forked.videos));
        assert_eq!(trace(&mut forked, 2), trace(&mut fresh, 2));
    }

    #[test]
    fn reset_with_seed_replays_the_episode() {
        let mut env = tiny_env(9);
        let first = trace(&mut env, 1);
        let diverged = trace(&mut env, 1); // rng advanced: different order
        env.reset_with_seed(9);
        let replayed = trace(&mut env, 1);
        assert_eq!(first, replayed, "reseeding must restore the trajectory");
        // (The middle trace usually differs; assert only that replay works
        // even after arbitrary traversal.)
        let _ = diverged;
    }

    #[test]
    fn cached_env_is_bit_identical_to_uncached() {
        let cache = Arc::new(FeatureCache::new());
        let mut cached = tiny_env(11).with_cache(Arc::clone(&cache));
        let mut plain = tiny_env(11);
        assert_eq!(trace(&mut cached, 3), trace(&mut plain, 3));
        assert!(!cache.is_empty(), "traversal must populate the cache");
        // A second fork over the same cache hits instead of recomputing.
        let before = cache.len();
        let mut again = cached.fork(11);
        let _ = trace(&mut again, 3);
        assert_eq!(cache.len(), before, "identical replay must be all hits");
    }
}
