//! The video-traversal environment: the MDP of §4.1 over a training corpus.
//!
//! Algorithm 1's episode structure: videos are concatenated into one
//! episode and permuted randomly each episode ("Zeus permutes the videos in
//! a random order for each episode to prevent overfitting", §5). The state
//! is the ProxyFeature of the *current* segment; the chosen configuration
//! constructs and processes the *next* segment, whose feature becomes the
//! next state (Algorithm 1, lines 6–8).

use std::sync::Arc;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use zeus_apfg::{Configuration, FeatureGenerator};
use zeus_rl::{Environment, Transition};
use zeus_video::{ActionClass, Video};

use crate::config::ConfigSpace;

/// The Zeus training environment.
pub struct VideoTraversalEnv {
    videos: Vec<Video>,
    order: Vec<usize>,
    apfg: Arc<dyn FeatureGenerator + Send + Sync>,
    classes: Vec<ActionClass>,
    space: ConfigSpace,
    alphas: Vec<f32>,
    init_config: Configuration,
    rng: ChaCha8Rng,
    vid_cursor: usize,
    frame_cursor: usize,
    state: Vec<f32>,
}

impl VideoTraversalEnv {
    /// Build an environment over training videos.
    ///
    /// `alphas` must be the normalised fastness values of `space`
    /// (see [`ConfigSpace::alphas`]); `init_config` is the most accurate
    /// configuration, used for each video's initial segment (§3).
    pub fn new(
        videos: Vec<Video>,
        classes: Vec<ActionClass>,
        apfg: Arc<dyn FeatureGenerator + Send + Sync>,
        space: ConfigSpace,
        alphas: Vec<f32>,
        init_config: Configuration,
        seed: u64,
    ) -> Self {
        assert!(!videos.is_empty(), "environment needs training videos");
        assert_eq!(space.len(), alphas.len(), "one alpha per configuration");
        let order: Vec<usize> = (0..videos.len()).collect();
        VideoTraversalEnv {
            videos,
            order,
            apfg,
            classes,
            space,
            alphas,
            init_config,
            rng: ChaCha8Rng::seed_from_u64(seed),
            vid_cursor: 0,
            frame_cursor: 0,
            state: Vec::new(),
        }
    }

    fn current_video(&self) -> &Video {
        &self.videos[self.order[self.vid_cursor]]
    }

    /// Process the initial segment of the current video with the most
    /// accurate configuration (Algorithm 1's `Init_Segment`).
    fn init_state(&mut self) {
        let video = &self.videos[self.order[self.vid_cursor]];
        let out = self.apfg.process(video, 0, self.init_config);
        self.frame_cursor = self.init_config.frames_covered().min(video.num_frames);
        self.state = out.feature;
    }

    /// Total frames across all training videos.
    pub fn total_frames(&self) -> usize {
        self.videos.iter().map(|v| v.num_frames).sum()
    }
}

impl Environment for VideoTraversalEnv {
    fn state_dim(&self) -> usize {
        self.apfg.feature_dim()
    }

    fn num_actions(&self) -> usize {
        self.space.len()
    }

    fn alphas(&self) -> &[f32] {
        &self.alphas
    }

    fn reset(&mut self) -> Vec<f32> {
        self.order.shuffle(&mut self.rng);
        self.vid_cursor = 0;
        self.init_state();
        self.state.clone()
    }

    fn step(&mut self, action: usize) -> Transition {
        assert!(action < self.space.len(), "action out of range");
        let config = self.space.configs()[action];
        let video = self.current_video();
        let start = self.frame_cursor;
        let out = self.apfg.process(video, start, config);
        let span_end = (start + config.frames_covered()).min(video.num_frames);

        let gt: Vec<bool> = (start..span_end)
            .map(|n| video.label_at(&self.classes, n))
            .collect();
        let pred = vec![out.prediction; span_end - start];

        let prev_state = std::mem::take(&mut self.state);
        self.state = out.feature;
        self.frame_cursor = span_end;

        let mut done = false;
        if self.frame_cursor >= self.current_video().num_frames {
            self.vid_cursor += 1;
            if self.vid_cursor >= self.videos.len() {
                done = true;
                self.vid_cursor = 0; // keep cursors valid until next reset
                self.frame_cursor = 0;
            } else {
                // Concatenated episode: the next video's initial segment is
                // processed with the chosen configuration's successor state.
                self.init_state();
            }
        }

        Transition {
            state: prev_state,
            action,
            next_state: self.state.clone(),
            done,
            gt,
            pred,
            alpha: self.alphas[action],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_apfg::SimulatedApfg;
    use zeus_sim::CostModel;
    use zeus_video::DatasetKind;

    fn tiny_env(seed: u64) -> VideoTraversalEnv {
        let ds = DatasetKind::Bdd100k.generate(0.02, 3);
        let videos: Vec<Video> = ds.store.videos().to_vec();
        let classes = vec![ActionClass::CrossRight];
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let alphas = space.alphas(&CostModel::default());
        let init = space.most_accurate();
        let apfg = Arc::new(SimulatedApfg::new(
            classes.clone(),
            space.max_resolution(),
            space.max_seg_len(),
            space.max_sampling(),
            seed,
        ));
        VideoTraversalEnv::new(videos, classes, apfg, space, alphas, init, seed)
    }

    #[test]
    fn reset_returns_feature_state() {
        let mut env = tiny_env(1);
        let s = env.reset();
        assert_eq!(s.len(), env.state_dim());
        assert_eq!(env.num_actions(), 64);
    }

    #[test]
    fn steps_cover_the_whole_corpus() {
        let mut env = tiny_env(2);
        let _ = env.reset();
        let total = env.total_frames();
        let mut covered = 0usize;
        // Always take action 0 and count frames until done. The initial
        // segment of each video is processed with the init config and not
        // returned through transitions, so covered < total but must
        // terminate and stay consistent.
        let mut steps = 0;
        loop {
            let t = env.step(0);
            covered += t.span_len();
            steps += 1;
            assert!(steps < 1_000_000, "episode failed to terminate");
            if t.done {
                break;
            }
        }
        let init_spans = env.videos.len() * env.init_config.frames_covered();
        assert!(
            covered + init_spans >= total,
            "covered {covered} of {total}"
        );
    }

    #[test]
    fn episodes_shuffle_video_order() {
        let mut env = tiny_env(3);
        let before = env.order.clone();
        let mut changed = false;
        for _ in 0..5 {
            let _ = env.reset();
            if env.order != before {
                changed = true;
                break;
            }
        }
        assert!(changed, "video order should be permuted across episodes");
    }

    #[test]
    fn transition_labels_match_ground_truth() {
        let mut env = tiny_env(4);
        let _ = env.reset();
        let video_idx = env.order[0];
        let start = env.frame_cursor;
        let t = env.step(5);
        let video = &env.videos[video_idx];
        for (i, &g) in t.gt.iter().enumerate() {
            assert_eq!(
                g,
                video.label_at(&[ActionClass::CrossRight], start + i),
                "gt mismatch at offset {i}"
            );
        }
    }
}
