//! Execution results: per-frame predictions, simulated time, and the
//! per-configuration frame histogram (feeds Figures 12b and 14).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use zeus_apfg::Configuration;
use zeus_sim::SimClock;
use zeus_video::annotation::{runs_from_labels, smooth_labels};
use zeus_video::{ActionClass, Video, VideoId};

use crate::metrics::{evaluate_events, evaluate_frames, EvalProtocol, EvalReport};

/// How many video frames were processed under each configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConfigHistogram {
    counts: HashMap<Configuration, u64>,
}

impl ConfigHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `frames` video frames processed under `config`.
    pub fn record(&mut self, config: Configuration, frames: u64) {
        *self.counts.entry(config).or_insert(0) += frames;
    }

    /// Total frames recorded.
    pub fn total_frames(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Frames per configuration, sorted by configuration for determinism.
    pub fn entries(&self) -> Vec<(Configuration, u64)> {
        let mut v: Vec<(Configuration, u64)> = self.counts.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_by_key(|(c, _)| (c.resolution, c.seg_len, c.sampling_rate));
        v
    }

    /// Fraction of frames processed at a resolution strictly below
    /// `threshold` — the lo/hi split of Figure 12b / Figure 14b.
    pub fn low_resolution_fraction(&self, threshold: usize) -> f64 {
        let total = self.total_frames();
        if total == 0 {
            return 0.0;
        }
        let low: u64 = self
            .counts
            .iter()
            .filter(|(c, _)| c.resolution < threshold)
            .map(|(_, &n)| n)
            .sum();
        low as f64 / total as f64
    }

    /// Fraction of frames processed under each of the given configurations
    /// (Figure 14a's fast/mid/slow split). Unlisted configurations
    /// contribute to the denominator.
    pub fn fractions_for(&self, configs: &[Configuration]) -> Vec<f64> {
        let total = self.total_frames().max(1) as f64;
        configs
            .iter()
            .map(|c| *self.counts.get(c).unwrap_or(&0) as f64 / total)
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &ConfigHistogram) {
        for (&c, &n) in &other.counts {
            self.record(c, n);
        }
    }
}

/// Raw output of running one engine over a set of videos.
#[derive(Debug, Clone)]
pub struct ExecutionResult {
    /// Predicted per-frame labels per video.
    pub labels: Vec<(VideoId, Vec<bool>)>,
    /// Simulated processing time (drives throughput).
    pub clock: SimClock,
    /// Frames processed per configuration.
    pub histogram: ConfigHistogram,
}

impl ExecutionResult {
    /// Total video frames covered.
    pub fn total_frames(&self) -> u64 {
        self.labels.iter().map(|(_, l)| l.len() as u64).sum()
    }

    /// Throughput in frames per (simulated) second — the paper's fps axis.
    pub fn throughput(&self) -> f64 {
        self.clock.throughput(self.total_frames())
    }

    /// Evaluate against ground truth with the fixed-window protocol,
    /// producing the F1 report.
    pub fn evaluate(
        &self,
        videos: &[&Video],
        classes: &[ActionClass],
        protocol: EvalProtocol,
    ) -> EvalReport {
        let mut report = EvalReport::default();
        for (id, pred) in &self.labels {
            let video = videos
                .iter()
                .find(|v| v.id == *id)
                .unwrap_or_else(|| panic!("video {id:?} missing from ground-truth set"));
            let gt = video.labels(classes);
            report.merge(&evaluate_frames(protocol, &gt, pred));
        }
        report
    }

    /// Apply the standard temporal-localization post-processing to the
    /// predicted labels: close gaps of at most `max_gap`, drop runs
    /// shorter than `min_run`. Applied uniformly to every engine before
    /// event-level evaluation.
    pub fn smoothed(&self, max_gap: usize, min_run: usize) -> ExecutionResult {
        ExecutionResult {
            labels: self
                .labels
                .iter()
                .map(|(id, l)| (*id, smooth_labels(l, max_gap, min_run)))
                .collect(),
            clock: self.clock.clone(),
            histogram: self.histogram.clone(),
        }
    }

    /// Evaluate at event level: output segments matched to ground-truth
    /// action instances by temporal IoU (the paper's §2.1 segment
    /// criterion; the headline metric of the reproduction).
    ///
    /// Predictions are smoothed first (`max_gap = 2·min_run`, `min_run`
    /// passed by the caller from the dataset's evaluation protocol).
    pub fn evaluate_events(
        &self,
        videos: &[&Video],
        classes: &[ActionClass],
        min_iou: f64,
    ) -> EvalReport {
        let mut report = EvalReport::default();
        for (id, pred) in &self.labels {
            let video = videos
                .iter()
                .find(|v| v.id == *id)
                .unwrap_or_else(|| panic!("video {id:?} missing from ground-truth set"));
            let gt = video.labels(classes);
            report.merge(&evaluate_events(&gt, pred, min_iou));
        }
        report
    }

    /// Output segments per video (contiguous predicted-positive runs) —
    /// the `segment_ids` the query returns.
    pub fn output_segments(&self) -> Vec<(VideoId, Vec<(usize, usize)>)> {
        self.labels
            .iter()
            .map(|(id, l)| (*id, runs_from_labels(l)))
            .collect()
    }
}

/// A fully-evaluated query outcome — one point on the paper's
/// throughput-vs-F1 plots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryResult {
    /// Executor that produced it (display name).
    pub method: String,
    /// F1 score (the paper's accuracy axis).
    pub f1: f64,
    /// Precision component.
    pub precision: f64,
    /// Recall component.
    pub recall: f64,
    /// Throughput in fps (the paper's performance axis).
    pub throughput_fps: f64,
    /// Simulated execution seconds.
    pub elapsed_secs: f64,
    /// Model invocations performed.
    pub invocations: u64,
    /// Frames per configuration.
    pub histogram: ConfigHistogram,
}

impl QueryResult {
    /// Assemble from raw execution + evaluation.
    pub fn from_parts(method: &str, exec: &ExecutionResult, report: &EvalReport) -> Self {
        QueryResult {
            method: method.to_string(),
            f1: report.f1(),
            precision: report.precision(),
            recall: report.recall(),
            throughput_fps: exec.throughput(),
            elapsed_secs: exec.clock.elapsed_secs(),
            invocations: exec.clock.events(),
            histogram: exec.histogram.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_sim::SimDuration;

    #[test]
    fn histogram_records_and_fractions() {
        let mut h = ConfigHistogram::new();
        let fast = Configuration::new(150, 8, 8);
        let slow = Configuration::new(300, 2, 1);
        h.record(fast, 600);
        h.record(slow, 400);
        h.record(fast, 0);
        assert_eq!(h.total_frames(), 1000);
        assert!((h.low_resolution_fraction(200) - 0.6).abs() < 1e-9);
        let fr = h.fractions_for(&[fast, slow]);
        assert!((fr[0] - 0.6).abs() < 1e-9);
        assert!((fr[1] - 0.4).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = ConfigHistogram::new();
        let c = Configuration::new(150, 8, 8);
        a.record(c, 10);
        let mut b = ConfigHistogram::new();
        b.record(c, 5);
        a.merge(&b);
        assert_eq!(a.total_frames(), 15);
    }

    #[test]
    fn throughput_from_clock() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_secs(2.0));
        let exec = ExecutionResult {
            labels: vec![(VideoId(0), vec![false; 1000])],
            clock,
            histogram: ConfigHistogram::new(),
        };
        assert_eq!(exec.total_frames(), 1000);
        assert_eq!(exec.throughput(), 500.0);
    }

    #[test]
    fn output_segments_extracts_runs() {
        let exec = ExecutionResult {
            labels: vec![(VideoId(1), vec![false, true, true, false, true])],
            clock: SimClock::new(),
            histogram: ConfigHistogram::new(),
        };
        let segs = exec.output_segments();
        assert_eq!(segs[0].1, vec![(1, 3), (4, 5)]);
    }
}
