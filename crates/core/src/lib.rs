//! # zeus-core
//!
//! The Zeus VDBMS: the paper's primary contribution.
//!
//! * [`query`] — the SQL-ish action-query language of §1.
//! * [`config`] — Configuration spaces per dataset (Table 4) and the
//!   fastness normalisation of §4.4.
//! * [`planner`] — the query planner (§4): per-configuration cost
//!   profiling (Table 2), static-configuration selection, RL training with
//!   accuracy-aware aggregate rewards (Algorithms 1 & 2), and training-cost
//!   accounting (Table 6).
//! * [`mod@env`] — the video-traversal MDP (§4.1).
//! * [`baselines`] — the five §6.1 techniques: Frame-PP, Segment-PP,
//!   Zeus-Sliding, Zeus-Heuristic, and Zeus-RL (the system).
//! * [`metrics`] — the IoU-windowed segment F1 of §2.1.
//! * [`result`] — execution results, configuration histograms
//!   (Figures 12b/14), and evaluated query results.
//! * [`parallel`] — the inter-video parallel executor extension sketched
//!   in §6.4.
//! * [`training`] — the vectorized training plane: batched-inference
//!   lockstep rollouts, portfolio training across device-pool workers,
//!   and the training-throughput benchmark.

#![warn(missing_docs)]
pub mod baselines;
pub mod catalog;
pub mod config;
pub mod env;
pub mod metrics;
pub mod parallel;
pub mod planner;
pub mod query;
pub mod result;
pub mod training;

pub use baselines::{ExecutorKind, QueryEngine};
pub use catalog::{PlanCatalog, StoredPlan};
pub use config::{ConfigSpace, KnobMask};
pub use metrics::{EvalProtocol, EvalReport};
pub use planner::{
    ConfigProfile, EngineSet, PlanError, PlannerOptions, QueryPlan, QueryPlanner, TrainingCosts,
};
pub use query::{parse_zql, ActionQuery, OrderBy, ParseError, QueryIr};
pub use result::{ConfigHistogram, ExecutionResult, QueryResult};
pub use training::{
    CandidateJob, CandidateOutcome, PortfolioOutcome, TrainingEngine, TrainingOptions,
};
