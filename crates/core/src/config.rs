//! Configuration spaces (Table 4) and fastness normalisation (§4.4).

use serde::{Deserialize, Serialize};
use zeus_apfg::Configuration;
use zeus_sim::CostModel;
use zeus_video::{ConfigFamily, DatasetKind};

/// Knob-disabling mask for the §6.4 ablation ("we disable each knob (fix
/// the value) one at a time"). A fixed knob keeps only configurations
/// with that value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnobMask {
    /// Pin the resolution knob to this value.
    pub fix_resolution: Option<usize>,
    /// Pin the segment-length knob to this value.
    pub fix_seg_len: Option<usize>,
    /// Pin the sampling-rate knob to this value.
    pub fix_sampling: Option<usize>,
}

impl KnobMask {
    /// No knobs fixed.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether a configuration survives the mask.
    pub fn admits(&self, c: &Configuration) -> bool {
        self.fix_resolution.is_none_or(|r| c.resolution == r)
            && self.fix_seg_len.is_none_or(|l| c.seg_len == l)
            && self.fix_sampling.is_none_or(|s| c.sampling_rate == s)
    }
}

/// The set of candidate configurations for a dataset, with knob maxima and
/// normalised fastness values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSpace {
    configs: Vec<Configuration>,
    resolutions: Vec<usize>,
    seg_lens: Vec<usize>,
    sampling_rates: Vec<usize>,
}

impl ConfigSpace {
    /// Build a space from knob values (cross product).
    pub fn from_knobs(resolutions: &[usize], seg_lens: &[usize], sampling_rates: &[usize]) -> Self {
        assert!(
            !resolutions.is_empty() && !seg_lens.is_empty() && !sampling_rates.is_empty(),
            "knob lists must be non-empty"
        );
        let mut configs =
            Vec::with_capacity(resolutions.len() * seg_lens.len() * sampling_rates.len());
        for &r in resolutions {
            for &l in seg_lens {
                for &s in sampling_rates {
                    configs.push(Configuration::new(r, l, s));
                }
            }
        }
        ConfigSpace {
            configs,
            resolutions: resolutions.to_vec(),
            seg_lens: seg_lens.to_vec(),
            sampling_rates: sampling_rates.to_vec(),
        }
    }

    /// Build a space from an explicit, ordered configuration list (used
    /// when restoring a persisted plan, where the action order must match
    /// the trained policy's outputs exactly). Knob lists are derived from
    /// the configurations.
    pub fn from_configs(configs: Vec<Configuration>) -> Self {
        assert!(!configs.is_empty(), "need at least one configuration");
        let mut resolutions: Vec<usize> = configs.iter().map(|c| c.resolution).collect();
        let mut seg_lens: Vec<usize> = configs.iter().map(|c| c.seg_len).collect();
        let mut sampling_rates: Vec<usize> = configs.iter().map(|c| c.sampling_rate).collect();
        for v in [&mut resolutions, &mut seg_lens, &mut sampling_rates] {
            v.sort_unstable();
            v.dedup();
        }
        ConfigSpace {
            configs,
            resolutions,
            seg_lens,
            sampling_rates,
        }
    }

    /// The paper's knob settings per configuration family (Table 4):
    /// driving corpora (BDD100K and its §6.6 transfer targets):
    /// resolutions {150, 200, 250, 300}, lengths {2, 4, 6, 8}, sampling
    /// {1, 2, 4, 8} — 64 configurations. Untrimmed corpora
    /// (Thumos14/ActivityNet): {40, 80, 160} × {32, 48, 64} × {2, 4, 8}
    /// — 27 configurations. Any [`zeus_video::DataSource`] declares its
    /// family through its profile, so custom corpora plan against one of
    /// these spaces too.
    pub fn for_family(family: ConfigFamily) -> Self {
        match family {
            ConfigFamily::Driving => {
                Self::from_knobs(&[150, 200, 250, 300], &[2, 4, 6, 8], &[1, 2, 4, 8])
            }
            ConfigFamily::Untrimmed => Self::from_knobs(&[40, 80, 160], &[32, 48, 64], &[2, 4, 8]),
        }
    }

    /// Knob settings for a built-in corpus — sugar over
    /// [`ConfigSpace::for_family`].
    pub fn for_dataset(kind: DatasetKind) -> Self {
        Self::for_family(kind.family())
    }

    /// All configurations.
    pub fn configs(&self) -> &[Configuration] {
        &self.configs
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// True when the space is empty.
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Largest resolution knob.
    pub fn max_resolution(&self) -> usize {
        *self.resolutions.iter().max().expect("non-empty")
    }

    /// Largest segment-length knob.
    pub fn max_seg_len(&self) -> usize {
        *self.seg_lens.iter().max().expect("non-empty")
    }

    /// Largest sampling-rate knob.
    pub fn max_sampling(&self) -> usize {
        *self.sampling_rates.iter().max().expect("non-empty")
    }

    /// The most accurate configuration: highest resolution, lowest
    /// sampling rate (§5), with the largest window for context.
    pub fn most_accurate(&self) -> Configuration {
        let min_s = *self.sampling_rates.iter().min().expect("non-empty");
        Configuration::new(self.max_resolution(), self.max_seg_len(), min_s)
    }

    /// The fastest configuration: lowest resolution, largest covered span.
    pub fn fastest(&self, cost: &CostModel) -> Configuration {
        *self
            .configs
            .iter()
            .max_by(|a, b| {
                let fa = cost.sliding_throughput(a.seg_len, a.sampling_rate, a.resolution);
                let fb = cost.sliding_throughput(b.seg_len, b.sampling_rate, b.resolution);
                fa.partial_cmp(&fb).expect("finite throughput")
            })
            .expect("non-empty")
    }

    /// Restrict the space by a knob mask (§6.4 ablation). Panics if the
    /// mask empties the space.
    pub fn masked(&self, mask: KnobMask) -> ConfigSpace {
        let configs: Vec<Configuration> = self
            .configs
            .iter()
            .copied()
            .filter(|c| mask.admits(c))
            .collect();
        assert!(!configs.is_empty(), "knob mask admits no configurations");
        let keep = |values: &[usize], pick: fn(&Configuration) -> usize| -> Vec<usize> {
            values
                .iter()
                .copied()
                .filter(|&v| configs.iter().any(|c| pick(c) == v))
                .collect()
        };
        ConfigSpace {
            resolutions: keep(&self.resolutions, |c| c.resolution),
            seg_lens: keep(&self.seg_lens, |c| c.seg_len),
            sampling_rates: keep(&self.sampling_rates, |c| c.sampling_rate),
            configs,
        }
    }

    /// Keep only the given configurations (e.g., the fast/mid/slow subset
    /// of §6.8). Panics if none survive.
    pub fn restricted_to(&self, keep: &[Configuration]) -> ConfigSpace {
        let configs: Vec<Configuration> = self
            .configs
            .iter()
            .copied()
            .filter(|c| keep.contains(c))
            .collect();
        assert!(!configs.is_empty(), "restriction admits no configurations");
        ConfigSpace {
            resolutions: self.resolutions.clone(),
            seg_lens: self.seg_lens.clone(),
            sampling_rates: self.sampling_rates.clone(),
            configs,
        }
    }

    /// Index of a configuration in this space.
    pub fn index_of(&self, c: Configuration) -> Option<usize> {
        self.configs.iter().position(|&x| x == c)
    }

    /// Normalised fastness α per configuration (§4.4): sliding throughput
    /// scaled so that `Σ α = 1`.
    pub fn alphas(&self, cost: &CostModel) -> Vec<f32> {
        let fps: Vec<f64> = self
            .configs
            .iter()
            .map(|c| cost.sliding_throughput(c.seg_len, c.sampling_rate, c.resolution))
            .collect();
        let total: f64 = fps.iter().sum();
        fps.iter().map(|f| (f / total) as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdd_space_has_64_configs() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        assert_eq!(s.len(), 64, "Table 4: 4x4x4 = 64 configurations");
        assert_eq!(s.max_resolution(), 300);
        assert_eq!(s.max_seg_len(), 8);
        assert_eq!(s.max_sampling(), 8);
    }

    #[test]
    fn thumos_space_has_27_configs() {
        let s = ConfigSpace::for_dataset(DatasetKind::Thumos14);
        assert_eq!(s.len(), 27, "Table 4: 3x3x3 = 27 configurations");
        assert_eq!(s.max_resolution(), 160);
    }

    #[test]
    fn most_accurate_is_high_res_dense() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let c = s.most_accurate();
        assert_eq!(c.resolution, 300);
        assert_eq!(c.sampling_rate, 1);
    }

    #[test]
    fn fastest_maximises_throughput() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let cost = CostModel::default();
        let f = s.fastest(&cost);
        let f_fps = cost.sliding_throughput(f.seg_len, f.sampling_rate, f.resolution);
        for c in s.configs() {
            let fps = cost.sliding_throughput(c.seg_len, c.sampling_rate, c.resolution);
            assert!(fps <= f_fps + 1e-9);
        }
        // Intuition check: fastest = lowest res, biggest span.
        assert_eq!(f.resolution, 150);
        assert_eq!(f.frames_covered(), 64);
    }

    #[test]
    fn alphas_sum_to_one_and_order_by_speed() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let cost = CostModel::default();
        let a = s.alphas(&cost);
        let sum: f32 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "alphas sum to {sum}");
        let fast_idx = s.index_of(s.fastest(&cost)).unwrap();
        let slow_idx = s.index_of(Configuration::new(300, 2, 1)).unwrap();
        assert!(a[fast_idx] > a[slow_idx]);
    }

    #[test]
    fn knob_mask_filters() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let masked = s.masked(KnobMask {
            fix_resolution: Some(300),
            ..KnobMask::none()
        });
        assert_eq!(masked.len(), 16);
        assert!(masked.configs().iter().all(|c| c.resolution == 300));
        // Maxima adjust to the surviving knobs.
        assert_eq!(masked.max_resolution(), 300);
    }

    #[test]
    #[should_panic(expected = "admits no configurations")]
    fn impossible_mask_panics() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let _ = s.masked(KnobMask {
            fix_resolution: Some(999),
            ..KnobMask::none()
        });
    }

    #[test]
    fn restricted_to_subset() {
        let s = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let keep = [Configuration::new(150, 8, 8), Configuration::new(300, 2, 1)];
        let r = s.restricted_to(&keep);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn from_configs_preserves_order() {
        let configs = vec![Configuration::new(300, 2, 1), Configuration::new(150, 8, 8)];
        let s = ConfigSpace::from_configs(configs.clone());
        assert_eq!(s.configs(), configs.as_slice());
        assert_eq!(s.max_resolution(), 300);
        assert_eq!(s.max_seg_len(), 8);
        assert_eq!(s.max_sampling(), 8);
    }

    #[test]
    fn index_of_roundtrip() {
        let s = ConfigSpace::for_dataset(DatasetKind::Thumos14);
        for (i, c) in s.configs().iter().enumerate() {
            assert_eq!(s.index_of(*c), Some(i));
        }
        assert_eq!(s.index_of(Configuration::new(999, 1, 1)), None);
    }
}
