//! The vectorized training plane: one engine that trains the planner's
//! whole candidate portfolio across worker threads and lockstep
//! environments.
//!
//! Zeus spends the bulk of its optimization time training one DQN per
//! candidate reward spec over the video-traversal MDP (§4, Algorithm 1).
//! Episodes over independent videos are embarrassingly parallel, so the
//! engine exploits three independent axes:
//!
//! 1. **Batched inference** — each candidate's rollout steps
//!    `vec_envs` seeded copies of [`VideoTraversalEnv`] in lockstep
//!    ([`zeus_rl::VecEnv`]), selecting all ε-greedy actions with one
//!    `[n, d]` Q-network forward and performing one gradient update per
//!    lockstep round.
//! 2. **Portfolio parallelism** — candidates train concurrently on
//!    `train_workers` threads, each owning one simulated device of a
//!    [`DevicePool`] (the PR-1 hardware abstraction) that accumulates the
//!    candidate's simulated RL-training seconds.
//! 3. **Shared feature cache** — every fork of the prototype environment
//!    routes APFG invocations through one thread-safe
//!    [`zeus_apfg::FeatureCache`], so parallel rollouts never recompute a
//!    ProxyFeature another rollout already produced (§5's pre-processing
//!    optimization applied on-line).
//!
//! **Determinism.** Every candidate's result is a pure function of its
//! [`CandidateJob`] seeds: jobs are claimed from a shared cursor but each
//! trains an independently seeded agent on independently seeded
//! environment forks, so the trained policies are bit-identical
//! regardless of `train_workers`. With `vec_envs = 1` the engine's
//! rollout is bit-identical to the legacy serial [`DqnTrainer::train`]
//! loop under the same seeds (see `tests/training.rs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use zeus_obs::keys;
use zeus_obs::sync::lock_recover;

use zeus_apfg::{FeatureCache, SimulatedApfg};
use zeus_rl::agent::{DqnAgent, DqnConfig, GreedyPolicy};
use zeus_rl::{
    DqnTrainer, Environment, RewardMode, RlError, TrainerConfig, TrainingReport, VecEnv,
};
use zeus_sim::{CostModel, SimDuration};
use zeus_video::video::Split;
use zeus_video::{DataSource, Video};

use crate::config::ConfigSpace;
use crate::env::{EnvError, VideoTraversalEnv};
use crate::metrics::EvalProtocol;
use crate::parallel::DevicePool;

/// Knobs of the vectorized training plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingOptions {
    /// Worker threads for portfolio (per-candidate) training. `0` = one
    /// per available CPU, capped at the candidate count. Any value yields
    /// the same trained policies; this only trades wall-clock for cores.
    pub train_workers: usize,
    /// Lockstep environments per candidate rollout. `1` reproduces the
    /// serial trainer bit-for-bit; larger values batch action selection
    /// and update once per round (more throughput, fewer updates per
    /// environment step).
    pub vec_envs: usize,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            train_workers: 0,
            vec_envs: 1,
        }
    }
}

/// One candidate's fully-seeded training assignment. Everything the
/// outcome depends on is in here — that is what makes the portfolio
/// worker-count independent.
#[derive(Debug, Clone)]
pub struct CandidateJob {
    /// Trainer hyperparameters (reward mode and replay seed included).
    pub trainer: TrainerConfig,
    /// Q-network hyperparameters.
    pub dqn: DqnConfig,
    /// Seed for network initialisation and exploration draws.
    pub dqn_seed: u64,
    /// Base seed for this candidate's environment forks; lockstep env
    /// `j` is seeded with a deterministic mix of this and `j` (env 0
    /// uses the base seed itself, preserving the serial trajectory).
    pub env_seed: u64,
}

impl CandidateJob {
    /// The representative single-candidate job the training benchmark,
    /// the `extension-training` experiment, and the CLI all measure: the
    /// planner's default aggregate reward over the family's evaluation
    /// window, with the planner's seed mixers. `base` supplies every
    /// other trainer knob (episodes, warm-up, batch, cadence), so
    /// callers tune workload size without re-stating the reward shape —
    /// and all surfaces stay measuring the same configuration.
    pub fn representative(
        base: TrainerConfig,
        protocol: EvalProtocol,
        target_accuracy: f64,
        seed: u64,
    ) -> CandidateJob {
        CandidateJob {
            trainer: TrainerConfig {
                reward_mode: RewardMode::Aggregate {
                    target_accuracy,
                    window_frames: protocol.window * 25,
                    eval_window: protocol.window,
                    fastness_bonus: 0.2,
                    fp_penalty: 2.0,
                    deficit_scale: 3.0,
                    local_mix: 0.5,
                    beta: 0.3,
                },
                seed,
                ..base
            },
            dqn: DqnConfig::default(),
            dqn_seed: seed ^ 0xD097,
            env_seed: seed ^ 0x5EED,
        }
    }
}

/// The training-plane prototype environment over `source`'s training
/// split: the source's first query class, the family's full
/// configuration space, and the most-accurate init configuration —
/// what [`bench_training`] and the `extension-training` experiment
/// measure against (a representative slice of what the planner trains
/// per candidate).
pub fn bench_env(source: &dyn DataSource, seed: u64) -> Result<VideoTraversalEnv, EnvError> {
    let classes = vec![source.query_classes()[0]];
    let space = ConfigSpace::for_family(source.family());
    let alphas = space.alphas(&CostModel::default());
    let init = space.most_accurate();
    let apfg = Arc::new(SimulatedApfg::new(
        classes.clone(),
        space.max_resolution(),
        space.max_seg_len(),
        space.max_sampling(),
        seed,
    ));
    let videos: Vec<Video> = source
        .store()
        .split(Split::Train)
        .into_iter()
        .cloned()
        .collect();
    VideoTraversalEnv::new(videos, classes, apfg, space, alphas, init, seed)
}

/// A trained candidate.
#[derive(Debug, Clone)]
pub struct CandidateOutcome {
    /// The frozen greedy policy.
    pub policy: GreedyPolicy,
    /// Training diagnostics.
    pub report: TrainingReport,
}

/// The trained portfolio plus scheduling telemetry.
#[derive(Debug, Clone)]
pub struct PortfolioOutcome {
    /// One outcome per job, in job order.
    pub candidates: Vec<CandidateOutcome>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Per-device simulated RL-training seconds (the Table 6 quantity,
    /// split across the pool).
    pub device_busy_secs: Vec<f64>,
}

/// Simulated RL-training seconds implied by a training run: DQN updates
/// on precomputed features plus policy-head invocations for experience
/// generation (§5; the `rl_training_secs` column of Table 6). Shared by
/// the planner's cost accounting and the engine's device charging.
pub fn rl_training_secs(cost: &CostModel, report: &TrainingReport, batch_size: usize) -> f64 {
    report.updates as f64 * cost.dqn_update(batch_size).as_secs()
        + report.steps as f64 * cost.mlp_head().as_secs() * 2.0
}

/// Deterministic per-lockstep-environment seed: env 0 keeps the base
/// seed (serial trajectory), later envs decorrelate via a fixed odd
/// multiplier.
fn env_fork_seed(base: u64, j: usize) -> u64 {
    base ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The training engine.
#[derive(Debug, Clone, Default)]
pub struct TrainingEngine {
    options: TrainingOptions,
    /// Optional observability hub: candidate/episode/step/update
    /// counters and per-stage span timing. Never consulted by the
    /// training math, so instrumented runs stay bit-identical.
    obs: Option<zeus_obs::ObsHub>,
}

impl TrainingEngine {
    /// An engine with the given knobs (`vec_envs` is clamped to ≥ 1).
    pub fn new(mut options: TrainingOptions) -> Self {
        options.vec_envs = options.vec_envs.max(1);
        TrainingEngine { options, obs: None }
    }

    /// Record training telemetry (`train.*` counters, `candidate` /
    /// `episode` / `batch_forward` / `update` stages) into `obs`.
    pub fn with_obs(mut self, obs: zeus_obs::ObsHub) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The engine's knobs.
    pub fn options(&self) -> TrainingOptions {
        self.options
    }

    /// Worker threads for a portfolio of `jobs` candidates.
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let requested = if self.options.train_workers == 0 {
            auto
        } else {
            self.options.train_workers
        };
        requested.clamp(1, jobs.max(1))
    }

    /// Train one candidate: fork `vec_envs` seeded environments off the
    /// prototype and run the vectorized loop (with one environment this
    /// is bit-identical to the serial loop).
    pub fn train_candidate(
        &self,
        proto: &VideoTraversalEnv,
        job: &CandidateJob,
    ) -> Result<CandidateOutcome, RlError> {
        let agent = DqnAgent::new(
            proto.state_dim(),
            proto.num_actions(),
            job.dqn.clone(),
            job.dqn_seed,
        );
        let mut trainer = DqnTrainer::new(agent, job.trainer.clone());
        let candidate_started = self.obs.as_ref().map(|hub| {
            hub.metrics.counter(keys::TRAIN_CANDIDATES).inc();
            trainer.set_obs(hub.train_obs());
            // zeus-lint: allow(wallclock): telemetry measures real training wall time
            std::time::Instant::now()
        });
        let envs: Vec<Box<dyn Environment + Send>> = (0..self.options.vec_envs)
            .map(|j| {
                Box::new(proto.fork(env_fork_seed(job.env_seed, j))) as Box<dyn Environment + Send>
            })
            .collect();
        let mut venv = VecEnv::new(envs)?;
        let report = trainer.train_vec(&mut venv)?;
        if let (Some(hub), Some(started)) = (&self.obs, candidate_started) {
            hub.tracer.record_stage("candidate", started.elapsed());
        }
        Ok(CandidateOutcome {
            policy: trainer.into_agent().policy(),
            report,
        })
    }

    /// Train a whole candidate portfolio across the worker pool.
    ///
    /// Jobs are claimed from a shared cursor by `effective_workers`
    /// threads; each worker owns one simulated device and charges it the
    /// simulated RL-training seconds of every candidate it trains.
    /// Results come back in job order and are independent of the worker
    /// count.
    pub fn train_portfolio(
        &self,
        proto: &VideoTraversalEnv,
        jobs: &[CandidateJob],
        cost: &CostModel,
    ) -> Result<PortfolioOutcome, RlError> {
        if jobs.is_empty() {
            return Ok(PortfolioOutcome {
                candidates: Vec::new(),
                workers: 0,
                device_busy_secs: Vec::new(),
            });
        }
        let workers = self.effective_workers(jobs.len());
        let mut pool = DevicePool::homogeneous(workers, cost.device().clone());
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<CandidateOutcome, RlError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        crossbeam::thread::scope(|s| {
            for device in pool.devices_mut() {
                let next = &next;
                let results = &results;
                s.spawn(move |_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let outcome = self.train_candidate(proto, job);
                    if let Ok(out) = &outcome {
                        let secs = rl_training_secs(cost, &out.report, job.trainer.batch_size);
                        device.clock_mut().advance(SimDuration::from_secs(secs));
                    }
                    *lock_recover(&results[i]) = Some(outcome);
                });
            }
        })
        .expect("training worker panicked");

        let mut candidates = Vec::with_capacity(jobs.len());
        for slot in results {
            let outcome = slot
                .into_inner()
                .expect("result slot")
                .expect("every job claimed exactly once");
            candidates.push(outcome?);
        }
        let device_busy_secs = pool.busy_secs();
        if let Some(hub) = &self.obs {
            for (i, busy) in device_busy_secs.iter().enumerate() {
                hub.metrics
                    .gauge(&keys::train_device_busy_secs(i))
                    .set(*busy);
            }
        }
        Ok(PortfolioOutcome {
            candidates,
            workers,
            device_busy_secs,
        })
    }
}

/// One measured configuration of the training-throughput benchmark.
#[derive(Debug, Clone)]
pub struct ThroughputSample {
    /// Human-readable row label.
    pub label: String,
    /// Lockstep environments used.
    pub vec_envs: usize,
    /// Environment steps taken.
    pub steps: u64,
    /// Gradient updates performed.
    pub updates: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Environment steps per wall-clock second.
    pub steps_per_sec: f64,
}

/// The training-throughput benchmark: the serial baseline against the
/// vectorized engine at increasing `vec_envs`, plus the fixed-seed
/// equivalence verdict that gates it.
#[derive(Debug, Clone)]
pub struct TrainingBenchReport {
    /// The legacy serial trainer ([`DqnTrainer::train`]).
    pub serial: ThroughputSample,
    /// The engine at each requested `vec_envs` (train_workers = 1, so
    /// rows isolate the vectorization win).
    pub vectorized: Vec<ThroughputSample>,
    /// Whether the engine at `vec_envs = 1` reproduced the serial greedy
    /// policy and report bit-for-bit — the invariant that licenses the
    /// speedup numbers.
    pub equivalent: bool,
    /// Shared feature-cache hit rate of the widest vectorized run (each
    /// run gets its own fresh cache, so this measures within-run reuse
    /// only).
    pub cache_hit_rate: f64,
}

impl TrainingBenchReport {
    /// Speedup of the engine at the largest measured `vec_envs` over the
    /// serial baseline.
    pub fn best_speedup(&self) -> f64 {
        self.vectorized
            .iter()
            .map(|s| s.steps_per_sec / self.serial.steps_per_sec.max(1e-12))
            .fold(0.0, f64::max)
    }

    /// The sample with the largest `vec_envs`.
    pub fn widest(&self) -> &ThroughputSample {
        self.vectorized
            .iter()
            .max_by_key(|s| s.vec_envs)
            .unwrap_or(&self.serial)
    }
}

/// Measure training throughput over `proto` for one candidate job:
/// the legacy serial trainer first, then the engine at each entry of
/// `vec_envs_list` (ascending recommended; the last entry's cache stats
/// are reported). Also verifies the fixed-seed serial-equivalence
/// invariant at `vec_envs = 1`.
///
/// Cache treatment is deliberately asymmetric-but-fair: the serial
/// baseline runs exactly the legacy configuration (no shared feature
/// cache), and every vectorized run gets its *own* fresh cache — so the
/// measured speedup includes only within-run reuse, never warm state
/// left behind by an earlier run. Pass `proto` without a cache attached.
pub fn bench_training(
    proto: &VideoTraversalEnv,
    job: &CandidateJob,
    vec_envs_list: &[usize],
) -> Result<TrainingBenchReport, RlError> {
    // Serial baseline: the legacy loop, scalar forwards, per-step updates.
    let agent = DqnAgent::new(
        proto.state_dim(),
        proto.num_actions(),
        job.dqn.clone(),
        job.dqn_seed,
    );
    let mut trainer = DqnTrainer::new(agent, job.trainer.clone());
    let mut env = proto.fork(job.env_seed);
    // zeus-lint: allow(wallclock): the benchmark's whole point is wall time
    let start = Instant::now();
    let serial_report = trainer.train(&mut env)?;
    let wall = start.elapsed().as_secs_f64();
    let serial_policy = trainer.into_agent().policy().to_bytes();
    let serial = ThroughputSample {
        label: "serial (legacy DqnTrainer)".into(),
        vec_envs: 1,
        steps: serial_report.steps,
        updates: serial_report.updates,
        wall_secs: wall,
        steps_per_sec: serial_report.steps as f64 / wall.max(1e-9),
    };

    // Equivalence gate: the engine at N = 1 must reproduce the serial
    // policy and report bit-for-bit.
    let engine1 = TrainingEngine::new(TrainingOptions {
        train_workers: 1,
        vec_envs: 1,
    });
    let echo = engine1.train_candidate(proto, job)?;
    // bit_eq, not ==: identical NaNs must not fail the gate.
    let equivalent = echo.report.bit_eq(&serial_report) && echo.policy.to_bytes() == serial_policy;

    let mut vectorized = Vec::with_capacity(vec_envs_list.len());
    // The reported rate belongs to the widest run (max vec_envs), which
    // is also the run `widest()`/`best_speedup` describe — not simply
    // the last list entry.
    let mut cache_hit_rate = 0.0;
    let mut widest_n = 0;
    for &n in vec_envs_list {
        let cache = Arc::new(FeatureCache::new());
        let run_proto = proto.fork(job.env_seed).with_cache(Arc::clone(&cache));
        let engine = TrainingEngine::new(TrainingOptions {
            train_workers: 1,
            vec_envs: n,
        });
        // zeus-lint: allow(wallclock): the benchmark's whole point is wall time
        let start = Instant::now();
        let outcome = engine.train_candidate(&run_proto, job)?;
        let wall = start.elapsed().as_secs_f64();
        vectorized.push(ThroughputSample {
            label: format!("vectorized (vec_envs = {n})"),
            vec_envs: n,
            steps: outcome.report.steps,
            updates: outcome.report.updates,
            wall_secs: wall,
            steps_per_sec: outcome.report.steps as f64 / wall.max(1e-9),
        });
        if n >= widest_n {
            widest_n = n;
            cache_hit_rate = cache.hit_rate();
        }
    }

    Ok(TrainingBenchReport {
        serial,
        vectorized,
        equivalent,
        cache_hit_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_apfg::SimulatedApfg;
    use zeus_rl::{EpsilonSchedule, RewardMode};
    use zeus_video::{ActionClass, DatasetKind, Video};

    use crate::config::ConfigSpace;

    fn proto_env(seed: u64) -> VideoTraversalEnv {
        let ds = DatasetKind::Bdd100k.generate(0.02, 3);
        let videos: Vec<Video> = ds.store.videos().to_vec();
        let classes = vec![ActionClass::CrossRight];
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let alphas = space.alphas(&CostModel::default());
        let init = space.most_accurate();
        let apfg = Arc::new(SimulatedApfg::new(
            classes.clone(),
            space.max_resolution(),
            space.max_seg_len(),
            space.max_sampling(),
            seed,
        ));
        VideoTraversalEnv::new(videos, classes, apfg, space, alphas, init, seed)
            .expect("valid corpus")
    }

    fn tiny_job(seed: u64) -> CandidateJob {
        CandidateJob {
            trainer: TrainerConfig {
                episodes: 2,
                replay_capacity: 1_000,
                warmup: 64,
                batch_size: 32,
                update_every: 2,
                epsilon: EpsilonSchedule::new(1.0, 0.1, 400),
                reward_mode: RewardMode::Local { beta: 0.4 },
                stratify: true,
                seed,
            },
            dqn: DqnConfig::default(),
            dqn_seed: seed ^ 0xD097,
            env_seed: seed ^ 0x5EED,
        }
    }

    #[test]
    fn portfolio_is_worker_count_independent() {
        let proto = proto_env(5).with_cache(Arc::new(FeatureCache::new()));
        let jobs: Vec<CandidateJob> = (0..3).map(|i| tiny_job(100 + i)).collect();
        let cost = CostModel::default();
        let run = |workers| {
            TrainingEngine::new(TrainingOptions {
                train_workers: workers,
                vec_envs: 2,
            })
            .train_portfolio(&proto, &jobs, &cost)
            .unwrap()
        };
        let solo = run(1);
        let wide = run(4);
        assert_eq!(solo.workers, 1);
        assert!(wide.workers > 1);
        assert_eq!(solo.candidates.len(), 3);
        for (a, b) in solo.candidates.iter().zip(&wide.candidates) {
            assert_eq!(a.report, b.report, "reports must not depend on workers");
            assert_eq!(a.policy.to_bytes(), b.policy.to_bytes());
        }
        // The simulated training time is conserved across schedules.
        let total = |o: &PortfolioOutcome| o.device_busy_secs.iter().sum::<f64>();
        assert!((total(&solo) - total(&wide)).abs() < 1e-6);
        assert!(total(&solo) > 0.0);
    }

    #[test]
    fn engine_vec1_matches_legacy_serial_trainer() {
        let proto = proto_env(9);
        let job = tiny_job(7);
        let engine = TrainingEngine::new(TrainingOptions {
            train_workers: 1,
            vec_envs: 1,
        });
        let vec_out = engine.train_candidate(&proto, &job).unwrap();

        let agent = DqnAgent::new(
            proto.state_dim(),
            proto.num_actions(),
            job.dqn.clone(),
            job.dqn_seed,
        );
        let mut trainer = DqnTrainer::new(agent, job.trainer.clone());
        let mut env = proto.fork(job.env_seed);
        let serial_report = trainer.train(&mut env).unwrap();
        assert_eq!(vec_out.report, serial_report);
        assert_eq!(
            vec_out.policy.to_bytes(),
            trainer.into_agent().policy().to_bytes()
        );
    }

    #[test]
    fn empty_portfolio_is_a_noop() {
        let proto = proto_env(1);
        let out = TrainingEngine::default()
            .train_portfolio(&proto, &[], &CostModel::default())
            .unwrap();
        assert!(out.candidates.is_empty());
        assert_eq!(out.workers, 0);
    }

    #[test]
    fn bench_reports_equivalence_and_all_rows() {
        let proto = proto_env(3);
        let report = bench_training(&proto, &tiny_job(3), &[1, 2]).unwrap();
        assert!(report.equivalent, "vec_envs = 1 must reproduce serial");
        assert_eq!(report.vectorized.len(), 2);
        assert_eq!(report.widest().vec_envs, 2);
        assert!(report.serial.steps > 0);
        assert!(report.best_speedup() > 0.0);
        assert!(report.cache_hit_rate > 0.0, "replayed forks must hit");
    }
}
