//! The query planner (§4): configuration profiling, static-config
//! selection, RL-agent training with accuracy-aware aggregate rewards, and
//! training-cost accounting.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use zeus_obs::keys;

use zeus_apfg::frame_pp::FramePpModel;
use zeus_apfg::segment_pp::SegmentPpFilter;
use zeus_apfg::{Configuration, FeatureCache, SimulatedApfg};
use zeus_rl::agent::{DqnConfig, GreedyPolicy};
use zeus_rl::{EpsilonSchedule, RewardMode, RlError, TrainerConfig, TrainingReport};
use zeus_sim::{CostModel, DeviceProfile};
use zeus_video::video::Split;
use zeus_video::{DataSource, Video};

use crate::baselines::{ExecutorKind, QueryEngine};
use crate::baselines::{FramePp, SegmentPp, ZeusHeuristic, ZeusRl, ZeusSliding};
use crate::config::{ConfigSpace, KnobMask};
use crate::env::{EnvError, VideoTraversalEnv};
use crate::metrics::EvalProtocol;
use crate::query::{ActionQuery, QueryIr};
use crate::training::{CandidateJob, TrainingEngine, TrainingOptions};

/// Typed planning failures: everything that used to be an `assert!` on
/// planner input is now a variant here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A required dataset split holds no videos at this corpus scale.
    EmptySplit(&'static str),
    /// The (masked) configuration space is empty.
    EmptySpace,
    /// Planner options are unusable (e.g. `max_actions < 2`, no
    /// candidates).
    InvalidOptions(String),
    /// The training environment could not be constructed.
    Env(EnvError),
    /// RL training failed with a typed error (e.g. a degenerate
    /// minibatch configuration).
    Train(RlError),
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::EmptySplit(split) => {
                write!(f, "dataset {split} split is empty; increase --scale")
            }
            PlanError::EmptySpace => write!(f, "configuration space is empty after masking"),
            PlanError::InvalidOptions(s) => write!(f, "invalid planner options: {s}"),
            PlanError::Env(e) => write!(f, "training environment: {e}"),
            PlanError::Train(e) => write!(f, "RL training: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<EnvError> for PlanError {
    fn from(e: EnvError) -> Self {
        PlanError::Env(e)
    }
}

impl From<RlError> for PlanError {
    fn from(e: RlError) -> Self {
        PlanError::Train(e)
    }
}

/// Temporal-IoU threshold of the §2.1 segment criterion (IoU > 0.5),
/// used by the secondary event-level metric.
pub const EVENT_IOU: f64 = 0.5;

/// One candidate in the RL training portfolio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateSpec {
    /// Safety margin over the query target during training.
    pub margin: f64,
    /// λ fastness bonus on action-free windows.
    pub fastness_bonus: f32,
    /// Deficit scale on missed-target windows.
    pub deficit_scale: f32,
    /// Weight of the per-decision Eq. 2 local term (speed pressure).
    pub local_mix: f32,
}

impl CandidateSpec {
    /// The default portfolio: aggressive → conservative.
    pub fn default_portfolio() -> Vec<CandidateSpec> {
        vec![
            CandidateSpec {
                margin: 0.02,
                fastness_bonus: 0.30,
                deficit_scale: 2.0,
                local_mix: 0.5,
            },
            CandidateSpec {
                margin: 0.05,
                fastness_bonus: 0.20,
                deficit_scale: 3.0,
                local_mix: 0.3,
            },
            CandidateSpec {
                margin: 0.05,
                fastness_bonus: 0.08,
                deficit_scale: 5.0,
                local_mix: 0.12,
            },
            CandidateSpec {
                margin: 0.08,
                fastness_bonus: 0.03,
                deficit_scale: 6.0,
                local_mix: 0.04,
            },
        ]
    }
}

/// One row of the configuration cost table (the paper's Table 2): a
/// configuration with its measured throughput and accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigProfile {
    /// The profiled configuration.
    pub config: Configuration,
    /// Sliding-window throughput in fps.
    pub throughput_fps: f64,
    /// F1 achieved by Zeus-Sliding with this configuration on the
    /// validation split.
    pub f1: f64,
    /// Lower confidence bound on the validation F1 (selection de-bias).
    pub f1_lcb: f64,
}

/// Simulated training/inference cost breakdown (the paper's Table 6).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingCosts {
    /// Seconds to fine-tune the (3D) APFG — shared by all Zeus variants.
    pub apfg_training_secs: f64,
    /// Seconds to train Frame-PP's 2D model.
    pub frame_pp_training_secs: f64,
    /// Seconds to train the RL agent (feature replay + DQN updates).
    pub rl_training_secs: f64,
}

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Device the cost model simulates.
    pub device: DeviceProfile,
    /// Knob-disabling mask (§6.4 ablation).
    pub knob_mask: KnobMask,
    /// Reward mode override; `None` = the paper's aggregate reward with
    /// the query's target accuracy.
    pub reward_mode: Option<RewardMode>,
    /// Trainer hyperparameters (episodes, replay, batch...).
    pub trainer: TrainerConfig,
    /// DQN hyperparameters.
    pub dqn: DqnConfig,
    /// Aggregation window as a multiple of the evaluation window.
    pub window_multiple: usize,
    /// Cap on the RL action space after Pareto pruning: the frontier is
    /// thinned to at most this many configurations at roughly geometric
    /// throughput spacing (fastest and most accurate always kept).
    pub max_actions: usize,
    /// Safety margin added to the query target during static-config
    /// selection. Validation-profiled accuracies carry a winner's-curse
    /// bias (the chosen config looks better on validation than on test);
    /// planning against `target + margin` makes the *test* accuracy land
    /// at the target.
    pub target_margin: f64,
    /// The RL candidate portfolio: one agent is trained per spec and the
    /// planner keeps the candidate with the best validation utility
    /// (meets the target at the highest throughput; otherwise highest
    /// F1). Specs range from aggressive (high fastness bonus) to
    /// conservative (accuracy-dominant) so a target-meeting fallback is
    /// always in the pool.
    pub candidates: Vec<CandidateSpec>,
    /// Disable the §5 model-reuse optimization (per-config ensemble).
    pub per_config_ensemble: bool,
    /// Vectorized training plane knobs: portfolio worker threads and
    /// lockstep environments per candidate rollout. Results are
    /// independent of `train_workers`; `vec_envs = 1` (the default)
    /// reproduces the serial training dynamics bit-for-bit.
    pub training: TrainingOptions,
    /// Base seed for the APFG noise process and RL training.
    pub seed: u64,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            device: DeviceProfile::default(),
            knob_mask: KnobMask::none(),
            reward_mode: None,
            trainer: TrainerConfig {
                episodes: 20,
                replay_capacity: 10_000,
                warmup: 512,
                batch_size: 128,
                update_every: 4,
                epsilon: EpsilonSchedule::new(1.0, 0.05, 10_000),
                reward_mode: RewardMode::Local { beta: 0.0 }, // replaced in plan()
                stratify: true,
                seed: 0,
            },
            dqn: DqnConfig::default(),
            window_multiple: 25,
            max_actions: 8,
            target_margin: 0.05,
            candidates: CandidateSpec::default_portfolio(),
            per_config_ensemble: false,
            training: TrainingOptions::default(),
            seed: 7,
        }
    }
}

/// Everything the executor needs to run a query: the trained policy, the
/// chosen static configuration, and the profiling data that justified them.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The planned query.
    pub query: ActionQuery,
    /// The (possibly masked) configuration space.
    pub space: ConfigSpace,
    /// Per-configuration cost metrics (Table 2).
    pub profiles: Vec<ConfigProfile>,
    /// Zeus-Sliding's static configuration: the fastest meeting the
    /// target on validation data.
    pub sliding_config: Configuration,
    /// Maximum validation F1 across configurations (Table 4's ceiling).
    pub max_accuracy: f64,
    /// The trained greedy policy.
    pub policy: GreedyPolicy,
    /// RL training diagnostics.
    pub training_report: TrainingReport,
    /// Simulated training costs (Table 6).
    pub costs: TrainingCosts,
    /// The APFG configured for this query.
    pub apfg: SimulatedApfg,
    /// The initial (most accurate) configuration.
    pub init_config: Configuration,
    /// Evaluation protocol used for profiling.
    pub protocol: EvalProtocol,
}

/// The Zeus query planner bound to one data source (any
/// [`DataSource`] — a generated paper corpus, a `.zds` file, a
/// composite/filtered view).
pub struct QueryPlanner<'a> {
    source: &'a dyn DataSource,
    options: PlannerOptions,
    cost: CostModel,
    obs: Option<zeus_obs::ObsHub>,
}

impl<'a> QueryPlanner<'a> {
    /// Create a planner over a data source.
    pub fn new(source: &'a dyn DataSource, options: PlannerOptions) -> Self {
        let cost = CostModel::new(options.device.clone());
        QueryPlanner {
            source,
            options,
            cost,
            obs: None,
        }
    }

    /// Record planning/training telemetry (`train.*` counters, feature
    /// cache hit/miss, per-stage spans) into `obs`.
    pub fn with_obs(mut self, obs: zeus_obs::ObsHub) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Build the query-specific APFG.
    pub fn build_apfg(&self, query: &ActionQuery, space: &ConfigSpace) -> SimulatedApfg {
        SimulatedApfg::new(
            query.classes.clone(),
            space.max_resolution(),
            space.max_seg_len(),
            space.max_sampling(),
            self.options.seed,
        )
        .with_model_reuse(!self.options.per_config_ensemble)
    }

    /// Profile every configuration with Zeus-Sliding on the validation
    /// split (§4.2's one-time pre-processing step; regenerates Table 2).
    pub fn profile_configurations(
        &self,
        query: &ActionQuery,
        space: &ConfigSpace,
        apfg: &SimulatedApfg,
    ) -> Vec<ConfigProfile> {
        let protocol = EvalProtocol::for_family(self.source.family());
        let validation = self.source.store().split(Split::Validation);
        assert!(!validation.is_empty(), "validation split is empty");
        space
            .configs()
            .iter()
            .map(|&config| {
                let engine = ZeusSliding::new(apfg.clone(), config, self.cost.clone());
                let exec = engine.execute(&validation);
                let report = exec.evaluate(&validation, &query.classes, protocol);
                ConfigProfile {
                    config,
                    throughput_fps: exec.throughput(),
                    f1: report.f1(),
                    f1_lcb: report.f1_lower_bound(1.0),
                }
            })
            .collect()
    }

    /// The fastest configuration meeting the target accuracy; falls back
    /// to the most accurate configuration when none qualifies (§4.2).
    pub fn select_sliding_config(profiles: &[ConfigProfile], target: f64) -> Configuration {
        Self::select_sliding_config_bounded(profiles, target, None).expect("non-empty profile list")
    }

    /// Static-configuration selection with an optional throughput floor
    /// (derived from a ZQL `latency_budget`). Preference order:
    ///
    /// 1. fastest configuration meeting the accuracy target *and* the
    ///    floor;
    /// 2. most accurate configuration meeting the floor (budget kept,
    ///    accuracy best-effort);
    /// 3. with a floor set: the fastest configuration outright (closest
    ///    to the budget); without: the most accurate (§4.2 fallback).
    ///
    /// Returns `None` only for an empty profile list.
    pub fn select_sliding_config_bounded(
        profiles: &[ConfigProfile],
        target: f64,
        min_fps: Option<f64>,
    ) -> Option<Configuration> {
        let floor = min_fps.unwrap_or(0.0);
        profiles
            .iter()
            .filter(|p| p.f1_lcb >= target && p.throughput_fps >= floor)
            .max_by(|a, b| a.throughput_fps.total_cmp(&b.throughput_fps))
            .or_else(|| {
                profiles
                    .iter()
                    .filter(|p| p.throughput_fps >= floor)
                    .max_by(|a, b| a.f1.total_cmp(&b.f1))
            })
            .or_else(|| {
                if min_fps.is_some() {
                    profiles
                        .iter()
                        .max_by(|a, b| a.throughput_fps.total_cmp(&b.throughput_fps))
                } else {
                    profiles.iter().max_by(|a, b| a.f1.total_cmp(&b.f1))
                }
            })
            .map(|p| p.config)
    }

    /// The Pareto frontier of the profiled configurations: a configuration
    /// survives unless some other configuration is at least as fast *and*
    /// at least as accurate (strictly better in one dimension). This is
    /// part of the §4.2 configuration-planning step ("the query planner
    /// first collects the appropriate settings for all of the knobs"):
    /// dominated configurations can never appear in an optimal policy, and
    /// pruning them keeps the RL action space tractable.
    pub fn pareto_frontier(profiles: &[ConfigProfile]) -> Vec<ConfigProfile> {
        let mut frontier: Vec<ConfigProfile> = profiles
            .iter()
            .filter(|p| {
                !profiles.iter().any(|q| {
                    (q.throughput_fps >= p.throughput_fps && q.f1 > p.f1)
                        || (q.throughput_fps > p.throughput_fps && q.f1 >= p.f1)
                })
            })
            .copied()
            .collect();
        frontier.sort_by(|a, b| a.throughput_fps.total_cmp(&b.throughput_fps));
        frontier.dedup_by(|a, b| a.config == b.config);
        frontier
    }

    /// Thin a (throughput-sorted) frontier to at most `max_actions`
    /// configurations at roughly geometric throughput spacing, always
    /// keeping the slowest (most accurate) and fastest ends.
    pub fn thin_frontier(frontier: Vec<ConfigProfile>, max_actions: usize) -> Vec<ConfigProfile> {
        assert!(max_actions >= 2, "need at least two actions");
        if frontier.len() <= max_actions {
            return frontier;
        }
        let lo = frontier.first().expect("non-empty").throughput_fps.ln();
        let hi = frontier.last().expect("non-empty").throughput_fps.ln();
        let mut picked: Vec<ConfigProfile> = Vec::with_capacity(max_actions);
        for i in 0..max_actions {
            let t = lo + (hi - lo) * i as f64 / (max_actions - 1) as f64;
            let best = frontier
                .iter()
                .min_by(|a, b| {
                    (a.throughput_fps.ln() - t)
                        .abs()
                        .total_cmp(&(b.throughput_fps.ln() - t).abs())
                })
                .expect("non-empty");
            if !picked.iter().any(|p| p.config == best.config) {
                picked.push(*best);
            }
        }
        picked.sort_by(|a, b| a.throughput_fps.total_cmp(&b.throughput_fps));
        picked
    }

    /// Plan a query end-to-end: profile, select, train (Algorithm 1 + 2).
    ///
    /// Convenience wrapper over [`QueryPlanner::try_plan`] that panics on
    /// planner-input errors; prefer `try_plan` (or the `zeus-api` session
    /// layer) in fallible contexts.
    pub fn plan(&self, query: &ActionQuery) -> QueryPlan {
        self.try_plan(query).expect("plannable query")
    }

    /// Plan a query end-to-end, returning a typed error instead of
    /// panicking on unusable options or an empty corpus.
    pub fn try_plan(&self, query: &ActionQuery) -> Result<QueryPlan, PlanError> {
        self.plan_inner(query, None)
    }

    /// Plan an extended-ZQL query: the IR's `latency_budget` is compiled
    /// into a throughput floor for static-configuration selection (the
    /// corpus must be traversable within the budget), so a tighter budget
    /// selects a faster sliding configuration.
    pub fn try_plan_ir(&self, ir: &QueryIr) -> Result<QueryPlan, PlanError> {
        self.plan_inner(&ir.base, self.budget_min_fps(ir))
    }

    /// The throughput floor (fps) implied by an IR's `latency_budget`
    /// over this planner's test corpus: the whole test split must be
    /// traversable within the budget. `None` when the IR carries no
    /// budget. Shared by [`QueryPlanner::try_plan_ir`] and the session
    /// layer's per-query sliding-config re-selection.
    pub fn budget_min_fps(&self, ir: &QueryIr) -> Option<f64> {
        ir.latency_budget_ms.map(|ms| {
            let frames: u64 = self
                .source
                .store()
                .split(Split::Test)
                .iter()
                .map(|v| v.num_frames as u64)
                .sum();
            frames as f64 / (ms / 1e3)
        })
    }

    fn plan_inner(
        &self,
        query: &ActionQuery,
        min_fps: Option<f64>,
    ) -> Result<QueryPlan, PlanError> {
        if self.options.max_actions < 2 {
            return Err(PlanError::InvalidOptions(format!(
                "max_actions must be at least 2, got {}",
                self.options.max_actions
            )));
        }
        if self.options.candidates.is_empty() {
            return Err(PlanError::InvalidOptions(
                "candidate portfolio is empty".into(),
            ));
        }
        let space = ConfigSpace::for_family(self.source.family()).masked(self.options.knob_mask);
        if space.is_empty() {
            return Err(PlanError::EmptySpace);
        }
        if self.source.store().split(Split::Validation).is_empty() {
            return Err(PlanError::EmptySplit("validation"));
        }
        if self.source.store().split(Split::Train).is_empty() {
            return Err(PlanError::EmptySplit("train"));
        }
        let apfg = self.build_apfg(query, &space);
        let protocol = EvalProtocol::for_family(self.source.family());

        // 1. Configuration cost metrics (Table 2).
        let profiles = self.profile_configurations(query, &space, &apfg);
        let max_accuracy = profiles.iter().map(|p| p.f1).fold(0.0, f64::max);

        // 2. Zeus-Sliding's static configuration (LCB selection absorbs
        // the winner's-curse bias of maximising over 27-64 configs). A
        // latency budget adds a throughput floor.
        let sliding_config =
            Self::select_sliding_config_bounded(&profiles, query.target_accuracy, min_fps)
                .ok_or(PlanError::EmptySpace)?;

        // 2b. Configuration planning: the agent acts over the Pareto
        // frontier of the profiled space.
        let frontier =
            Self::thin_frontier(Self::pareto_frontier(&profiles), self.options.max_actions);
        let frontier_configs: Vec<Configuration> = frontier.iter().map(|p| p.config).collect();
        let exec_space = space.restricted_to(&frontier_configs);

        // 3. Train the RL candidate portfolio on the training split —
        // vectorized: candidates are scheduled across the training
        // engine's device-pool workers, and each candidate's rollout
        // steps `vec_envs` seeded environment forks in lockstep. A
        // shared feature cache deduplicates APFG invocations across all
        // of them (§5's pre-processing optimization applied on-line).
        let train_videos: Vec<Video> = self
            .source
            .store()
            .split(Split::Train)
            .into_iter()
            .cloned()
            .collect();
        let alphas = exec_space.alphas(&self.cost);
        // β of Eq. 2: the mean fastness divides the space into fast/slow.
        let beta_cutoff = alphas.iter().sum::<f32>() / alphas.len().max(1) as f32;
        let init_config = exec_space.most_accurate();
        let proto = VideoTraversalEnv::new(
            train_videos,
            query.classes.clone(),
            Arc::new(apfg.clone()),
            exec_space.clone(),
            alphas,
            init_config,
            self.options.seed ^ 0x5EED,
        )?
        .with_cache(Arc::new(FeatureCache::new()));

        // A small portfolio of candidate reward specs against the target
        // plus varying safety margins — but never beyond what the profiled
        // space can achieve (an unreachable target turns every action
        // window into a sunk cost and the agent learns to ignore actions).
        // Every candidate is fully seeded by its job, so the trained
        // policies are bit-identical regardless of worker count.
        let jobs: Vec<CandidateJob> = self
            .options
            .candidates
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let train_target = (query.target_accuracy + spec.margin)
                    .min(max_accuracy - 0.02)
                    .max(0.3);
                let reward_mode = self.options.reward_mode.unwrap_or(RewardMode::Aggregate {
                    target_accuracy: train_target,
                    window_frames: protocol.window * self.options.window_multiple,
                    eval_window: protocol.window,
                    fastness_bonus: spec.fastness_bonus,
                    fp_penalty: 2.0,
                    deficit_scale: spec.deficit_scale,
                    local_mix: spec.local_mix,
                    beta: beta_cutoff,
                });
                let mut trainer_cfg = self.options.trainer.clone();
                trainer_cfg.reward_mode = reward_mode;
                trainer_cfg.seed = self.options.seed ^ (0xA9E17 + i as u64 * 0x9E37);
                CandidateJob {
                    trainer: trainer_cfg,
                    dqn: self.options.dqn.clone(),
                    dqn_seed: self.options.seed ^ (0xD097 + i as u64 * 0x51F3),
                    env_seed: self.options.seed
                        ^ 0x5EED
                        ^ (i as u64).wrapping_mul(0xE14D_00B5_D5B5_C9E3),
                }
            })
            .collect();
        let mut engine = TrainingEngine::new(self.options.training);
        if let Some(hub) = &self.obs {
            engine = engine.with_obs(hub.clone());
        }
        let portfolio = engine.train_portfolio(&proto, &jobs, &self.cost)?;
        if let (Some(hub), Some(cache)) = (&self.obs, proto.cache()) {
            // The feature cache keeps its own atomic tallies; fold them
            // into the shared namespace once per planning run.
            hub.metrics
                .counter(keys::CACHE_FEATURE_HIT)
                .add(cache.hits());
            hub.metrics
                .counter(keys::CACHE_FEATURE_MISS)
                .add(cache.misses());
        }

        // The planner then selects by validation utility: among candidates
        // meeting the target, the fastest; otherwise the most accurate.
        // This is the planner-side counterpart of the paper's claim that
        // Zeus "consistently meets the user-specified accuracy target".
        let validation: Vec<&Video> = self.source.store().split(Split::Validation);
        let mut best: Option<(usize, f64, f64)> = None;
        for (i, outcome) in portfolio.candidates.iter().enumerate() {
            // Validation utility of this candidate.
            let engine = ZeusRl::new(
                apfg.clone(),
                outcome.policy.clone(),
                exec_space.clone(),
                init_config,
                self.cost.clone(),
            );
            let exec = engine.execute(&validation);
            let val_report = exec.evaluate(&validation, &query.classes, protocol);
            let f1 = val_report.f1_lower_bound(1.0);
            let fps = exec.throughput();
            if std::env::var_os("ZEUS_DEBUG_CANDIDATES").is_some() {
                let spec = &self.options.candidates[i];
                eprintln!(
                    "  candidate {i} (margin {:.2} bonus {:.2} deficit {:.1}): val F1 {f1:.3} @ {fps:.0} fps",
                    spec.margin, spec.fastness_bonus, spec.deficit_scale
                );
            }
            let better = match &best {
                None => true,
                Some((_, bf1, bfps)) => {
                    let meets = f1 >= query.target_accuracy;
                    let best_meets = *bf1 >= query.target_accuracy;
                    match (meets, best_meets) {
                        (true, true) => fps > *bfps,
                        (true, false) => true,
                        (false, true) => false,
                        (false, false) => f1 > *bf1,
                    }
                }
            };
            if better {
                best = Some((i, f1, fps));
            }
        }
        let (chosen, _, _) = best.expect("at least one candidate");
        let policy = portfolio.candidates[chosen].policy.clone();
        let training_report = portfolio.candidates[chosen].report.clone();

        // 4. Simulated training costs (Table 6).
        let costs = self.training_costs(&space, &training_report, &jobs[chosen].trainer);

        Ok(QueryPlan {
            query: query.clone(),
            space: exec_space,
            profiles,
            sliding_config,
            max_accuracy,
            policy,
            training_report,
            costs,
            apfg,
            init_config,
            protocol,
        })
    }

    /// Simulated training-cost model (Table 6).
    ///
    /// * APFG fine-tuning: `APFG_TRAIN_SAMPLES` balanced segments, one
    ///   pass, at the most accurate configuration — ≈247 s on the
    ///   calibrated GPU for BDD100K, matching the paper's Table 6.
    ///   A per-configuration ensemble (§5 alternative) multiplies this by
    ///   the number of distinct (resolution, length) pairs.
    /// * Frame-PP: `FRAME_PP_TRAIN_SAMPLES` frames through the 2D model —
    ///   ≈102 s, matching Table 6.
    /// * RL training: DQN updates on precomputed features (§5) plus
    ///   policy-head invocations for experience generation.
    pub fn training_costs(
        &self,
        space: &ConfigSpace,
        report: &TrainingReport,
        trainer_cfg: &TrainerConfig,
    ) -> TrainingCosts {
        /// Balanced fine-tuning segments (calibrated to Table 6's 247.57 s).
        const APFG_TRAIN_SAMPLES: f64 = 1300.0;
        /// Frame-PP training frames (calibrated to Table 6's 101.81 s).
        const FRAME_PP_TRAIN_SAMPLES: f64 = 3840.0;

        let best = space.most_accurate();
        let apfg_pass = self
            .cost
            .r3d_training_pass(best.seg_len, best.resolution)
            .as_secs();
        let ensemble_factor = if self.options.per_config_ensemble {
            // One model per distinct (resolution, segment length) pair.
            let mut pairs: Vec<(usize, usize)> = space
                .configs()
                .iter()
                .map(|c| (c.resolution, c.seg_len))
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            pairs.len() as f64
        } else {
            1.0
        };
        let apfg_training_secs = APFG_TRAIN_SAMPLES * apfg_pass * ensemble_factor;

        let frame_pass = self
            .cost
            .cnn2d_training_pass(space.max_resolution())
            .as_secs();
        let frame_pp_training_secs = FRAME_PP_TRAIN_SAMPLES * frame_pass;

        TrainingCosts {
            apfg_training_secs,
            frame_pp_training_secs,
            rl_training_secs: crate::training::rl_training_secs(
                &self.cost,
                report,
                trainer_cfg.batch_size,
            ),
        }
    }

    /// Construct the full engine set for a plan (§6.1's five techniques).
    /// The heuristic subset is derived from the profiles: fastest config,
    /// the most accurate, and the config closest to their geometric-mean
    /// throughput.
    pub fn build_engines(&self, plan: &QueryPlan) -> EngineSet {
        EngineSet {
            frame_pp: self.frame_pp_engine(plan),
            segment_pp: self.segment_pp_engine(plan),
            sliding: self.sliding_engine(plan),
            heuristic: self.heuristic_engine(plan),
            zeus_rl: self.zeus_rl_engine(plan),
        }
    }

    /// Construct only the engine for `kind` (the session layer's path:
    /// one query runs one engine, so the other four are never built).
    pub fn build_engine(
        &self,
        plan: &QueryPlan,
        kind: ExecutorKind,
    ) -> Box<dyn QueryEngine + Send + Sync> {
        match kind {
            ExecutorKind::FramePp => Box::new(self.frame_pp_engine(plan)),
            ExecutorKind::SegmentPp => Box::new(self.segment_pp_engine(plan)),
            ExecutorKind::ZeusSliding => Box::new(self.sliding_engine(plan)),
            ExecutorKind::ZeusHeuristic => Box::new(self.heuristic_engine(plan)),
            ExecutorKind::ZeusRl => Box::new(self.zeus_rl_engine(plan)),
        }
    }

    fn frame_pp_engine(&self, plan: &QueryPlan) -> FramePp {
        FramePp::new(
            FramePpModel::new(
                plan.query.classes.clone(),
                plan.space.max_resolution(),
                self.options.seed ^ 0xF2,
            ),
            self.cost.clone(),
        )
    }

    fn segment_pp_engine(&self, plan: &QueryPlan) -> SegmentPp {
        SegmentPp::new(
            SegmentPpFilter::new(plan.query.classes.clone(), self.options.seed ^ 0x51),
            plan.apfg.clone(),
            plan.init_config,
            self.cost.clone(),
        )
    }

    fn sliding_engine(&self, plan: &QueryPlan) -> ZeusSliding {
        ZeusSliding::new(plan.apfg.clone(), plan.sliding_config, self.cost.clone())
    }

    fn heuristic_engine(&self, plan: &QueryPlan) -> ZeusHeuristic {
        // §6.1: Zeus-Heuristic operates on "a subset of configurations
        // that are used by Zeus-RL" — draw fast/mid/slow from the plan's
        // (Pareto) action space, not the full knob cross-product.
        let rl_profiles: Vec<ConfigProfile> = plan
            .profiles
            .iter()
            .filter(|p| plan.space.index_of(p.config).is_some())
            .copied()
            .collect();
        let (fast, mid, slow) = heuristic_subset(&rl_profiles);
        ZeusHeuristic::new(plan.apfg.clone(), fast, mid, slow, self.cost.clone())
    }

    fn zeus_rl_engine(&self, plan: &QueryPlan) -> ZeusRl {
        ZeusRl::new(
            plan.apfg.clone(),
            plan.policy.clone(),
            plan.space.clone(),
            plan.init_config,
            self.cost.clone(),
        )
    }
}

/// Pick the (fast, mid, slow) heuristic subset from profiles.
pub fn heuristic_subset(
    profiles: &[ConfigProfile],
) -> (Configuration, Configuration, Configuration) {
    assert!(!profiles.is_empty(), "need profiles");
    let fast = profiles
        .iter()
        .max_by(|a, b| a.throughput_fps.total_cmp(&b.throughput_fps))
        .expect("non-empty");
    let slow = profiles
        .iter()
        .max_by(|a, b| a.f1.total_cmp(&b.f1))
        .expect("non-empty");
    let target_fps = (fast.throughput_fps * slow.throughput_fps).sqrt();
    let mid = profiles
        .iter()
        .min_by(|a, b| {
            (a.throughput_fps - target_fps)
                .abs()
                .total_cmp(&(b.throughput_fps - target_fps).abs())
        })
        .expect("non-empty");
    (fast.config, mid.config, slow.config)
}

/// One engine per §6.1 technique, built from a single plan.
pub struct EngineSet {
    /// Frame-level probabilistic predicates.
    pub frame_pp: FramePp,
    /// Lightweight filter cascade.
    pub segment_pp: SegmentPp,
    /// Static sliding window.
    pub sliding: ZeusSliding,
    /// Rule-based adaptive.
    pub heuristic: ZeusHeuristic,
    /// The system.
    pub zeus_rl: ZeusRl,
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionClass, DatasetKind};

    fn profiles() -> Vec<ConfigProfile> {
        vec![
            ConfigProfile {
                config: Configuration::new(150, 4, 8),
                throughput_fps: 1282.0,
                f1: 0.57,
                f1_lcb: 0.57,
            },
            ConfigProfile {
                config: Configuration::new(200, 4, 4),
                throughput_fps: 553.0,
                f1: 0.82,
                f1_lcb: 0.82,
            },
            ConfigProfile {
                config: Configuration::new(250, 6, 2),
                throughput_fps: 285.0,
                f1: 0.86,
                f1_lcb: 0.86,
            },
            ConfigProfile {
                config: Configuration::new(300, 6, 1),
                throughput_fps: 115.0,
                f1: 0.91,
                f1_lcb: 0.91,
            },
        ]
    }

    #[test]
    fn sliding_selection_picks_fastest_meeting_target() {
        // Table 2 + §4.2: at target 0.85 the right choice is (250, 6, 2).
        let c = QueryPlanner::select_sliding_config(&profiles(), 0.85);
        assert_eq!(c, Configuration::new(250, 6, 2));
        // At 0.80 the faster (200, 4, 4) qualifies.
        let c = QueryPlanner::select_sliding_config(&profiles(), 0.80);
        assert_eq!(c, Configuration::new(200, 4, 4));
    }

    #[test]
    fn sliding_selection_falls_back_to_most_accurate() {
        let c = QueryPlanner::select_sliding_config(&profiles(), 0.99);
        assert_eq!(c, Configuration::new(300, 6, 1));
    }

    #[test]
    fn latency_budget_floor_alters_sliding_selection() {
        // Without a floor, target 0.85 selects (250, 6, 2) at 285 fps.
        let unbounded =
            QueryPlanner::select_sliding_config_bounded(&profiles(), 0.85, None).unwrap();
        assert_eq!(unbounded, Configuration::new(250, 6, 2));
        // A floor of 400 fps rules that config out: the budget keeps the
        // most accurate config that is fast enough, (200, 4, 4).
        let bounded =
            QueryPlanner::select_sliding_config_bounded(&profiles(), 0.85, Some(400.0)).unwrap();
        assert_eq!(bounded, Configuration::new(200, 4, 4));
        // An unsatisfiable floor degrades to the fastest config outright.
        let extreme =
            QueryPlanner::select_sliding_config_bounded(&profiles(), 0.85, Some(10_000.0)).unwrap();
        assert_eq!(extreme, Configuration::new(150, 4, 8));
        assert!(QueryPlanner::select_sliding_config_bounded(&[], 0.85, None).is_none());
    }

    #[test]
    fn heuristic_subset_spans_the_space() {
        let (fast, mid, slow) = heuristic_subset(&profiles());
        assert_eq!(fast, Configuration::new(150, 4, 8));
        assert_eq!(slow, Configuration::new(300, 6, 1));
        // Geometric mean of 1282 and 115 ≈ 384 → closest is 285 or 553;
        // 285 is 99 away, 553 is 169 away → (250, 6, 2).
        assert_eq!(mid, Configuration::new(250, 6, 2));
    }

    #[test]
    fn plan_smoke_test_on_tiny_corpus() {
        let ds = DatasetKind::Bdd100k.generate(0.05, 11);
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.trainer.epsilon = EpsilonSchedule::new(1.0, 0.1, 500);
        let planner = QueryPlanner::new(&ds, options);
        let query = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();
        let plan = planner.try_plan(&query).unwrap();

        assert_eq!(plan.profiles.len(), 64);
        assert!(plan.max_accuracy > 0.0);
        assert!(plan.costs.apfg_training_secs > 0.0);
        assert!(plan.costs.rl_training_secs > 0.0);
        // The trained policy must be usable.
        let a = plan.policy.act(&[0.0; zeus_apfg::FEATURE_DIM]);
        assert!(a < plan.space.len());
    }

    #[test]
    fn try_plan_ir_budget_selects_faster_sliding_config() {
        let ds = DatasetKind::Bdd100k.generate(0.05, 11);
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let planner = QueryPlanner::new(&ds, options);
        let base = ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap();

        let unbudgeted = planner.try_plan(&base).unwrap();
        let mut ir = QueryIr::from_query(base);
        // 1 ms for the whole corpus: the floor is unreachable, so the
        // planner degrades to the profiled-fastest configuration.
        ir.latency_budget_ms = Some(1.0);
        assert!(planner.budget_min_fps(&ir).unwrap() > 1e6);
        let budgeted = planner.try_plan_ir(&ir).unwrap();

        let fps = |plan: &QueryPlan, c: Configuration| {
            plan.profiles
                .iter()
                .find(|p| p.config == c)
                .expect("profiled config")
                .throughput_fps
        };
        let max_fps = budgeted
            .profiles
            .iter()
            .map(|p| p.throughput_fps)
            .fold(0.0, f64::max);
        assert_eq!(fps(&budgeted, budgeted.sliding_config), max_fps);
        assert!(
            fps(&budgeted, budgeted.sliding_config) >= fps(&unbudgeted, unbudgeted.sliding_config)
        );
    }

    #[test]
    fn apfg_training_cost_matches_table6_scale() {
        // Table 6: APFG training 247.57 s, Frame-PP training 101.81 s.
        let ds = DatasetKind::Bdd100k.generate(0.05, 11);
        let planner = QueryPlanner::new(&ds, PlannerOptions::default());
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let report = TrainingReport::default();
        let costs = planner.training_costs(&space, &report, &TrainerConfig::default());
        assert!(
            (costs.apfg_training_secs - 247.57).abs() / 247.57 < 0.15,
            "APFG training {} s vs paper 247.57 s",
            costs.apfg_training_secs
        );
        assert!(
            (costs.frame_pp_training_secs - 101.81).abs() / 101.81 < 0.15,
            "Frame-PP training {} s vs paper 101.81 s",
            costs.frame_pp_training_secs
        );
    }

    #[test]
    fn ensemble_training_is_much_costlier() {
        let ds = DatasetKind::Bdd100k.generate(0.05, 11);
        let opts = PlannerOptions {
            per_config_ensemble: true,
            ..PlannerOptions::default()
        };
        let planner = QueryPlanner::new(&ds, opts);
        let space = ConfigSpace::for_dataset(DatasetKind::Bdd100k);
        let report = TrainingReport::default();
        let ens = planner.training_costs(&space, &report, &TrainerConfig::default());
        let planner1 = QueryPlanner::new(&ds, PlannerOptions::default());
        let single = planner1.training_costs(&space, &report, &TrainerConfig::default());
        // 16 (resolution, length) pairs on BDD.
        assert!(
            (ens.apfg_training_secs / single.apfg_training_secs - 16.0).abs() < 1e-6,
            "ensemble factor should be 16"
        );
    }
}
