//! Fully-connected (dense) layer with manual backprop.

use rand::Rng;

use crate::init;
use crate::param::Param;
use crate::tensor::Tensor;

/// A dense layer computing `Y = X W + b` over 2-D batches `[batch, in]`.
///
/// The layer caches its input during [`Linear::forward`] so that
/// [`Linear::backward`] can compute `dW = X^T dY` without the caller
/// re-supplying activations — the same contract PyTorch modules provide.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, row-major `[in_dim, out_dim]`.
    pub w: Param,
    /// Bias vector `[out_dim]`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Create a layer with He-normal weights (suited to the ReLU MLPs Zeus
    /// uses) and zero bias.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = Param::new(init::he_normal(in_dim, in_dim * out_dim, rng));
        let b = Param::zeros(out_dim);
        Linear {
            w,
            b,
            in_dim,
            out_dim,
            cached_input: None,
        }
    }

    /// Create a layer with Xavier-uniform weights (used by output heads
    /// where activations are linear).
    pub fn new_xavier(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = Param::new(init::xavier_uniform(in_dim, out_dim, rng));
        let b = Param::zeros(out_dim);
        Linear {
            w,
            b,
            in_dim,
            out_dim,
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn weight_tensor(&self) -> Tensor {
        Tensor::from_vec(&[self.in_dim, self.out_dim], self.w.value.clone())
    }

    /// Forward pass, caching the input for the subsequent backward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects [batch, features]");
        assert_eq!(
            x.shape()[1],
            self.in_dim,
            "input features {} != layer in_dim {}",
            x.shape()[1],
            self.in_dim
        );
        let w = self.weight_tensor();
        let bias = Tensor::vector(self.b.value.clone());
        let y = x.matmul(&w).add_row_broadcast(&bias);
        self.cached_input = Some(x.clone());
        y
    }

    /// Inference-only forward pass that does not cache the input.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.ndim(), 2, "Linear expects [batch, features]");
        let w = self.weight_tensor();
        let bias = Tensor::vector(self.b.value.clone());
        x.matmul(&w).add_row_broadcast(&bias)
    }

    /// Backward pass: accumulate `dW`, `db` and return `dX`.
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_out.shape()[0], x.shape()[0], "batch mismatch");
        assert_eq!(grad_out.shape()[1], self.out_dim, "grad width mismatch");

        // dW = X^T dY  (fused, no transpose materialisation)
        let dw = x.matmul_tn(grad_out);
        self.w.accumulate(dw.data());
        // db = column sums of dY
        let db = grad_out.sum_rows();
        self.b.accumulate(db.data());
        // dX = dY W^T (matmul_nt multiplies by the transpose of its argument)
        let w = self.weight_tensor();
        grad_out.matmul_nt(&w)
    }

    /// Mutable references to this layer's parameters (weights then bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixed_layer() -> Linear {
        // 2 -> 3 layer with hand-set weights for exact checks.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut l = Linear::new(2, 3, &mut rng);
        l.w.value = vec![
            1.0, 2.0, 3.0, // row for input dim 0
            4.0, 5.0, 6.0, // row for input dim 1
        ];
        l.b.value = vec![0.1, 0.2, 0.3];
        l
    }

    #[test]
    fn forward_hand_computed() {
        let mut l = fixed_layer();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let y = l.forward(&x);
        // y = [1*1+2*4+0.1, 1*2+2*5+0.2, 1*3+2*6+0.3] = [9.1, 12.2, 15.3]
        assert_eq!(y.shape(), &[1, 3]);
        let want = [9.1, 12.2, 15.3];
        for (a, b) in y.data().iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_gradients_hand_computed() {
        let mut l = fixed_layer();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let _ = l.forward(&x);
        let dy = Tensor::from_vec(&[1, 3], vec![1.0, 1.0, 1.0]);
        let dx = l.backward(&dy);
        // dW = x^T dy = [[1,1,1],[2,2,2]]
        assert_eq!(l.w.grad, vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        // db = dy
        assert_eq!(l.b.grad, vec![1.0, 1.0, 1.0]);
        // dX = dy W^T = [1+2+3, 4+5+6] = [6, 15]
        assert_eq!(dx.data(), &[6.0, 15.0]);
    }

    #[test]
    fn backward_numerical_gradient_check() {
        // Finite-difference check of dL/dW for L = sum(forward(x)).
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut l = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);

        let _ = l.forward(&x);
        let dy = Tensor::full(&[2, 2], 1.0);
        let _ = l.backward(&dy);
        let analytic = l.w.grad.clone();

        let eps = 1e-3f32;
        // Index-based: the loop both perturbs `l.w.value[i]` and reads
        // `analytic[i]`, which an iterator cannot borrow simultaneously.
        #[allow(clippy::needless_range_loop)]
        for i in 0..l.w.value.len() {
            let orig = l.w.value[i];
            l.w.value[i] = orig + eps;
            let up = l.forward_inference(&x).sum();
            l.w.value[i] = orig - eps;
            let down = l.forward_inference(&x).sum();
            l.w.value[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-2,
                "weight {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_without_forward_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut l = Linear::new(2, 2, &mut rng);
        let dy = Tensor::zeros(&[1, 2]);
        let _ = l.backward(&dy);
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut l = fixed_layer();
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 0.0]);
        let dy = Tensor::from_vec(&[1, 3], vec![1.0, 0.0, 0.0]);
        let _ = l.forward(&x);
        let _ = l.backward(&dy);
        let _ = l.forward(&x);
        let _ = l.backward(&dy);
        assert_eq!(l.w.grad[0], 2.0, "two backward passes should accumulate");
    }
}
