//! Multi-layer perceptron with manual backprop.
//!
//! Zeus's DQN model "is a Multi-layer Perceptron (MLP) with 3 fully-connected
//! layers" (§5). [`Mlp`] composes [`Linear`] layers with a shared hidden
//! activation and an identity output, exactly the shape the Q-network needs:
//! proxy-feature in, one Q-value per configuration out.

use rand::Rng;
use rand::SeedableRng;

use crate::activation::Activation;
use crate::linear::Linear;
use crate::param::Param;
use crate::tensor::Tensor;

/// A feed-forward network `Linear -> act -> ... -> Linear` (identity output).
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    /// Pre-activation inputs cached per layer during `forward` (needed to
    /// compute activation gradients in `backward`).
    cached_preacts: Vec<Tensor>,
}

impl Mlp {
    /// Build an MLP from a layer-size spec, e.g. `&[24, 64, 64, 16]` builds
    /// three `Linear` layers (the paper's 3-FC-layer Q-network shape).
    pub fn new(sizes: &[usize], hidden_activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            layers.push(Linear::new(w[0], w[1], rng));
        }
        Mlp {
            layers,
            hidden_activation,
            cached_preacts: Vec::new(),
        }
    }

    /// Number of `Linear` layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map(Linear::in_dim).unwrap_or(0)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map(Linear::out_dim).unwrap_or(0)
    }

    /// Total number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Training forward pass (caches activations for `backward`).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cached_preacts.clear();
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let z = layer.forward(&h);
            if i + 1 < n {
                self.cached_preacts.push(z.clone());
                h = self.hidden_activation.forward(&z);
            } else {
                h = z; // identity output head
            }
        }
        h
    }

    /// Inference forward pass without caching (usable through `&self`).
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let n = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let z = layer.forward_inference(&h);
            h = if i + 1 < n {
                self.hidden_activation.forward(&z)
            } else {
                z
            };
        }
        h
    }

    /// Backward pass from an output gradient; accumulates parameter
    /// gradients and returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let n = self.layers.len();
        assert_eq!(
            self.cached_preacts.len(),
            n.saturating_sub(1),
            "backward called before forward"
        );
        let mut grad = grad_out.clone();
        for i in (0..n).rev() {
            grad = self.layers[i].backward(&grad);
            if i > 0 {
                let z = &self.cached_preacts[i - 1];
                grad = self.hidden_activation.backward(z, &grad);
            }
        }
        grad
    }

    /// Zero all parameter gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.w.zero_grad();
            l.b.zero_grad();
        }
    }

    /// Mutable access to all parameters in a stable order (for optimizers
    /// and checkpointing).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Snapshot all parameter values as flat vectors (stable order).
    pub fn snapshot(&self) -> Vec<Vec<f32>> {
        self.layers
            .iter()
            .flat_map(|l| [l.w.value.clone(), l.b.value.clone()])
            .collect()
    }

    /// Load parameter values from a snapshot produced by [`Mlp::snapshot`]
    /// on an identically-shaped network.
    pub fn load_snapshot(&mut self, snap: &[Vec<f32>]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), snap.len(), "snapshot layer count mismatch");
        for (p, s) in params.iter_mut().zip(snap.iter()) {
            assert_eq!(p.value.len(), s.len(), "snapshot param length mismatch");
            p.value.copy_from_slice(s);
        }
    }

    /// Copy parameter values from another identically-shaped MLP (used for
    /// DQN target-network synchronisation).
    pub fn copy_weights_from(&mut self, other: &Mlp) {
        let snap = other.snapshot();
        self.load_snapshot(&snap);
    }

    /// Rebuild an MLP from a snapshot produced by [`Mlp::snapshot`]. Layer
    /// shapes are recovered from the flat buffers: each `(weights, bias)`
    /// pair implies `out = bias.len()`, `in = weights.len() / out`.
    pub fn from_snapshot(snap: &[Vec<f32>], hidden_activation: Activation) -> Mlp {
        assert!(
            !snap.is_empty() && snap.len().is_multiple_of(2),
            "snapshot must hold (weights, bias) pairs"
        );
        let mut sizes = Vec::with_capacity(snap.len() / 2 + 1);
        for pair in snap.chunks(2) {
            let out = pair[1].len();
            assert!(out > 0 && pair[0].len() % out == 0, "corrupt snapshot");
            let inp = pair[0].len() / out;
            if sizes.is_empty() {
                sizes.push(inp);
            } else {
                assert_eq!(*sizes.last().unwrap(), inp, "layer shapes must chain");
            }
            sizes.push(out);
        }
        // Weight values come from the snapshot; the RNG is only used for
        // construction and its output is immediately overwritten.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let mut mlp = Mlp::new(&sizes, hidden_activation, &mut rng);
        mlp.load_snapshot(snap);
        mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optim::{Optimizer, Sgd};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shapes_flow_through() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Mlp::new(&[4, 8, 8, 3], Activation::Relu, &mut rng);
        assert_eq!(net.num_layers(), 3);
        assert_eq!(net.in_dim(), 4);
        assert_eq!(net.out_dim(), 3);
        let x = Tensor::zeros(&[5, 4]);
        let y = net.forward(&x);
        assert_eq!(y.shape(), &[5, 3]);
    }

    #[test]
    fn param_count_matches_formula() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Mlp::new(&[4, 8, 3], Activation::Relu, &mut rng);
        // (4*8 + 8) + (8*3 + 3) = 40 + 27 = 67
        assert_eq!(net.param_count(), 67);
    }

    #[test]
    fn inference_matches_training_forward() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = Mlp::new(&[3, 6, 2], Activation::Relu, &mut rng);
        let x = Tensor::from_vec(&[2, 3], vec![1.0, -0.5, 0.3, 0.0, 2.0, -1.0]);
        let a = net.forward(&x);
        let b = net.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn numerical_gradient_check_through_two_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut net = Mlp::new(&[3, 4, 2], Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(&[2, 3], vec![0.2, -0.4, 0.6, -0.1, 0.5, 0.3]);

        // Analytic gradient of L = sum(output).
        net.zero_grad();
        let y = net.forward(&x);
        let dy = Tensor::full(y.shape(), 1.0);
        let _ = net.backward(&dy);
        let analytic: Vec<Vec<f32>> = net.params_mut().iter().map(|p| p.grad.clone()).collect();

        // Numeric gradients.
        let eps = 1e-3f32;
        let n_params = analytic.len();
        // Index-based: the loop perturbs `params_mut()[pi]` while reading
        // `analytic[pi]`, which an iterator cannot borrow simultaneously.
        #[allow(clippy::needless_range_loop)]
        for pi in 0..n_params {
            let plen = analytic[pi].len();
            for j in (0..plen).step_by(3) {
                let orig = net.params_mut()[pi].value[j];
                net.params_mut()[pi].value[j] = orig + eps;
                let up = net.forward_inference(&x).sum();
                net.params_mut()[pi].value[j] = orig - eps;
                let down = net.forward_inference(&x).sum();
                net.params_mut()[pi].value[j] = orig;
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic[pi][j];
                assert!(
                    (numeric - a).abs() < 2e-2,
                    "param {pi}[{j}]: numeric {numeric} vs analytic {a}"
                );
            }
        }
    }

    #[test]
    fn learns_a_linear_function() {
        // Regression sanity check: y = 2*x0 - x1 learnable to low MSE.
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let mut net = Mlp::new(&[2, 16, 1], Activation::Relu, &mut rng);
        let mut opt = Sgd::new(0.05, 0.9);

        let xs: Vec<f32> = (0..64)
            .flat_map(|i| {
                let a = (i % 8) as f32 / 4.0 - 1.0;
                let b = (i / 8) as f32 / 4.0 - 1.0;
                [a, b]
            })
            .collect();
        let x = Tensor::from_vec(&[64, 2], xs.clone());
        let targets: Vec<f32> = xs.chunks(2).map(|p| 2.0 * p[0] - p[1]).collect();
        let t = Tensor::from_vec(&[64, 1], targets);

        let mut final_loss = f32::MAX;
        for _ in 0..300 {
            net.zero_grad();
            let y = net.forward(&x);
            let (l, dy) = loss::mse(&y, &t);
            let _ = net.backward(&dy);
            opt.step(&mut net.params_mut());
            final_loss = l;
        }
        assert!(final_loss < 0.01, "MLP failed to fit: loss {final_loss}");
    }

    #[test]
    fn from_snapshot_reconstructs_the_network() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let original = Mlp::new(&[5, 7, 3], Activation::Relu, &mut rng);
        let rebuilt = Mlp::from_snapshot(&original.snapshot(), Activation::Relu);
        assert_eq!(rebuilt.in_dim(), 5);
        assert_eq!(rebuilt.out_dim(), 3);
        let x = Tensor::from_vec(&[2, 5], (0..10).map(|i| i as f32 / 10.0).collect());
        assert_eq!(
            original.forward_inference(&x),
            rebuilt.forward_inference(&x)
        );
    }

    #[test]
    #[should_panic(expected = "snapshot must hold")]
    fn from_snapshot_rejects_odd_buffers() {
        let _ = Mlp::from_snapshot(&[vec![1.0]], Activation::Relu);
    }

    #[test]
    fn snapshot_roundtrip_and_target_sync() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let a = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng);
        let mut b = Mlp::new(&[3, 5, 2], Activation::Relu, &mut rng);
        let x = Tensor::from_vec(&[1, 3], vec![0.1, 0.2, 0.3]);
        assert_ne!(a.forward_inference(&x), b.forward_inference(&x));
        b.copy_weights_from(&a);
        assert_eq!(a.forward_inference(&x), b.forward_inference(&x));
    }
}
