//! 3D convolution blocks for the real (small-scale) R3D path.
//!
//! The paper's APFG is an R3D network: stacked spatio-temporal 3D
//! convolutions over `C x L x H x W` segments (§2, Figure 3). This module
//! provides direct (un-vectorised) `Conv3d`, `MaxPool3d`, and
//! `GlobalAvgPool3d` with full backprop, sized for the small `R3dLite`
//! network used in examples and tests. Tensors are single-sample
//! `[C, L, H, W]`; batching is done by the caller.

use rand::Rng;

use crate::init;
use crate::param::Param;
use crate::tensor::Tensor;

/// Shape helper for `[C, L, H, W]` volumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeShape {
    /// Channels.
    pub c: usize,
    /// Temporal length (frames).
    pub l: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl VolumeShape {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.c * self.l * self.h * self.w
    }

    /// True when any dimension is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// As a tensor shape slice.
    pub fn dims(&self) -> [usize; 4] {
        [self.c, self.l, self.h, self.w]
    }
}

#[inline]
fn vol_index(shape: &VolumeShape, c: usize, l: usize, h: usize, w: usize) -> usize {
    ((c * shape.l + l) * shape.h + h) * shape.w + w
}

/// A 3D convolution layer with cubic kernels, stride, and zero padding.
#[derive(Debug, Clone)]
pub struct Conv3d {
    /// Kernel weights, flattened `[out_c, in_c, k, k, k]`.
    pub weight: Param,
    /// Per-output-channel bias.
    pub bias: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    padding: usize,
    cached_input: Option<(Tensor, VolumeShape)>,
}

impl Conv3d {
    /// Create a conv layer with He-normal init (`fan_in = in_c * k^3`).
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(k >= 1 && stride >= 1, "kernel and stride must be >= 1");
        let fan_in = in_c * k * k * k;
        let weight = Param::new(init::he_normal(fan_in, out_c * fan_in, rng));
        let bias = Param::zeros(out_c);
        Conv3d {
            weight,
            bias,
            in_c,
            out_c,
            k,
            stride,
            padding,
            cached_input: None,
        }
    }

    /// Output volume shape for a given input shape.
    pub fn output_shape(&self, input: &VolumeShape) -> VolumeShape {
        let out_dim = |d: usize| (d + 2 * self.padding).saturating_sub(self.k) / self.stride + 1;
        VolumeShape {
            c: self.out_c,
            l: out_dim(input.l),
            h: out_dim(input.h),
            w: out_dim(input.w),
        }
    }

    #[inline]
    fn widx(&self, oc: usize, ic: usize, kl: usize, kh: usize, kw: usize) -> usize {
        (((oc * self.in_c + ic) * self.k + kl) * self.k + kh) * self.k + kw
    }

    /// Forward pass over a `[C, L, H, W]` volume (flattened tensor).
    pub fn forward(&mut self, x: &Tensor, shape: VolumeShape) -> (Tensor, VolumeShape) {
        assert_eq!(shape.c, self.in_c, "input channels mismatch");
        assert_eq!(x.len(), shape.len(), "input length mismatch");
        let out_shape = self.output_shape(&shape);
        let mut out = vec![0.0f32; out_shape.len()];

        let xs = x.data();
        let ws = &self.weight.value;
        let pad = self.padding as isize;
        for oc in 0..out_shape.c {
            let b = self.bias.value[oc];
            for ol in 0..out_shape.l {
                for oh in 0..out_shape.h {
                    for ow in 0..out_shape.w {
                        let mut acc = b;
                        let base_l = (ol * self.stride) as isize - pad;
                        let base_h = (oh * self.stride) as isize - pad;
                        let base_w = (ow * self.stride) as isize - pad;
                        for ic in 0..self.in_c {
                            for kl in 0..self.k {
                                let il = base_l + kl as isize;
                                if il < 0 || il >= shape.l as isize {
                                    continue;
                                }
                                for kh in 0..self.k {
                                    let ih = base_h + kh as isize;
                                    if ih < 0 || ih >= shape.h as isize {
                                        continue;
                                    }
                                    for kw in 0..self.k {
                                        let iw = base_w + kw as isize;
                                        if iw < 0 || iw >= shape.w as isize {
                                            continue;
                                        }
                                        let xv = xs[vol_index(
                                            &shape,
                                            ic,
                                            il as usize,
                                            ih as usize,
                                            iw as usize,
                                        )];
                                        let wv = ws[self.widx(oc, ic, kl, kh, kw)];
                                        acc += xv * wv;
                                    }
                                }
                            }
                        }
                        out[vol_index(&out_shape, oc, ol, oh, ow)] = acc;
                    }
                }
            }
        }
        self.cached_input = Some((x.clone(), shape));
        (Tensor::vector(out), out_shape)
    }

    /// Backward pass: accumulate weight/bias gradients and return `dX`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (x, shape) = self
            .cached_input
            .as_ref()
            .expect("backward called before forward")
            .clone();
        let out_shape = self.output_shape(&shape);
        assert_eq!(grad_out.len(), out_shape.len(), "grad_out length mismatch");

        let xs = x.data();
        let gs = grad_out.data();
        let mut dw = vec![0.0f32; self.weight.len()];
        let mut db = vec![0.0f32; self.bias.len()];
        let mut dx = vec![0.0f32; shape.len()];
        let ws = &self.weight.value;
        let pad = self.padding as isize;

        for oc in 0..out_shape.c {
            for ol in 0..out_shape.l {
                for oh in 0..out_shape.h {
                    for ow in 0..out_shape.w {
                        let g = gs[vol_index(&out_shape, oc, ol, oh, ow)];
                        if g == 0.0 {
                            continue;
                        }
                        db[oc] += g;
                        let base_l = (ol * self.stride) as isize - pad;
                        let base_h = (oh * self.stride) as isize - pad;
                        let base_w = (ow * self.stride) as isize - pad;
                        for ic in 0..self.in_c {
                            for kl in 0..self.k {
                                let il = base_l + kl as isize;
                                if il < 0 || il >= shape.l as isize {
                                    continue;
                                }
                                for kh in 0..self.k {
                                    let ih = base_h + kh as isize;
                                    if ih < 0 || ih >= shape.h as isize {
                                        continue;
                                    }
                                    for kw in 0..self.k {
                                        let iw = base_w + kw as isize;
                                        if iw < 0 || iw >= shape.w as isize {
                                            continue;
                                        }
                                        let xi = vol_index(
                                            &shape,
                                            ic,
                                            il as usize,
                                            ih as usize,
                                            iw as usize,
                                        );
                                        let wi = self.widx(oc, ic, kl, kh, kw);
                                        dw[wi] += g * xs[xi];
                                        dx[xi] += g * ws[wi];
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.weight.accumulate(&dw);
        self.bias.accumulate(&db);
        Tensor::vector(dx)
    }

    /// Mutable references to parameters (weight then bias).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// 3D max pooling with cubic windows (stride equals window size).
#[derive(Debug, Clone)]
pub struct MaxPool3d {
    k: usize,
    cached: Option<(VolumeShape, VolumeShape, Vec<usize>)>,
}

impl MaxPool3d {
    /// Create a pooling layer with window/stride `k`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1);
        MaxPool3d { k, cached: None }
    }

    /// Output shape for an input shape (floor division).
    pub fn output_shape(&self, input: &VolumeShape) -> VolumeShape {
        VolumeShape {
            c: input.c,
            l: (input.l / self.k).max(1),
            h: (input.h / self.k).max(1),
            w: (input.w / self.k).max(1),
        }
    }

    /// Forward pass, recording argmax indices for backprop.
    pub fn forward(&mut self, x: &Tensor, shape: VolumeShape) -> (Tensor, VolumeShape) {
        let out_shape = self.output_shape(&shape);
        let mut out = vec![f32::NEG_INFINITY; out_shape.len()];
        let mut argmax = vec![0usize; out_shape.len()];
        let xs = x.data();
        for c in 0..shape.c {
            for ol in 0..out_shape.l {
                for oh in 0..out_shape.h {
                    for ow in 0..out_shape.w {
                        let oi = vol_index(&out_shape, c, ol, oh, ow);
                        for kl in 0..self.k {
                            let il = ol * self.k + kl;
                            if il >= shape.l {
                                continue;
                            }
                            for kh in 0..self.k {
                                let ih = oh * self.k + kh;
                                if ih >= shape.h {
                                    continue;
                                }
                                for kw in 0..self.k {
                                    let iw = ow * self.k + kw;
                                    if iw >= shape.w {
                                        continue;
                                    }
                                    let xi = vol_index(&shape, c, il, ih, iw);
                                    if xs[xi] > out[oi] {
                                        out[oi] = xs[xi];
                                        argmax[oi] = xi;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        self.cached = Some((shape, out_shape, argmax));
        (Tensor::vector(out), out_shape)
    }

    /// Backward pass routing gradients to argmax positions.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (in_shape, out_shape, argmax) = self
            .cached
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_out.len(), out_shape.len());
        let mut dx = vec![0.0f32; in_shape.len()];
        for (g, &src) in grad_out.data().iter().zip(argmax.iter()) {
            dx[src] += g;
        }
        Tensor::vector(dx)
    }
}

/// Global average pooling over `(L, H, W)` producing one value per channel
/// — the "adaptive average pooling" head of R3D (Figure 3).
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool3d {
    cached_shape: Option<VolumeShape>,
}

impl GlobalAvgPool3d {
    /// Create the pooling head.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass: `[C, L, H, W] -> [C]`.
    pub fn forward(&mut self, x: &Tensor, shape: VolumeShape) -> Tensor {
        assert_eq!(x.len(), shape.len());
        let spatial = shape.l * shape.h * shape.w;
        assert!(spatial > 0, "cannot pool an empty volume");
        let mut out = vec![0.0f32; shape.c];
        for (c, o) in out.iter_mut().enumerate() {
            let start = c * spatial;
            *o = x.data()[start..start + spatial].iter().sum::<f32>() / spatial as f32;
        }
        self.cached_shape = Some(shape);
        Tensor::vector(out)
    }

    /// Backward pass: spread each channel gradient uniformly.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.expect("backward called before forward");
        let spatial = shape.l * shape.h * shape.w;
        assert_eq!(grad_out.len(), shape.c);
        let mut dx = vec![0.0f32; shape.len()];
        for c in 0..shape.c {
            let g = grad_out.data()[c] / spatial as f32;
            for v in &mut dx[c * spatial..(c + 1) * spatial] {
                *v = g;
            }
        }
        Tensor::vector(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn shape(c: usize, l: usize, h: usize, w: usize) -> VolumeShape {
        VolumeShape { c, l, h, w }
    }

    #[test]
    fn conv_identity_kernel() {
        // 1x1x1 kernel with weight 1 reproduces the input.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv3d::new(1, 1, 1, 1, 0, &mut rng);
        conv.weight.value = vec![1.0];
        conv.bias.value = vec![0.0];
        let s = shape(1, 2, 2, 2);
        let x = Tensor::vector((0..8).map(|v| v as f32).collect());
        let (y, os) = conv.forward(&x, s);
        assert_eq!(os, s);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_output_shape_with_stride_and_padding() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let conv = Conv3d::new(3, 8, 3, 2, 1, &mut rng);
        let os = conv.output_shape(&shape(3, 8, 16, 16));
        assert_eq!(os, shape(8, 4, 8, 8));
    }

    #[test]
    fn conv_hand_computed_sum_kernel() {
        // 2x2x2 all-ones kernel over a 2x2x2 input = sum of all elements.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut conv = Conv3d::new(1, 1, 2, 1, 0, &mut rng);
        conv.weight.value = vec![1.0; 8];
        conv.bias.value = vec![0.5];
        let x = Tensor::vector((1..=8).map(|v| v as f32).collect());
        let (y, os) = conv.forward(&x, shape(1, 2, 2, 2));
        assert_eq!(os, shape(1, 1, 1, 1));
        assert_eq!(y.data(), &[36.5]);
    }

    #[test]
    fn conv_numerical_gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut conv = Conv3d::new(2, 2, 2, 1, 1, &mut rng);
        let s = shape(2, 3, 3, 3);
        let x = Tensor::vector((0..s.len()).map(|i| (i as f32 * 0.1).sin()).collect());

        let (y, _) = conv.forward(&x, s);
        let dy = Tensor::full(&[y.len()], 1.0);
        let dx = conv.backward(&dy);
        let w_grad = conv.weight.grad.clone();

        let eps = 1e-2f32;
        // Check a sample of weight gradients.
        for i in (0..conv.weight.len()).step_by(7) {
            let orig = conv.weight.value[i];
            conv.weight.value[i] = orig + eps;
            let (yu, _) = conv.forward(&x, s);
            conv.weight.value[i] = orig - eps;
            let (yd, _) = conv.forward(&x, s);
            conv.weight.value[i] = orig;
            let numeric = (yu.sum() - yd.sum()) / (2.0 * eps);
            assert!(
                (numeric - w_grad[i]).abs() < 0.05,
                "weight {i}: numeric {numeric} vs analytic {}",
                w_grad[i]
            );
        }
        // Check a sample of input gradients.
        for i in (0..s.len()).step_by(11) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let (yu, _) = conv.forward(&xp, s);
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let (yd, _) = conv.forward(&xm, s);
            let numeric = (yu.sum() - yd.sum()) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[i]).abs() < 0.05,
                "input {i}: numeric {numeric} vs analytic {}",
                dx.data()[i]
            );
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let mut pool = MaxPool3d::new(2);
        let s = shape(1, 2, 2, 2);
        let x = Tensor::vector(vec![1.0, 5.0, 2.0, 3.0, 0.0, -1.0, 4.0, 2.5]);
        let (y, os) = pool.forward(&x, s);
        assert_eq!(os, shape(1, 1, 1, 1));
        assert_eq!(y.data(), &[5.0]);
        let dx = pool.backward(&Tensor::vector(vec![2.0]));
        assert_eq!(dx.data(), &[0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut gap = GlobalAvgPool3d::new();
        let s = shape(2, 1, 2, 2);
        let x = Tensor::vector(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let y = gap.forward(&x, s);
        assert_eq!(y.data(), &[2.5, 10.0]);
        let dx = gap.backward(&Tensor::vector(vec![4.0, 8.0]));
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn volume_shape_helpers() {
        let s = shape(3, 4, 5, 6);
        assert_eq!(s.len(), 360);
        assert!(!s.is_empty());
        assert_eq!(s.dims(), [3, 4, 5, 6]);
    }
}
