//! Row-major `f32` tensors.
//!
//! This is deliberately a small tensor type: Zeus only needs dense 1-D/2-D
//! algebra for the Q-network and 5-D indexing for video segments flowing
//! through the small real 3D-CNN. We favour clarity and determinism over
//! generality; hot paths (matmul, elementwise) are written so the compiler
//! can elide bounds checks via slice iteration.

use std::fmt;

/// A dense, row-major, `f32` n-dimensional array.
///
/// Invariant: `data.len() == shape.iter().product()`. All constructors and
/// ops preserve this; it is `debug_assert`ed on access paths.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(f, "data=[{} elems])", self.data.len())
        }
    }
}

impl Tensor {
    /// Create a tensor filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Create a tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Create a tensor from raw data. Panics if `data.len()` does not match
    /// the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Stack equal-length rows into a `[n, d]` tensor — the batched
    /// inference entry point (one forward over N states instead of N
    /// forwards over `[1, d]`). Panics on an empty row set or ragged
    /// rows; batch producers (`zeus-rl`'s `VecEnv`) validate shape with
    /// typed errors before reaching this primitive.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let d = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * d);
        for row in rows {
            assert_eq!(row.len(), d, "from_rows requires equal-length rows");
            data.extend_from_slice(row);
        }
        Tensor {
            shape: vec![rows.len(), d],
            data,
        }
    }

    /// 1-D convenience constructor.
    pub fn vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Tensor {
            shape: vec![n],
            data,
        }
    }

    /// The shape of the tensor.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Borrow the underlying data slice.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data slice.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape in place. The element count must be preserved.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape must preserve element count");
        self.shape = shape.to_vec();
        self
    }

    /// 2-D element accessor (row, col).
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        self.data[r * cols + c]
    }

    /// 2-D mutable element accessor (row, col).
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols + c]
    }

    /// Borrow row `r` of a 2-D tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutably borrow row `r` of a 2-D tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert_eq!(self.ndim(), 2);
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Matrix multiplication of 2-D tensors: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Written as an `ikj` loop over slices so the inner loop vectorizes.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions must agree: {k} vs {k2}");

        let mut out = vec![0.0f32; m * n];
        let a = &self.data;
        let b = &other.data;
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * b_pj;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `self^T x other`: `[k, m]^T x [k, n] -> [m, n]` without materialising
    /// the transpose (used for weight gradients `dW = X^T dY`).
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "outer dimensions must agree: {k} vs {k2}");

        let mut out = vec![0.0f32; m * n];
        for p in 0..k {
            let a_row = &self.data[p * m..(p + 1) * m];
            let b_row = &other.data[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                if a_pi == 0.0 {
                    continue;
                }
                let out_row = &mut out[i * n..(i + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_pi * b_pj;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `self x other^T`: `[m, k] x [n, k]^T -> [m, n]` without materialising
    /// the transpose (used for input gradients `dX = dY W^T`).
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions must agree: {k} vs {k2}");

        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose a 2-D tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Elementwise addition. Shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "add shapes must match");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise subtraction. Shapes must match exactly.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "sub shapes must match");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Elementwise (Hadamard) product. Shapes must match exactly.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "mul shapes must match");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * s).collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Add a 1-D bias row-wise to a 2-D tensor: `[m, n] + [n] -> [m, n]`.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2);
        assert_eq!(bias.ndim(), 1);
        let (m, n) = (self.shape[0], self.shape[1]);
        assert_eq!(bias.shape[0], n, "bias length must equal column count");
        let mut data = self.data.clone();
        for i in 0..m {
            let row = &mut data[i * n..(i + 1) * n];
            for (x, &b) in row.iter_mut().zip(bias.data.iter()) {
                *x += b;
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Sum a 2-D tensor over rows, producing a 1-D tensor of length `n`
    /// (used for bias gradients).
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            let row = &self.data[i * n..(i + 1) * n];
            for (o, &x) in out.iter_mut().zip(row.iter()) {
                *o += x;
            }
        }
        Tensor {
            shape: vec![n],
            data: out,
        }
    }

    /// Apply a function elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element of a 1-D tensor (first on ties).
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        let mut best_v = self.data[0];
        for (i, &v) in self.data.iter().enumerate().skip(1) {
            if v > best_v {
                best = i;
                best_v = v;
            }
        }
        best
    }

    /// Per-row argmax of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2);
        (0..self.shape[0])
            .map(|r| {
                let row = self.row(r);
                let mut best = 0;
                let mut best_v = row[0];
                for (i, &v) in row.iter().enumerate().skip(1) {
                    if v > best_v {
                        best = i;
                        best_v = v;
                    }
                }
                best
            })
            .collect()
    }

    /// Per-row max of a 2-D tensor.
    pub fn max_rows(&self) -> Vec<f32> {
        assert_eq!(self.ndim(), 2);
        (0..self.shape[0])
            .map(|r| {
                self.row(r)
                    .iter()
                    .copied()
                    .fold(f32::NEG_INFINITY, f32::max)
            })
            .collect()
    }

    /// Numerically stable softmax along the last axis of a 2-D tensor.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let row = self.row(i);
            let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &x) in out_row.iter_mut().zip(row.iter()) {
                let e = (x - mx).exp();
                *o = e;
                denom += e;
            }
            for o in out_row.iter_mut() {
                *o /= denom;
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data: out,
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert!(t.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.at2(0, 1), 2.0);
        assert_eq!(t.at2(1, 0), 3.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0]);
    }

    #[test]
    fn matmul_hand_computed() {
        // [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
        let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.data(), &[4.0, 5.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec(&[3, 2], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(&[4, 3], (0..12).map(|x| x as f32).collect());
        let fused = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(fused, explicit);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::vector(vec![1.0, 2.0, 3.0]);
        let b = Tensor::vector(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::vector(vec![10.0, 20.0, 30.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        let s = x.sum_rows();
        assert_eq!(s.data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::vector(vec![1.0, -2.0, 3.5]);
        assert_eq!(t.sum(), 2.5);
        assert!((t.mean() - 2.5 / 3.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.5);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::vector(vec![1.0, 3.0, 3.0]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let total: f32 = s.row(r).iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "row {r} sums to {total}");
        }
        // Large-magnitude row must not produce NaN (stability check).
        assert!(s.all_finite());
    }

    #[test]
    fn from_rows_stacks_in_order() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let t = Tensor::from_rows(&[&a, &b]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.row(1), &b);
    }

    #[test]
    #[should_panic(expected = "equal-length rows")]
    fn from_rows_rejects_ragged_rows() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32];
        let _ = Tensor::from_rows(&[&a, &b]);
    }

    #[test]
    fn argmax_rows_and_max_rows() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 5.0, 2.0, 9.0, 0.0, 3.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
        assert_eq!(t.max_rows(), vec![5.0, 9.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape must preserve element count")]
    fn reshape_bad_count_panics() {
        let _ = Tensor::zeros(&[2, 2]).reshape(&[3]);
    }

    #[test]
    fn norm_matches_hand_value() {
        let t = Tensor::vector(vec![3.0, 4.0]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }
}
