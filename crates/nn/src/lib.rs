//! # zeus-nn
//!
//! A minimal, dependency-light neural-network substrate for the Zeus
//! reproduction. The Zeus paper (SIGMOD 2022) builds on PyTorch for two
//! models: the R3D action-recognition network that backs the Adaptive Proxy
//! Feature Generator (APFG, §3/§5) and the 3-layer MLP Q-network of the DQN
//! agent (§4.3/§5). This crate provides everything those models need,
//! implemented from scratch:
//!
//! * [`tensor::Tensor`] — row-major `f32` n-dimensional arrays with the
//!   small set of ops the models use (matmul, elementwise, reductions).
//! * [`linear::Linear`], [`activation::Activation`], [`mlp::Mlp`] — dense
//!   layers with manual backprop, composed into the Q-network.
//! * [`conv::Conv3d`], [`conv::MaxPool3d`], [`conv::GlobalAvgPool3d`] — 3D
//!   convolutional blocks used by the small real R3D path (`zeus-apfg`).
//! * [`loss`] — Huber (the DQN loss of Algorithm 1), MSE, and
//!   softmax-cross-entropy (APFG classification head).
//! * [`optim`] — SGD with momentum and Adam.
//! * [`init`] — Xavier/He initialisation with explicit, seedable RNGs.
//! * [`serialize`] — flat weight checkpointing.
//!
//! Determinism is a design requirement: every random operation takes an
//! explicit RNG so the benchmark harness can regenerate the paper's tables
//! bit-for-bit.

#![warn(missing_docs)]
pub mod activation;
pub mod conv;
pub mod init;
pub mod linear;
pub mod loss;
pub mod mlp;
pub mod optim;
pub mod param;
pub mod serialize;
pub mod tensor;

pub use activation::Activation;
pub use conv::{Conv3d, GlobalAvgPool3d, MaxPool3d};
pub use linear::Linear;
pub use mlp::Mlp;
pub use param::Param;
pub use tensor::Tensor;
