//! Weight initialisation with explicit, seedable RNGs.
//!
//! Deterministic initialisation matters here: the benchmark harness must
//! regenerate the paper's tables bit-for-bit across runs, so every random
//! draw flows through a caller-provided RNG rather than thread-local state.

use rand::Rng;

/// Sample from an approximately standard normal distribution using the
/// sum-of-uniforms method (Irwin–Hall with 12 draws), which avoids pulling
/// in a distribution crate and is plenty for weight init.
pub fn randn(rng: &mut impl Rng) -> f32 {
    let mut acc = 0.0f32;
    for _ in 0..12 {
        acc += rng.gen::<f32>();
    }
    acc - 6.0
}

/// Xavier/Glorot uniform initialisation for a `fan_in x fan_out` weight
/// matrix: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Vec<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-a..=a))
        .collect()
}

/// He (Kaiming) normal initialisation: `N(0, sqrt(2 / fan_in))`, preferred
/// for ReLU networks such as the Q-network and R3dLite blocks.
pub fn he_normal(fan_in: usize, n: usize, rng: &mut impl Rng) -> Vec<f32> {
    let std = (2.0 / fan_in as f32).sqrt();
    (0..n).map(|_| randn(rng) * std).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn xavier_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let w = xavier_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0f32).sqrt();
        assert_eq!(w.len(), 64 * 32);
        assert!(w.iter().all(|&x| x >= -a && x <= a));
    }

    #[test]
    fn he_normal_statistics() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let fan_in = 128;
        let w = he_normal(fan_in, 20_000, &mut rng);
        let mean: f32 = w.iter().sum::<f32>() / w.len() as f32;
        let var: f32 = w.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / w.len() as f32;
        let want_std = (2.0 / fan_in as f32).sqrt();
        assert!(mean.abs() < 0.01, "mean {mean} too far from 0");
        assert!(
            (var.sqrt() - want_std).abs() / want_std < 0.05,
            "std {} vs expected {want_std}",
            var.sqrt()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(xavier_uniform(8, 8, &mut a), xavier_uniform(8, 8, &mut b));
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let xs: Vec<f32> = (0..20_000).map(|_| randn(&mut rng)).collect();
        let mean: f32 = xs.iter().sum::<f32>() / xs.len() as f32;
        let var: f32 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.05);
    }
}
