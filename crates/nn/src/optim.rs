//! First-order optimizers: SGD with momentum, and Adam.
//!
//! Zeus fine-tunes the APFG and trains the DQN with Adam (the paper cites
//! Kingma & Ba \[18\]); SGD is kept for the small R3dLite experiments and as
//! a simpler baseline in tests.

use crate::param::Param;

/// Common optimizer interface over flat parameter lists.
///
/// The parameter order must be stable across calls (it is, for `Mlp` /
/// `Conv3d`): per-parameter state (momentum, moments) is keyed by position.
pub trait Optimizer {
    /// Apply one update step and leave gradients untouched (callers are
    /// expected to `zero_grad` before the next backward pass).
    fn step(&mut self, params: &mut [&mut Param]);

    /// Learning rate currently in effect.
    fn learning_rate(&self) -> f32;

    /// Replace the learning rate (supports schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Create an SGD optimizer. `momentum = 0.0` gives plain SGD.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            assert_eq!(p.len(), v.len(), "parameter shape changed mid-training");
            for ((w, g), vel) in p.value.iter_mut().zip(p.grad.iter()).zip(v.iter_mut()) {
                *vel = self.momentum * *vel + g;
                *w -= self.lr * *vel;
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Create an Adam optimizer with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Create an Adam optimizer with explicit betas.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            assert_eq!(p.len(), m.len(), "parameter shape changed mid-training");
            for (((w, g), mi), vi) in p
                .value
                .iter_mut()
                .zip(p.grad.iter())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let m_hat = *mi / b1t;
                let v_hat = *vi / b2t;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Clip gradients globally to a maximum L2 norm (DQN stabiliser).
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            for g in &mut p.grad {
                *g *= scale;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &mut Param) {
        // d/dw of 0.5*(w - 3)^2 = (w - 3)
        p.zero_grad();
        let deltas: Vec<f32> = p.value.iter().map(|w| w - 3.0).collect();
        p.accumulate(&deltas);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(vec![0.0, 10.0]);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..200 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        for w in &p.value {
            assert!((w - 3.0).abs() < 1e-3, "w = {w}");
        }
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = Param::new(vec![0.0]);
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..50 {
                quadratic_grad(&mut p);
                opt.step(&mut [&mut p]);
            }
            (p.value[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new(vec![-5.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!((p.value[0] - 3.0).abs() < 1e-2, "w = {}", p.value[0]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p = Param::new(vec![0.0, 0.0]);
        p.accumulate(&[3.0, 4.0]); // norm 5
        let norm = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        let clipped = (p.grad[0] * p.grad[0] + p.grad[1] * p.grad[1]).sqrt();
        assert!((clipped - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients() {
        let mut p = Param::new(vec![0.0]);
        p.accumulate(&[0.5]);
        clip_grad_norm(&mut [&mut p], 1.0);
        assert_eq!(p.grad[0], 0.5);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
