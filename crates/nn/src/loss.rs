//! Loss functions returning `(scalar_loss, gradient_wrt_prediction)`.
//!
//! The DQN update in the paper (Algorithm 1, line 13) uses the Huber loss
//! between predicted Q-values and bootstrapped targets. The APFG
//! classification head trains with softmax cross-entropy.

use crate::tensor::Tensor;

/// Mean squared error: `L = mean((pred - target)^2)`.
///
/// Returns the loss and `dL/dpred` (already divided by element count).
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse shapes must match");
    let n = pred.len() as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`.
///
/// Quadratic within `|e| <= delta`, linear outside — the standard DQN loss
/// that bounds gradient magnitude for outlier TD errors (Algorithm 1).
pub fn huber(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "huber shapes must match");
    assert!(delta > 0.0, "delta must be positive");
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; pred.len()];
    for (i, (&p, &t)) in pred.data().iter().zip(target.data().iter()).enumerate() {
        let e = p - t;
        if e.abs() <= delta {
            loss += 0.5 * e * e;
            grad[i] = e / n;
        } else {
            loss += delta * (e.abs() - 0.5 * delta);
            grad[i] = delta * e.signum() / n;
        }
    }
    (loss / n, Tensor::from_vec(pred.shape(), grad))
}

/// Masked Huber loss for DQN: only the Q-values at `action_indices`
/// contribute; gradients for unselected actions are zero.
///
/// `pred` is `[batch, num_actions]`, `targets` is one scalar per batch row,
/// `action_indices` selects the acted column per row. The per-element
/// normalisation uses the batch size (matching `gather`-style DQN losses).
pub fn huber_selected(
    pred: &Tensor,
    action_indices: &[usize],
    targets: &[f32],
    delta: f32,
) -> (f32, Tensor) {
    assert_eq!(pred.ndim(), 2);
    let (batch, num_actions) = (pred.shape()[0], pred.shape()[1]);
    assert_eq!(action_indices.len(), batch, "one action per row");
    assert_eq!(targets.len(), batch, "one target per row");
    let n = batch as f32;

    let mut loss = 0.0f32;
    let mut grad = vec![0.0f32; pred.len()];
    for (row, (&a, &t)) in action_indices.iter().zip(targets.iter()).enumerate() {
        assert!(a < num_actions, "action index {a} out of range");
        let p = pred.at2(row, a);
        let e = p - t;
        if e.abs() <= delta {
            loss += 0.5 * e * e;
            grad[row * num_actions + a] = e / n;
        } else {
            loss += delta * (e.abs() - 0.5 * delta);
            grad[row * num_actions + a] = delta * e.signum() / n;
        }
    }
    (loss / n, Tensor::from_vec(pred.shape(), grad))
}

/// Softmax cross-entropy over class logits.
///
/// `logits` is `[batch, classes]`, `labels` holds one class id per row.
/// Returns mean loss and `dL/dlogits = (softmax - onehot) / batch`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.ndim(), 2);
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), batch, "one label per row");

    let probs = logits.softmax_rows();
    let n = batch as f32;
    let mut loss = 0.0f32;
    let mut grad = probs.data().to_vec();
    for (row, &label) in labels.iter().enumerate() {
        assert!(label < classes, "label {label} out of range");
        let p = probs.at2(row, label).max(1e-12);
        loss -= p.ln();
        grad[row * classes + label] -= 1.0;
    }
    for g in &mut grad {
        *g /= n;
    }
    (loss / n, Tensor::from_vec(logits.shape(), grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_hand_computed() {
        let p = Tensor::vector(vec![1.0, 2.0]);
        let t = Tensor::vector(vec![0.0, 0.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(g.data(), &[1.0, 2.0]); // 2*diff/2
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let p = Tensor::vector(vec![0.5, 3.0]);
        let t = Tensor::vector(vec![0.0, 0.0]);
        let (l, g) = huber(&p, &t, 1.0);
        // elem0: 0.5*0.25 = 0.125 ; elem1: 1*(3-0.5) = 2.5 ; mean = 1.3125
        assert!((l - 1.3125).abs() < 1e-6);
        assert!((g.data()[0] - 0.25).abs() < 1e-6); // e/n = 0.5/2
        assert!((g.data()[1] - 0.5).abs() < 1e-6); // delta*sign/n = 1/2
    }

    #[test]
    fn huber_equals_mse_for_small_errors() {
        let p = Tensor::vector(vec![0.1, -0.2, 0.05]);
        let t = Tensor::zeros(&[3]);
        let (lh, _) = huber(&p, &t, 10.0);
        let (lm, _) = mse(&p, &t);
        // Huber = 0.5 * MSE inside the quadratic region.
        assert!((lh - 0.5 * lm).abs() < 1e-6);
    }

    #[test]
    fn huber_selected_masks_other_actions() {
        let pred = Tensor::from_vec(&[2, 3], vec![1.0, 5.0, 2.0, 0.0, -1.0, 3.0]);
        let (l, g) = huber_selected(&pred, &[1, 2], &[5.0, 0.0], 1.0);
        // Row 0: pred=5, target=5 -> 0 loss, 0 grad.
        // Row 1: pred=3, target=0 -> linear region: 1*(3-0.5)=2.5; grad 0.5.
        assert!((l - 1.25).abs() < 1e-6);
        assert_eq!(g.at2(0, 0), 0.0);
        assert_eq!(g.at2(0, 1), 0.0);
        assert_eq!(g.at2(1, 2), 0.5);
        assert_eq!(g.at2(1, 0), 0.0);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_vec(&[1, 2], vec![20.0, -20.0]);
        let (l, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(l < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let logits = Tensor::from_vec(&[1, 3], vec![0.0, 0.0, 0.0]);
        let (l, g) = softmax_cross_entropy(&logits, &[1]);
        assert!((l - (3.0f32).ln()).abs() < 1e-5);
        let want = [1.0 / 3.0, 1.0 / 3.0 - 1.0, 1.0 / 3.0];
        for (a, b) in g.data().iter().zip(want.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_numeric_gradient() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.2, -0.1, 0.4, 1.0, 0.0, -1.0]);
        let labels = [2usize, 0usize];
        let (_, g) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut up = logits.clone();
            up.data_mut()[i] += eps;
            let mut dn = logits.clone();
            dn.data_mut()[i] -= eps;
            let (lu, _) = softmax_cross_entropy(&up, &labels);
            let (ld, _) = softmax_cross_entropy(&dn, &labels);
            let numeric = (lu - ld) / (2.0 * eps);
            assert!(
                (numeric - g.data()[i]).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs analytic {}",
                g.data()[i]
            );
        }
    }
}
