//! Flat weight checkpointing.
//!
//! Zeus freezes the APFG after fine-tuning and reuses it for RL training
//! (§5); the trained DQN is similarly kept for inference. This module
//! provides a tiny versioned binary format for persisting flat parameter
//! snapshots — enough for checkpoints without pulling a serialization
//! framework into the hot path.

/// Magic bytes identifying a Zeus checkpoint.
const MAGIC: &[u8; 4] = b"ZEUS";
/// Format version.
const VERSION: u32 = 1;

/// Encode a list of flat parameter buffers into a byte vector.
///
/// Layout: `MAGIC | version:u32 | count:u32 | (len:u32 | f32...)*`, all
/// little-endian.
pub fn encode(params: &[Vec<f32>]) -> Vec<u8> {
    let payload: usize = params.iter().map(|p| 4 + p.len() * 4).sum();
    let mut out = Vec::with_capacity(12 + payload);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        for v in p {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Errors arising from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header.
    Truncated,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// A declared buffer ran past the end of input.
    BadLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "checkpoint truncated"),
            DecodeError::BadMagic => write!(f, "not a Zeus checkpoint (bad magic)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            DecodeError::BadLength => write!(f, "corrupt checkpoint (bad buffer length)"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode a byte vector produced by [`encode`].
pub fn decode(bytes: &[u8]) -> Result<Vec<Vec<f32>>, DecodeError> {
    if bytes.len() < 12 {
        return Err(DecodeError::Truncated);
    }
    if &bytes[0..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let mut pos = 12usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        if pos + 4 > bytes.len() {
            return Err(DecodeError::BadLength);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4;
        let end = pos + len * 4;
        if end > bytes.len() {
            return Err(DecodeError::BadLength);
        }
        let mut buf = Vec::with_capacity(len);
        for chunk in bytes[pos..end].chunks_exact(4) {
            buf.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        pos = end;
        out.push(buf);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let params = vec![vec![1.0f32, -2.5, 3.25], vec![], vec![0.0; 7]];
        let bytes = encode(&params);
        let back = decode(&bytes).unwrap();
        assert_eq!(params, back);
    }

    #[test]
    fn empty_checkpoint() {
        let bytes = encode(&[]);
        assert_eq!(decode(&bytes).unwrap(), Vec::<Vec<f32>>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = encode(&[vec![1.0]]);
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = encode(&[vec![1.0, 2.0]]);
        assert_eq!(
            decode(&bytes[..bytes.len() - 3]),
            Err(DecodeError::BadLength)
        );
        assert_eq!(decode(&bytes[..5]), Err(DecodeError::Truncated));
    }

    #[test]
    fn rejects_future_version() {
        let mut bytes = encode(&[vec![1.0]]);
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadVersion(99))));
    }

    #[test]
    fn preserves_special_values() {
        let params = vec![vec![f32::MIN, f32::MAX, f32::EPSILON, -0.0]];
        let back = decode(&encode(&params)).unwrap();
        assert_eq!(params, back);
    }
}
