//! Trainable parameters: a value buffer paired with a gradient buffer.

/// A flat trainable parameter with its accumulated gradient.
///
/// Layers own `Param`s; optimizers walk `(value, grad)` pairs via
/// [`crate::optim::Optimizer::step`]. Gradients accumulate across backward
/// calls until [`Param::zero_grad`] is invoked, mirroring the usual
/// deep-learning training loop.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values (row-major for matrices).
    pub value: Vec<f32>,
    /// Accumulated gradient, same length as `value`.
    pub grad: Vec<f32>,
}

impl Param {
    /// Create a parameter from initial values with a zeroed gradient.
    pub fn new(value: Vec<f32>) -> Self {
        let grad = vec![0.0; value.len()];
        Param { value, grad }
    }

    /// Create a zero-initialised parameter of length `n`.
    pub fn zeros(n: usize) -> Self {
        Param {
            value: vec![0.0; n],
            grad: vec![0.0; n],
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad {
            *g = 0.0;
        }
    }

    /// Accumulate `delta` into the gradient buffer.
    ///
    /// Panics if lengths differ.
    pub fn accumulate(&mut self, delta: &[f32]) {
        assert_eq!(self.grad.len(), delta.len(), "gradient length mismatch");
        for (g, d) in self.grad.iter_mut().zip(delta.iter()) {
            *g += d;
        }
    }

    /// L2 norm of the current gradient (useful for clipping / diagnostics).
    pub fn grad_norm(&self) -> f32 {
        self.grad.iter().map(|g| g * g).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_zeroes_grad() {
        let p = Param::new(vec![1.0, 2.0]);
        assert_eq!(p.grad, vec![0.0, 0.0]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::zeros(3);
        p.accumulate(&[1.0, 2.0, 3.0]);
        p.accumulate(&[1.0, 1.0, 1.0]);
        assert_eq!(p.grad, vec![2.0, 3.0, 4.0]);
        p.zero_grad();
        assert_eq!(p.grad, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn grad_norm_hand_value() {
        let mut p = Param::zeros(2);
        p.accumulate(&[3.0, 4.0]);
        assert!((p.grad_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gradient length mismatch")]
    fn accumulate_length_mismatch_panics() {
        let mut p = Param::zeros(2);
        p.accumulate(&[1.0]);
    }
}
