//! Activation functions with cached-mask backprop.

use crate::tensor::Tensor;

/// Supported activation kinds for MLP hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit, `max(0, x)` — used by the Q-network and the
    /// R3D blocks (the paper's networks are ReLU throughout).
    Relu,
    /// Leaky rectified linear unit with slope 0.1 for negative inputs —
    /// avoids dead-unit collapse in small convolutional networks.
    LeakyRelu,
    /// Hyperbolic tangent, occasionally useful for bounded features.
    Tanh,
    /// Identity (no-op), used for output layers.
    Identity,
}

impl Activation {
    /// Apply the activation elementwise.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        match self {
            Activation::Relu => x.map(|v| if v > 0.0 { v } else { 0.0 }),
            Activation::LeakyRelu => x.map(|v| if v > 0.0 { v } else { 0.1 * v }),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Identity => x.clone(),
        }
    }

    /// Gradient of the activation given its *input* `x` and upstream
    /// gradient `grad_out`.
    pub fn backward(&self, x: &Tensor, grad_out: &Tensor) -> Tensor {
        assert_eq!(x.shape(), grad_out.shape(), "activation grad shape");
        match self {
            Activation::Relu => {
                let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                grad_out.mul(&mask)
            }
            Activation::LeakyRelu => {
                let mask = x.map(|v| if v > 0.0 { 1.0 } else { 0.1 });
                grad_out.mul(&mask)
            }
            Activation::Tanh => {
                let d = x.map(|v| 1.0 - v.tanh() * v.tanh());
                grad_out.mul(&d)
            }
            Activation::Identity => grad_out.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::vector(vec![-1.0, 0.0, 2.0]);
        let y = Activation::Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = Activation::Relu.backward(&x, &Tensor::vector(vec![1.0, 1.0, 1.0]));
        assert_eq!(g.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn tanh_gradient_matches_numeric() {
        let x = Tensor::vector(vec![0.3, -0.7]);
        let ones = Tensor::vector(vec![1.0, 1.0]);
        let g = Activation::Tanh.backward(&x, &ones);
        let eps = 1e-3f32;
        for i in 0..2 {
            let xv = x.data()[i];
            let numeric = ((xv + eps).tanh() - (xv - eps).tanh()) / (2.0 * eps);
            assert!((g.data()[i] - numeric).abs() < 1e-4);
        }
    }

    #[test]
    fn leaky_relu_keeps_negative_gradient() {
        let x = Tensor::vector(vec![-2.0, 3.0]);
        let y = Activation::LeakyRelu.forward(&x);
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = Activation::LeakyRelu.backward(&x, &Tensor::vector(vec![1.0, 1.0]));
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn identity_passthrough() {
        let x = Tensor::vector(vec![1.0, -2.0]);
        assert_eq!(Activation::Identity.forward(&x), x);
        let g = Tensor::vector(vec![0.5, 0.5]);
        assert_eq!(Activation::Identity.backward(&x, &g), g);
    }
}
