//! Property-based tests for the tensor/NN substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use zeus_nn::{loss, Activation, Mlp, Tensor};

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(&[rows, cols], v))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(4, 2),
        c in tensor_strategy(4, 2),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_reverses_products(a in tensor_strategy(3, 4), b in tensor_strategy(4, 2)) {
        // (AB)^T == B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_transpose_matmuls_agree(a in tensor_strategy(4, 3), b in tensor_strategy(4, 2)) {
        let fused = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        prop_assert_eq!(fused.shape(), explicit.shape());
        for (x, y) in fused.data().iter().zip(explicit.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_shift_invariant(row in prop::collection::vec(-20.0f32..20.0, 1..12),
                                  shift in -50.0f32..50.0) {
        let n = row.len();
        let base = Tensor::from_vec(&[1, n], row.clone());
        let shifted = Tensor::from_vec(&[1, n], row.iter().map(|x| x + shift).collect());
        let s1 = base.softmax_rows();
        let s2 = shifted.softmax_rows();
        for (a, b) in s1.data().iter().zip(s2.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4, "softmax must ignore constant shifts");
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(4, 6)) {
        let s = t.softmax_rows();
        for r in 0..4 {
            let row = s.row(r);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
            let total: f32 = row.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn huber_bounded_by_half_mse(pred in prop::collection::vec(-5.0f32..5.0, 1..20),
                                 target in prop::collection::vec(-5.0f32..5.0, 1..20)) {
        let n = pred.len().min(target.len());
        let p = Tensor::vector(pred[..n].to_vec());
        let t = Tensor::vector(target[..n].to_vec());
        let (h, _) = loss::huber(&p, &t, 1.0);
        let (m, _) = loss::mse(&p, &t);
        // Huber is everywhere ≤ quadratic/2 and non-negative.
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 0.5 * m + 1e-5, "huber {h} vs mse/2 {}", 0.5 * m);
    }

    #[test]
    fn huber_gradient_is_bounded(pred in prop::collection::vec(-100.0f32..100.0, 1..20)) {
        let n = pred.len();
        let p = Tensor::vector(pred);
        let t = Tensor::zeros(&[n]);
        let (_, g) = loss::huber(&p, &t, 1.0);
        // |grad| per element is at most delta / n.
        let bound = 1.0 / n as f32 + 1e-6;
        prop_assert!(g.data().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn cross_entropy_is_nonnegative(logits in prop::collection::vec(-10.0f32..10.0, 2..8),
                                    label_pick in 0usize..8) {
        let n = logits.len();
        let label = label_pick % n;
        let t = Tensor::from_vec(&[1, n], logits);
        let (l, g) = loss::softmax_cross_entropy(&t, &[label]);
        prop_assert!(l >= 0.0);
        // Gradient sums to ~0 (softmax minus one-hot).
        let sum: f32 = g.data().iter().sum();
        prop_assert!(sum.abs() < 1e-4);
    }

    #[test]
    fn mlp_snapshot_roundtrip_is_exact(seed in 0u64..500, hidden in 1usize..32) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Mlp::new(&[6, hidden, 3], Activation::Relu, &mut rng);
        let rebuilt = Mlp::from_snapshot(&net.snapshot(), Activation::Relu);
        let x = Tensor::from_vec(&[2, 6], (0..12).map(|i| (i as f32).sin()).collect());
        prop_assert_eq!(net.forward_inference(&x), rebuilt.forward_inference(&x));
    }

    #[test]
    fn relu_and_leaky_are_monotone(xs in prop::collection::vec(-10.0f32..10.0, 1..30)) {
        let mut sorted = xs.clone();
        sorted.sort_by(f32::total_cmp);
        for act in [Activation::Relu, Activation::LeakyRelu, Activation::Tanh] {
            let y = act.forward(&Tensor::vector(sorted.clone()));
            for pair in y.data().windows(2) {
                prop_assert!(pair[0] <= pair[1] + 1e-6, "{act:?} must be monotone");
            }
        }
    }
}
