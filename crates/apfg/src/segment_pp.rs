//! Segment-PP: the lightweight 3D-filter cascade baseline model.
//!
//! Segment-PP "uses a lightweight 3D-CNN filter on all non-overlapping
//! segments in the video to quickly eliminate segments that do not satisfy
//! the query predicate. The R3D model then processes the filtered segments"
//! (§6.1). The filter is cheap (see `zeus-sim::CostModel::light3d_invocation`)
//! but weak: it "cannot capture the inherent complexity of actions" —
//! F1 as low as 0.2 on hard classes, decent on "the easier LeftTurn class"
//! (§6.2). We model the filter's error rates as functions of the class's
//! scene complexity.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use zeus_video::scene::mix2;
use zeus_video::{ActionClass, Video};

use crate::traits::{union_traits, QueryTraits};

/// The lightweight 3D filter stage of the Segment-PP cascade.
#[derive(Debug, Clone)]
pub struct SegmentPpFilter {
    classes: Vec<ActionClass>,
    traits: QueryTraits,
    seed: u64,
    /// Domain shift for §6.6 (0 in-domain).
    pub domain_shift: f64,
}

impl SegmentPpFilter {
    /// Build a filter for a query over `classes`.
    pub fn new(classes: Vec<ActionClass>, seed: u64) -> Self {
        assert!(!classes.is_empty(), "need at least one target class");
        let traits = union_traits(&classes);
        SegmentPpFilter {
            classes,
            traits,
            seed,
            domain_shift: 0.0,
        }
    }

    /// Apply a domain shift (§6.6).
    pub fn with_domain_shift(mut self, shift: f64) -> Self {
        assert!((0.0..=1.0).contains(&shift));
        self.domain_shift = shift;
        self
    }

    /// The query's difficulty traits.
    pub fn traits(&self) -> QueryTraits {
        self.traits
    }

    /// Probability the filter passes a segment that truly contains action
    /// frames. Falls sharply with scene complexity: LeftTurn (κ=0.35)
    /// keeps ~0.76, PoleVault (κ=0.85) only ~0.48.
    pub fn pass_rate_positive(&self) -> f64 {
        let base = 0.95 - 0.55 * self.traits.scene_complexity;
        (base * (1.0 - 1.5 * self.domain_shift)).clamp(0.05, 1.0)
    }

    /// Probability the filter passes a segment with no action (wasted R3D
    /// work + potential downstream false positives).
    pub fn pass_rate_negative(&self) -> f64 {
        ((0.05 + 0.28 * self.traits.scene_complexity) * (1.0 + 2.0 * self.domain_shift))
            .clamp(0.0, 0.9)
    }

    /// Filter decision for the segment `[start, start + len)`. `true`
    /// means the segment survives to the full R3D stage. Deterministic in
    /// `(seed, video, start)`.
    pub fn passes(&self, video: &Video, start: usize, len: usize) -> bool {
        let end = (start + len).min(video.num_frames);
        let positive = video.any_action_in(&self.classes, start, end);
        let p = if positive {
            self.pass_rate_positive()
        } else {
            self.pass_rate_negative()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(mix2(self.seed, mix2(video.seed, start as u64)));
        rng.gen::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionInterval, VideoId};

    fn video() -> Video {
        Video {
            id: VideoId(0),
            num_frames: 1000,
            fps: 30.0,
            seed: 11,
            intervals: vec![ActionInterval::new(200, 400, ActionClass::PoleVault)],
        }
    }

    #[test]
    fn deterministic() {
        let f = SegmentPpFilter::new(vec![ActionClass::PoleVault], 7);
        let v = video();
        assert_eq!(f.passes(&v, 200, 16), f.passes(&v, 200, 16));
    }

    #[test]
    fn easy_class_filters_well_hard_class_poorly() {
        let easy = SegmentPpFilter::new(vec![ActionClass::LeftTurn], 7);
        let hard = SegmentPpFilter::new(vec![ActionClass::PoleVault], 7);
        assert!(easy.pass_rate_positive() > hard.pass_rate_positive());
        assert!(easy.pass_rate_negative() < hard.pass_rate_negative());
        // LeftTurn keeps most true segments — the §6.2 "better accuracy on
        // the easier LeftTurn class".
        assert!(easy.pass_rate_positive() > 0.7);
        // PoleVault misses half — the F1-0.2..0.6 regime.
        assert!(hard.pass_rate_positive() < 0.55);
    }

    #[test]
    fn empirical_rates_match_model() {
        let f = SegmentPpFilter::new(vec![ActionClass::PoleVault], 9);
        let v = video();
        let pos_pass = (200..400)
            .step_by(16)
            .filter(|&s| f.passes(&v, s, 16))
            .count() as f64
            / 13.0;
        assert!(
            (pos_pass - f.pass_rate_positive()).abs() < 0.3,
            "empirical {pos_pass} vs model {}",
            f.pass_rate_positive()
        );
    }

    #[test]
    fn domain_shift_degrades() {
        let base = SegmentPpFilter::new(vec![ActionClass::LeftTurn], 7);
        let shifted = base.clone().with_domain_shift(0.08);
        assert!(shifted.pass_rate_positive() < base.pass_rate_positive());
        assert!(shifted.pass_rate_negative() > base.pass_rate_negative());
    }
}
