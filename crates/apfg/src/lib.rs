//! # zeus-apfg
//!
//! The Adaptive Proxy Feature Generator (APFG) and the proxy models of the
//! baselines.
//!
//! In the paper (§3), the APFG is an R3D-18 network fine-tuned from
//! Kinetics-400 weights that, for a segment extracted under a
//! `(resolution, segment length, sampling rate)` configuration, produces
//! (a) a **ProxyFeature** — the penultimate-layer embedding — and (b) a
//! binary ACTION / NO-ACTION prediction. The RL agent consumes the feature;
//! the classifier head consumes it too.
//!
//! Training a full R3D-18 is GPU-gated, so this crate provides the APFG at
//! two fidelities behind one interface ([`feature::FeatureGenerator`]):
//!
//! * [`r3d_lite::R3dLite`] — a real (small) 3D-CNN built on `zeus-nn` that
//!   convolves actual rendered pixels. It proves the full pixel → feature →
//!   classification path runs and *learns* in pure Rust; examples and tests
//!   use it at small scale.
//! * [`simulated::SimulatedApfg`] — a calibrated behavioural model used by
//!   the benchmark harness. Its detection process is mechanistic, not a
//!   lookup table: a segment is detected only if the sampling pattern
//!   actually hits action frames (coarse sampling can *skip* short actions
//!   entirely), per-sampled-frame discriminability falls with resolution
//!   and with motion aliasing at coarse sampling (scaled by the class's
//!   temporal dependence), and false positives rise at low resolution.
//!   Per-configuration accuracies (the paper's Tables 2 and 4) then
//!   *emerge* from profiling, exactly as the paper computes them
//!   ("in a one-time pre-processing step ... on a held-out validation
//!   dataset", §4.2).
//!
//! The baselines' proxy models live here too: [`frame_pp::FramePpModel`]
//! (per-frame 2D CNN) and [`segment_pp::SegmentPpFilter`] (lightweight 3D
//! filter cascade), with their characteristic failure modes — frame models
//! cannot see motion direction (temporal dependence), light filters cannot
//! capture scene complexity (§6.2).

#![warn(missing_docs)]
pub mod cache;
pub mod config;
pub mod feature;
pub mod frame_pp;
pub mod r3d_lite;
pub mod segment_pp;
pub mod simulated;
pub mod traits;

pub use cache::FeatureCache;
pub use config::Configuration;
pub use feature::{ApfgOutput, FeatureGenerator, FEATURE_DIM};
pub use simulated::{SimParams, SimulatedApfg};
pub use traits::QueryTraits;
