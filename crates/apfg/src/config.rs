//! The Configuration tuple: the three input knobs of §1/§3.

use serde::{Deserialize, Serialize};

/// A concrete setting of the three input knobs (§3):
/// `(Resolution, Segment Length, Sampling Rate)`.
///
/// Applied at frame `f`, a configuration covers video span `[f, f + l·s)`
/// and feeds the APFG `l` frames sampled once every `s` frames at
/// `r × r` pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Configuration {
    /// Frame side length in pixels (square frames, §3).
    pub resolution: usize,
    /// Number of frames fed to the network.
    pub seg_len: usize,
    /// Sampling stride: one frame kept every `sampling_rate` frames.
    pub sampling_rate: usize,
}

impl Configuration {
    /// Construct a configuration; all knobs must be positive.
    pub fn new(resolution: usize, seg_len: usize, sampling_rate: usize) -> Self {
        assert!(
            resolution > 0 && seg_len > 0 && sampling_rate > 0,
            "knobs must be positive: ({resolution}, {seg_len}, {sampling_rate})"
        );
        Configuration {
            resolution,
            seg_len,
            sampling_rate,
        }
    }

    /// Video frames covered by one invocation: `l · s`.
    pub fn frames_covered(&self) -> usize {
        self.seg_len * self.sampling_rate
    }

    /// Input voxels processed per invocation: `l · r²` (per channel).
    pub fn voxels(&self) -> usize {
        self.seg_len * self.resolution * self.resolution
    }
}

impl std::fmt::Display for Configuration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {})",
            self.resolution, self.seg_len, self.sampling_rate
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure6_configs() {
        // Figure 6 uses (150, 8, 8): covers 64 frames per step.
        let fast = Configuration::new(150, 8, 8);
        assert_eq!(fast.frames_covered(), 64);
        // (300, 4, 1): covers 4 frames.
        let slow = Configuration::new(300, 4, 1);
        assert_eq!(slow.frames_covered(), 4);
    }

    #[test]
    fn voxels() {
        let c = Configuration::new(10, 4, 2);
        assert_eq!(c.voxels(), 400);
    }

    #[test]
    fn display_matches_paper_notation() {
        let c = Configuration::new(150, 8, 8);
        assert_eq!(c.to_string(), "(150, 8, 8)");
    }

    #[test]
    #[should_panic(expected = "knobs must be positive")]
    fn zero_knob_panics() {
        let _ = Configuration::new(100, 0, 1);
    }
}
