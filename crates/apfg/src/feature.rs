//! The `FeatureGenerator` interface and `ProxyFeature` layout.

use zeus_video::Video;

use crate::config::Configuration;

/// Dimensionality of a ProxyFeature vector.
///
/// The paper's R3D emits 512-d embeddings; the information the RL agent
/// actually exploits is low-dimensional (segment evidence, boundary
/// signals, configuration identity), so the simulated APFG emits a compact
/// 16-d vector: 4 evidence channels, 1 prediction channel, 4 configuration
/// channels, and 7 distractor/noise channels that stand in for the
/// uninformative directions of a real embedding.
pub const FEATURE_DIM: usize = 16;

/// Output of one APFG invocation over a segment.
#[derive(Debug, Clone, PartialEq)]
pub struct ApfgOutput {
    /// The ProxyFeature vector (length [`FEATURE_DIM`] for the simulated
    /// APFG; model-defined for real networks).
    pub feature: Vec<f32>,
    /// Binary prediction: `true` = ACTION present in the segment.
    pub prediction: bool,
    /// Model confidence for the positive class, in `[0, 1]`.
    pub confidence: f32,
}

/// Anything that can act as the APFG: maps `(video, position, config)` to a
/// ProxyFeature and a prediction.
///
/// Implementations: [`crate::simulated::SimulatedApfg`] (benchmarks),
/// [`crate::r3d_lite::R3dLite`] via its adapter (real pixels, examples).
pub trait FeatureGenerator {
    /// Feature vector length this generator emits.
    fn feature_dim(&self) -> usize;

    /// Process the segment starting at `start` under `config`.
    ///
    /// `start` must be a valid frame index of `video`.
    fn process(&self, video: &Video, start: usize, config: Configuration) -> ApfgOutput;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl FeatureGenerator for Dummy {
        fn feature_dim(&self) -> usize {
            2
        }
        fn process(&self, _video: &Video, start: usize, _config: Configuration) -> ApfgOutput {
            ApfgOutput {
                feature: vec![start as f32, 1.0],
                prediction: start.is_multiple_of(2),
                confidence: 0.5,
            }
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let gens: Vec<Box<dyn FeatureGenerator>> = vec![Box::new(Dummy)];
        let video = zeus_video::Video {
            id: zeus_video::VideoId(0),
            num_frames: 10,
            fps: 30.0,
            seed: 0,
            intervals: vec![],
        };
        let out = gens[0].process(&video, 4, Configuration::new(100, 2, 1));
        assert_eq!(out.feature, vec![4.0, 1.0]);
        assert!(out.prediction);
    }
}
