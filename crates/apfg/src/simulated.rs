//! The calibrated behavioural APFG model used by the benchmark harness.
//!
//! ## Mechanics (why accuracies *emerge* instead of being tabulated)
//!
//! One invocation over the span `[f, f + l·s)` samples `l` frames at stride
//! `s`. Detection is mechanistic:
//!
//! 1. **Sampling can miss**: only sampled frames carry evidence. With a
//!    coarse stride a short action can fall entirely between samples —
//!    then the model *cannot* detect it (this is what collapses accuracy
//!    for fast configurations on BDD100K's 6-frame-minimum actions, the
//!    effect behind Table 2's 0.57-F1 row and the §6.1 remark that "large
//!    windows just completely skip the action").
//! 2. **Per-sample discriminability** `q` falls with resolution
//!    (`(r/r_max)^k`), with motion aliasing at coarse sampling (scaled by
//!    the class's temporal dependence), with the §5 model-reuse
//!    approximation when running below the trained resolution, and with
//!    domain shift (§6.6). Detection of a segment with `e` sampled action
//!    frames succeeds with probability `1 - (1-q)^e`.
//! 3. **False positives** rise at low resolution and for harder classes.
//!
//! The ProxyFeature encodes noisy segment evidence — overall/leading/
//! trailing action fractions, and a *precursor* channel (how imminent the
//! next action is, standing in for visual pre-cues like a pedestrian
//! approaching the curb; Figure 6's "possibility of CrossRight at the end
//! of the segment"). Noise grows as configurations get faster, reproducing
//! §6.3's observation that low-accuracy configurations give the agent
//! noisy features.
//!
//! Everything is deterministic given `(apfg seed, video seed, start,
//! config)`.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use zeus_video::scene::mix2;
use zeus_video::{ActionClass, DatasetKind, Video};

use crate::config::Configuration;
use crate::feature::{ApfgOutput, FeatureGenerator, FEATURE_DIM};
use crate::traits::{union_traits, QueryTraits};

/// Tunable constants of the behavioural model. Defaults are calibrated so
/// that profiling the BDD100K configuration space reproduces the paper's
/// Table 2 F1 column and Table 4 max-accuracy column (see
/// `zeus-core::planner` tests).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Per-sampled-action-frame detection probability at the best
    /// configuration for a perfectly detectable class.
    pub q_base: f64,
    /// Exponent of the resolution factor `(r / r_max)^res_exponent`.
    pub res_exponent: f64,
    /// Strength of motion aliasing at coarse sampling:
    /// `q *= 1 - alias_strength · τ · (1 - 1/s)`.
    pub alias_strength: f64,
    /// Extra discriminability loss from §5 model reuse when running below
    /// the trained resolution: `q *= 1 - reuse_penalty · (1 - f_res)`.
    pub reuse_penalty: f64,
    /// False-positive rate per invocation at the best resolution.
    pub fp_base: f64,
    /// Additional false-positive rate at the lowest resolutions.
    pub fp_res: f64,
    /// False-positive inflation for hard classes:
    /// `fp *= 1 + fp_difficulty · (1 - max_accuracy)`.
    pub fp_difficulty: f64,
    /// Fraction of action *instances* that are intrinsically undetectable
    /// (occlusion, framing, unusual appearance), as a multiple of
    /// `(1 - max_accuracy)`. Hardness is assigned per instance, not per
    /// invocation: an instance the network cannot recognise stays missed
    /// at every configuration, which is what makes Table 4's ceiling a
    /// real recall cap (per-invocation noise would be averaged away by
    /// the IoU window threshold).
    pub hard_instance_rate: f64,
    /// Detection evidence saturates after this many sampled action frames:
    /// more frames of an un-resolvable (too-low-resolution) subject do not
    /// make it resolvable, keeping resolution relevant on long segments.
    pub evidence_cap: usize,
    /// Prediction flip probability when the span straddles an action
    /// boundary — "frames before, during, and after the scene of the
    /// action can be visually indistinguishable" (§2). Boundary spans are
    /// a larger fraction of fast configurations' coverage, which is part
    /// of why their profiled F1 collapses (Table 2).
    pub boundary_flip: f64,
    /// Feature noise floor (std of evidence channels).
    pub noise_base: f64,
    /// Additional noise at low resolution.
    pub noise_res: f64,
    /// Additional noise at coarse sampling.
    pub noise_samp: f64,
    /// Domain-shift discriminability loss: `q *= 1 - domain_q · shift`.
    pub domain_q: f64,
    /// Domain-shift false-positive inflation: `fp *= 1 + domain_fp·shift`.
    pub domain_fp: f64,
    /// Precursor visibility horizon, as a multiple of the *maximum* span
    /// (`max_seg_len · max_sampling`). The horizon is absolute — visual
    /// pre-cues (a pedestrian approaching the curb) are scene structure,
    /// visible whenever the model looks, regardless of how short the
    /// current segment is. (A span-relative horizon makes slowing down
    /// blind the agent, which destabilises any adaptive policy.)
    pub precursor_lookahead: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            q_base: 0.80,
            res_exponent: 0.75,
            alias_strength: 0.40,
            reuse_penalty: 0.08,
            fp_base: 0.004,
            fp_res: 0.014,
            fp_difficulty: 1.0,
            hard_instance_rate: 0.85,
            evidence_cap: 6,
            boundary_flip: 0.22,
            noise_base: 0.05,
            noise_res: 0.18,
            noise_samp: 0.08,
            domain_q: 1.0,
            domain_fp: 3.0,
            precursor_lookahead: 4.0,
        }
    }
}

/// Accuracy degradation when a model trained on one corpus runs on another
/// (§6.6). Zero in-domain; larger for KITTI than Cityscapes (residential
/// scenes diverge more from BDD's urban mix); scaled by class complexity
/// (the paper observes a larger drop for CrossRight than LeftTurn).
pub fn domain_shift(from: DatasetKind, to: DatasetKind, classes: &[ActionClass]) -> f64 {
    if from == to {
        return 0.0;
    }
    let base = match to {
        DatasetKind::Cityscapes => 0.045,
        DatasetKind::Kitti => 0.070,
        _ => 0.055,
    };
    let traits = union_traits(classes);
    base * (0.5 + traits.scene_complexity)
}

/// The behavioural APFG.
#[derive(Debug, Clone)]
pub struct SimulatedApfg {
    classes: Vec<ActionClass>,
    traits: QueryTraits,
    params: SimParams,
    max_resolution: usize,
    max_seg_len: usize,
    max_sampling: usize,
    seed: u64,
    model_reuse: bool,
    domain_shift: f64,
    feature_skew: f64,
}

impl SimulatedApfg {
    /// Build an APFG for a query over `classes`, normalising knobs against
    /// the dataset's knob maxima (Table 4 knob settings).
    pub fn new(
        classes: Vec<ActionClass>,
        max_resolution: usize,
        max_seg_len: usize,
        max_sampling: usize,
        seed: u64,
    ) -> Self {
        assert!(!classes.is_empty(), "need at least one target class");
        assert!(
            max_resolution > 0 && max_seg_len > 0 && max_sampling > 0,
            "knob maxima must be positive"
        );
        let traits = union_traits(&classes);
        SimulatedApfg {
            classes,
            traits,
            params: SimParams::default(),
            max_resolution,
            max_seg_len,
            max_sampling,
            seed,
            model_reuse: true,
            domain_shift: 0.0,
            feature_skew: 0.0,
        }
    }

    /// Override the behavioural constants.
    pub fn with_params(mut self, params: SimParams) -> Self {
        self.params = params;
        self
    }

    /// Toggle the §5 model-reuse approximation (default on). Off = a
    /// per-configuration ensemble: slightly more accurate, far costlier to
    /// train (the ablation the paper discusses in §5).
    pub fn with_model_reuse(mut self, reuse: bool) -> Self {
        self.model_reuse = reuse;
        self
    }

    /// Apply a domain shift (see [`domain_shift`]) for §6.6 experiments.
    pub fn with_domain_shift(mut self, shift: f64) -> Self {
        assert!((0.0..=1.0).contains(&shift), "shift must be in [0, 1]");
        self.domain_shift = shift;
        self
    }

    /// Skew the feature distribution, emulating an RL agent consuming
    /// features from a *different* class's APFG (§6.5 cross-model
    /// inference). `skew = 1 - class_similarity(trained, target)`.
    pub fn with_feature_skew(mut self, skew: f64) -> Self {
        assert!((0.0..=1.0).contains(&skew), "skew must be in [0, 1]");
        self.feature_skew = skew;
        self
    }

    /// The query classes this APFG serves.
    pub fn classes(&self) -> &[ActionClass] {
        &self.classes
    }

    /// The derived difficulty traits.
    pub fn traits(&self) -> QueryTraits {
        self.traits
    }

    /// Whether model reuse (§5) is active.
    pub fn model_reuse(&self) -> bool {
        self.model_reuse
    }

    fn res_factor(&self, resolution: usize) -> f64 {
        let r = (resolution as f64 / self.max_resolution as f64).min(1.0);
        r.powf(self.params.res_exponent)
    }

    /// Per-sampled-action-frame discriminability under `config`.
    pub fn discriminability(&self, config: Configuration) -> f64 {
        let p = &self.params;
        let f_res = self.res_factor(config.resolution);
        let alias = 1.0
            - p.alias_strength
                * self.traits.temporal_dependence
                * (1.0 - 1.0 / config.sampling_rate as f64);
        let reuse = if self.model_reuse {
            1.0 - p.reuse_penalty * (1.0 - f_res)
        } else {
            1.0
        };
        let domain = 1.0 - p.domain_q * self.domain_shift;
        // Class ceiling: harder classes (lower Table 4 max accuracy) have
        // inherently weaker per-frame evidence.
        let class_scale = self.traits.max_accuracy.powi(2);
        (p.q_base * class_scale * f_res * alias * reuse * domain).clamp(0.0, 1.0)
    }

    /// Per-invocation false-positive probability under `config`.
    pub fn false_positive_rate(&self, config: Configuration) -> f64 {
        let p = &self.params;
        let f_res = self.res_factor(config.resolution);
        let fp = (p.fp_base + p.fp_res * (1.0 - f_res))
            * (1.0 + p.fp_difficulty * (1.0 - self.traits.max_accuracy))
            * (1.0 + p.domain_fp * self.domain_shift);
        fp.clamp(0.0, 0.5)
    }

    /// Std of the evidence-channel noise under `config`.
    pub fn feature_noise(&self, config: Configuration) -> f64 {
        let p = &self.params;
        let f_res = self.res_factor(config.resolution);
        p.noise_base
            + p.noise_res * (1.0 - f_res)
            + p.noise_samp * (1.0 - 1.0 / config.sampling_rate as f64)
    }

    /// Whether an action instance is intrinsically undetectable for this
    /// model (deterministic per (apfg seed, video, interval)).
    pub fn is_hard_instance(&self, video: &Video, interval_start: usize) -> bool {
        let p_hard =
            (self.params.hard_instance_rate * (1.0 - self.traits.max_accuracy)).clamp(0.0, 1.0);
        let h = mix2(self.seed ^ 0x4A8D, mix2(video.seed, interval_start as u64));
        (h as f64 / u64::MAX as f64) < p_hard
    }

    /// Target-class intervals minus the intrinsically hard ones.
    fn visible_intervals(&self, video: &Video) -> Vec<zeus_video::ActionInterval> {
        video
            .intervals_of(&self.classes)
            .into_iter()
            .filter(|iv| !self.is_hard_instance(video, iv.start))
            .collect()
    }

    fn rng_for(&self, video: &Video, start: usize, config: Configuration) -> ChaCha8Rng {
        let ch = mix2(
            config.resolution as u64,
            mix2(config.seg_len as u64, config.sampling_rate as u64),
        );
        let s = mix2(self.seed, mix2(video.seed, mix2(start as u64, ch)));
        ChaCha8Rng::seed_from_u64(s)
    }
}

/// Standard normal sample via Box–Muller.
fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

impl FeatureGenerator for SimulatedApfg {
    fn feature_dim(&self) -> usize {
        FEATURE_DIM
    }

    fn process(&self, video: &Video, start: usize, config: Configuration) -> ApfgOutput {
        assert!(start < video.num_frames, "start {start} out of range");
        let mut rng = self.rng_for(video, start, config);

        let span_end = (start + config.frames_covered()).min(video.num_frames);
        let span_len = span_end - start;
        let indices = zeus_video::segment::sample_indices(
            start,
            config.seg_len,
            config.sampling_rate,
            video.num_frames,
        );

        // Evidence: sampled frames that are action frames of a *visible*
        // (not intrinsically hard) instance.
        let visible = self.visible_intervals(video);
        let evidence = indices
            .iter()
            .filter(|&&i| visible.iter().any(|iv| iv.contains(i)))
            .count()
            .min(self.params.evidence_cap);

        // --- Classification ---
        let (mut prediction, confidence) = if evidence == 0 {
            // Nothing sampled shows the action (possibly because the
            // stride skipped it entirely): only a false positive can fire.
            let fp = self.false_positive_rate(config);
            let fired = rng.gen::<f64>() < fp;
            (
                fired,
                if fired {
                    0.5 + 0.3 * rng.gen::<f64>()
                } else {
                    fp
                },
            )
        } else {
            let q = self.discriminability(config);
            let p_detect = 1.0 - (1.0 - q).powi(evidence as i32);
            let fired = rng.gen::<f64>() < p_detect;
            (fired, p_detect.clamp(0.0, 1.0))
        };
        // Boundary ambiguity: spans straddling a (visible) action start or
        // end are the visually indistinguishable regime of §2 — confusion
        // both ways.
        let straddles_boundary = visible.iter().any(|iv| {
            (iv.start > start && iv.start < span_end) || (iv.end > start && iv.end < span_end)
        });
        if straddles_boundary && rng.gen::<f64>() < self.params.boundary_flip {
            prediction = !prediction;
        }

        // --- ProxyFeature synthesis ---
        let sigma = self.feature_noise(config);
        let noisy = |v: f64, rng: &mut ChaCha8Rng| (v + sigma * normal(rng)).clamp(0.0, 1.0) as f32;

        let frac = |s: usize, e: usize| {
            if e <= s {
                return 0.0;
            }
            let frames = visible.iter().map(|iv| iv.overlap(s, e)).sum::<usize>();
            frames as f64 / (e - s) as f64
        };
        let overall = frac(start, span_end);
        let quarter = (span_len / 4).max(1);
        let leading = frac(start, start + quarter);
        let trailing = frac(span_end.saturating_sub(quarter), span_end);

        // Precursor: imminence of the next action start after the span,
        // within `precursor_lookahead · max_span` frames (absolute horizon).
        let max_span = (self.max_seg_len * self.max_sampling) as f64;
        let lookahead = (max_span * self.params.precursor_lookahead) as usize;
        let next_start = visible
            .iter()
            .map(|iv| iv.start)
            .filter(|&s| s >= span_end && s < span_end + lookahead.max(1))
            .min();
        let precursor = match next_start {
            Some(s) if lookahead > 0 => 1.0 - (s - span_end) as f64 / lookahead as f64,
            _ => 0.0,
        };

        let mut feature = vec![0.0f32; FEATURE_DIM];
        feature[0] = noisy(overall, &mut rng);
        feature[1] = noisy(trailing, &mut rng);
        feature[2] = noisy(leading, &mut rng);
        // Precursor cues (an entity approaching the scene of the action)
        // are large-scale visual structure — visible even at low
        // resolution, so the channel carries half the evidence noise.
        feature[3] = (precursor + 0.5 * sigma * normal(&mut rng)).clamp(0.0, 1.0) as f32;
        feature[4] = if prediction { 1.0 } else { 0.0 };
        feature[5] = confidence as f32;
        feature[6] = (config.resolution as f64 / self.max_resolution as f64) as f32;
        feature[7] = (config.seg_len as f64 / self.max_seg_len as f64) as f32;
        feature[8] = (config.sampling_rate as f64 / self.max_sampling as f64) as f32;
        feature[9] = (span_len as f64 / config.frames_covered() as f64) as f32;
        for slot in feature.iter_mut().take(FEATURE_DIM).skip(10) {
            *slot = (0.3 * normal(&mut rng)) as f32;
        }

        // Cross-model skew: attenuate + perturb the evidence channels the
        // way a sibling class's embedding would shift them.
        if self.feature_skew > 0.0 {
            let k = self.feature_skew;
            for f in feature.iter_mut().take(4) {
                *f = (*f as f64 * (1.0 - 0.5 * k) + 0.3 * k * normal(&mut rng)).clamp(0.0, 1.0)
                    as f32;
            }
        }

        ApfgOutput {
            feature,
            prediction,
            confidence: confidence as f32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionInterval, VideoId};

    fn video_with_action(start: usize, end: usize) -> Video {
        Video {
            id: VideoId(0),
            num_frames: 1000,
            fps: 30.0,
            seed: 77,
            intervals: vec![ActionInterval::new(start, end, ActionClass::CrossRight)],
        }
    }

    fn apfg() -> SimulatedApfg {
        SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 42)
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let v = video_with_action(100, 200);
        let a = apfg();
        let c = Configuration::new(300, 4, 1);
        let o1 = a.process(&v, 120, c);
        let o2 = a.process(&v, 120, c);
        assert_eq!(o1, o2);
    }

    #[test]
    fn different_positions_differ() {
        let v = video_with_action(100, 200);
        let a = apfg();
        let c = Configuration::new(300, 4, 1);
        let o1 = a.process(&v, 120, c);
        let o2 = a.process(&v, 124, c);
        assert_ne!(o1.feature, o2.feature);
    }

    #[test]
    fn slow_config_detects_action_reliably() {
        let v = video_with_action(100, 300);
        let a = apfg();
        let c = Configuration::new(300, 8, 1);
        let hits = (0..50)
            .map(|i| 100 + i * 4)
            .filter(|&s| a.process(&v, s, c).prediction)
            .count();
        assert!(
            hits >= 45,
            "slow config should almost always detect: {hits}/50"
        );
    }

    #[test]
    fn sampling_can_skip_short_actions_entirely() {
        // A 6-frame action between samples of an s=8 stride is invisible.
        let v = video_with_action(101, 107);
        let a = apfg();
        let c = Configuration::new(300, 8, 8); // samples 96, 104, ... wait
                                               // Start at 96: samples 96,104,112,...; 104 ∈ [101,107) → evidence.
                                               // Start at 88: samples 88,96,104,... also hits.
                                               // Start at 90: samples 90,98,106 → 106 ∈ [101,107) hits.
                                               // Start at 91: samples 91,99,107,115 → no action frame sampled.
        let out = a.process(&v, 91, c);
        // Evidence is zero, so only a (rare) false positive could fire;
        // the evidence feature channel must be near zero.
        assert!(
            out.feature[0] < 0.5,
            "no sampled evidence should be visible"
        );
        let q = a.discriminability(c);
        assert!(q > 0.0, "sanity: q positive");
    }

    #[test]
    fn discriminability_monotone_in_resolution_and_sampling() {
        let a = apfg();
        let q_hi = a.discriminability(Configuration::new(300, 4, 1));
        let q_mid = a.discriminability(Configuration::new(200, 4, 1));
        let q_lo = a.discriminability(Configuration::new(150, 4, 1));
        assert!(q_hi > q_mid && q_mid > q_lo);
        let q_s1 = a.discriminability(Configuration::new(300, 4, 1));
        let q_s8 = a.discriminability(Configuration::new(300, 4, 8));
        assert!(q_s1 > q_s8, "coarse sampling must lose discriminability");
    }

    #[test]
    fn false_positive_rate_rises_at_low_resolution() {
        let a = apfg();
        assert!(
            a.false_positive_rate(Configuration::new(150, 4, 1))
                > a.false_positive_rate(Configuration::new(300, 4, 1))
        );
    }

    #[test]
    fn harder_class_is_less_discriminable() {
        let easy = SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 1);
        let hard = SimulatedApfg::new(vec![ActionClass::CleanAndJerk], 160, 64, 8, 1);
        let c_easy = Configuration::new(300, 8, 1);
        let c_hard = Configuration::new(160, 64, 1);
        // Compare at each class's own best config (f_res = 1 for both).
        assert!(easy.discriminability(c_easy) > hard.discriminability(c_hard));
    }

    #[test]
    fn domain_shift_degrades_both_error_channels() {
        let base = apfg();
        let shifted = apfg().with_domain_shift(0.08);
        let c = Configuration::new(300, 4, 1);
        assert!(shifted.discriminability(c) < base.discriminability(c));
        assert!(shifted.false_positive_rate(c) > base.false_positive_rate(c));
    }

    #[test]
    fn model_reuse_costs_accuracy_below_trained_resolution() {
        let reuse = apfg();
        let ensemble = apfg().with_model_reuse(false);
        let low = Configuration::new(150, 4, 1);
        let top = Configuration::new(300, 4, 1);
        assert!(ensemble.discriminability(low) > reuse.discriminability(low));
        // At the trained resolution they coincide.
        assert!((ensemble.discriminability(top) - reuse.discriminability(top)).abs() < 1e-12);
    }

    #[test]
    fn feature_noise_grows_with_faster_configs() {
        let a = apfg();
        assert!(
            a.feature_noise(Configuration::new(150, 8, 8))
                > a.feature_noise(Configuration::new(300, 8, 1))
        );
    }

    #[test]
    fn precursor_channel_signals_imminent_action() {
        let v = video_with_action(200, 300);
        let a = apfg();
        let c = Configuration::new(300, 8, 4); // span 32
                                               // Span [160,192): next action at 200 is 8 frames away, lookahead 64.
        let near = a.process(&v, 160, c).feature[3];
        // Span [0,32): action 168 frames away, beyond lookahead.
        let far = a.process(&v, 0, c).feature[3];
        assert!(near > far, "precursor near {near} vs far {far}");
    }

    #[test]
    fn feature_skew_perturbs_evidence_channels() {
        let v = video_with_action(100, 200);
        let base = apfg();
        let skewed = apfg().with_feature_skew(0.45);
        let c = Configuration::new(300, 8, 1);
        let fb = base.process(&v, 120, c);
        let fs = skewed.process(&v, 120, c);
        assert_ne!(fb.feature[0], fs.feature[0]);
        // Config channels are not skewed.
        assert_eq!(fb.feature[6], fs.feature[6]);
    }

    #[test]
    fn domain_shift_helper_shapes() {
        use DatasetKind::*;
        let cr = [ActionClass::CrossRight];
        let lt = [ActionClass::LeftTurn];
        assert_eq!(domain_shift(Bdd100k, Bdd100k, &cr), 0.0);
        // KITTI shifts more than Cityscapes; CrossRight more than LeftTurn.
        assert!(domain_shift(Bdd100k, Kitti, &lt) > domain_shift(Bdd100k, Cityscapes, &lt));
        assert!(domain_shift(Bdd100k, Cityscapes, &cr) > domain_shift(Bdd100k, Cityscapes, &lt));
    }

    #[test]
    fn feature_vector_has_fixed_dim_and_bounded_evidence() {
        let v = video_with_action(100, 200);
        let a = apfg();
        let out = a.process(&v, 50, Configuration::new(150, 8, 8));
        assert_eq!(out.feature.len(), FEATURE_DIM);
        for &f in &out.feature[0..4] {
            assert!(
                (0.0..=1.0).contains(&f),
                "evidence channel out of range: {f}"
            );
        }
    }
}
