//! R3dLite: a real (small) 3D-CNN over rendered pixels.
//!
//! The paper's APFG is R3D-18 (17 3D-conv layers, 33.4 M parameters,
//! Figure 3) fine-tuned from Kinetics-400. Training that network is
//! GPU-gated, so the benchmark harness uses the behavioural
//! [`crate::simulated::SimulatedApfg`]. This module exists to prove the
//! *architecture* runs end-to-end in pure Rust: two spatio-temporal 3D
//! convolution blocks, global average pooling, and a linear classification
//! head — the same dataflow as Figure 3, narrower and shallower. It really
//! trains (see tests and `examples/r3d_training.rs`) on segments rendered
//! by the scene model.

use rand::Rng;
use zeus_nn::conv::{Conv3d, GlobalAvgPool3d, VolumeShape};
use zeus_nn::optim::{Adam, Optimizer};
use zeus_nn::{loss, Activation, Linear, Tensor};
use zeus_video::segment::SegmentTensor;
use zeus_video::Video;

use crate::config::Configuration;
use crate::feature::{ApfgOutput, FeatureGenerator};

/// Number of channels in the feature embedding (the "ProxyFeature" this
/// network emits).
pub const R3D_LITE_FEATURES: usize = 16;

/// A small two-block 3D CNN: `conv(3→8, s2) → ReLU → conv(8→16, s2) →
/// ReLU → GAP → Linear(16→2)`.
#[derive(Debug, Clone)]
pub struct R3dLite {
    conv1: Conv3d,
    conv2: Conv3d,
    gap: GlobalAvgPool3d,
    head: Linear,
    // Caches for backward.
    cached: Option<ForwardCache>,
}

#[derive(Debug, Clone)]
struct ForwardCache {
    z1: Tensor,
    s1: VolumeShape,
    z2: Tensor,
}

impl R3dLite {
    /// Build with random (He) initialisation.
    pub fn new(rng: &mut impl Rng) -> Self {
        R3dLite {
            conv1: Conv3d::new(3, 8, 3, 2, 1, rng),
            conv2: Conv3d::new(8, R3D_LITE_FEATURES, 3, 2, 1, rng),
            gap: GlobalAvgPool3d::new(),
            head: Linear::new_xavier(R3D_LITE_FEATURES, 2, rng),
            cached: None,
        }
    }

    /// Forward pass over a `[3, L, H, W]` volume. Returns
    /// `(features, logits)` where `features` is the GAP embedding.
    pub fn forward(&mut self, volume: &[f32], dims: [usize; 4]) -> (Vec<f32>, Vec<f32>) {
        let shape = VolumeShape {
            c: dims[0],
            l: dims[1],
            h: dims[2],
            w: dims[3],
        };
        assert_eq!(shape.c, 3, "expected RGB input");
        // Centre the [0,1] pixel inputs so first-layer pre-activations are
        // balanced around zero (uncentered inputs + a bad first epoch can
        // kill every unit of a small network).
        let x = Tensor::vector(volume.iter().map(|v| v - 0.45).collect());
        let (z1, s1) = self.conv1.forward(&x, shape);
        let a1 = Activation::LeakyRelu.forward(&z1);
        let (z2, s2) = self.conv2.forward(&a1, s1);
        let a2 = Activation::LeakyRelu.forward(&z2);
        let feat = self.gap.forward(&a2, s2);
        let logits = self.head.forward(&Tensor::from_vec(
            &[1, R3D_LITE_FEATURES],
            feat.data().to_vec(),
        ));
        self.cached = Some(ForwardCache { z1, s1, z2 });
        (feat.data().to_vec(), logits.data().to_vec())
    }

    /// Backward pass from a gradient on the logits; accumulates all
    /// parameter gradients.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let cache = self
            .cached
            .as_ref()
            .expect("backward before forward")
            .clone();
        let g_feat = self.head.backward(grad_logits);
        let g_feat = Tensor::vector(g_feat.data().to_vec());
        let g_a2 = self.gap.backward(&g_feat);
        let g_z2 = Activation::LeakyRelu.backward(&cache.z2, &g_a2);
        let g_a1 = self.conv2.backward(&g_z2);
        let _ = cache.s1; // shape bookkeeping retained for clarity
        let g_z1 = Activation::LeakyRelu.backward(&cache.z1, &g_a1);
        let _ = self.conv1.backward(&g_z1);
    }

    fn zero_grad(&mut self) {
        for p in self
            .conv1
            .params_mut()
            .into_iter()
            .chain(self.conv2.params_mut())
            .chain(self.head.params_mut())
        {
            p.zero_grad();
        }
    }

    /// Train on labeled segments (true = ACTION). Returns the final epoch's
    /// mean loss.
    pub fn fit(&mut self, samples: &[(Vec<f32>, [usize; 4], bool)], epochs: usize, lr: f32) -> f32 {
        assert!(!samples.is_empty(), "need training samples");
        let mut opt = Adam::new(lr);
        let mut last = f32::MAX;
        for _ in 0..epochs {
            let mut total = 0.0f32;
            for (vol, dims, label) in samples {
                self.zero_grad();
                let (_, logits) = self.forward(vol, *dims);
                let logits_t = Tensor::from_vec(&[1, 2], logits);
                let (l, grad) = loss::softmax_cross_entropy(&logits_t, &[usize::from(*label)]);
                self.backward(&grad);
                let mut params: Vec<&mut zeus_nn::Param> = self
                    .conv1
                    .params_mut()
                    .into_iter()
                    .chain(self.conv2.params_mut())
                    .chain(self.head.params_mut())
                    .collect();
                opt.step(&mut params);
                total += l;
            }
            last = total / samples.len() as f32;
        }
        last
    }

    /// Classification accuracy on labeled segments.
    pub fn accuracy(&mut self, samples: &[(Vec<f32>, [usize; 4], bool)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(vol, dims, label)| {
                let (_, logits) = self.forward(vol, *dims);
                (logits[1] > logits[0]) == *label
            })
            .count();
        correct as f64 / samples.len() as f64
    }
}

/// Adapter exposing a trained [`R3dLite`] through the APFG interface.
///
/// Renders the segment under the configuration, runs the network, and
/// returns the GAP embedding as the ProxyFeature. Uses interior mutability
/// via cloning the (small) network per call to keep the trait object
/// shareable.
#[derive(Debug, Clone)]
pub struct R3dLiteGenerator {
    net: R3dLite,
}

impl R3dLiteGenerator {
    /// Wrap a trained network.
    pub fn new(net: R3dLite) -> Self {
        R3dLiteGenerator { net }
    }
}

impl FeatureGenerator for R3dLiteGenerator {
    fn feature_dim(&self) -> usize {
        R3D_LITE_FEATURES
    }

    fn process(&self, video: &Video, start: usize, config: Configuration) -> ApfgOutput {
        let seg = SegmentTensor::extract(
            video,
            start,
            config.resolution,
            config.seg_len,
            config.sampling_rate,
        )
        .expect("start out of range");
        let (vol, dims) = seg.to_volume();
        let mut net = self.net.clone();
        let (feature, logits) = net.forward(&vol, dims);
        let m = logits[0].max(logits[1]);
        let e0 = (logits[0] - m).exp();
        let e1 = (logits[1] - m).exp();
        let p1 = e1 / (e0 + e1);
        ApfgOutput {
            feature,
            prediction: p1 > 0.5,
            confidence: p1,
        }
    }
}

/// Build a balanced training set for a query from a video corpus:
/// `per_video` positive-window and negative-window samples per video,
/// rendered at `config`.
pub fn build_training_set(
    videos: &[&Video],
    classes: &[zeus_video::ActionClass],
    config: Configuration,
    per_video: usize,
) -> Vec<(Vec<f32>, [usize; 4], bool)> {
    let mut out = Vec::new();
    for v in videos {
        let mut pos = 0;
        let mut neg = 0;
        let stride = config.frames_covered();
        let mut start = 0;
        while start + stride <= v.num_frames && (pos < per_video || neg < per_video) {
            // Majority-overlap labels: a segment is positive when more
            // than half its span is action, so positives actually show
            // the entity in the sampled frames (cleaner training signal).
            let action = v.action_frames_in(classes, start, start + stride);
            let label = action * 2 > stride;
            if (label && pos < per_video) || (!label && neg < per_video) {
                if let Some(seg) = SegmentTensor::extract(
                    v,
                    start,
                    config.resolution,
                    config.seg_len,
                    config.sampling_rate,
                ) {
                    let (vol, dims) = seg.to_volume();
                    out.push((vol, dims, label));
                    if label {
                        pos += 1;
                    } else {
                        neg += 1;
                    }
                }
            }
            start += stride;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use zeus_video::{ActionClass, ActionInterval, VideoId};

    fn tiny_video(id: u32, with_action: bool) -> Video {
        let intervals = if with_action {
            vec![ActionInterval::new(4, 28, ActionClass::CrossRight)]
        } else {
            vec![]
        };
        Video {
            id: VideoId(id),
            num_frames: 32,
            fps: 30.0,
            seed: id as u64 * 31 + 7,
            intervals,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = R3dLite::new(&mut rng);
        let dims = [3usize, 2, 12, 12];
        let vol = vec![0.5f32; dims.iter().product()];
        let (feat, logits) = net.forward(&vol, dims);
        assert_eq!(feat.len(), R3D_LITE_FEATURES);
        assert_eq!(logits.len(), 2);
        assert!(feat.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn learns_to_separate_action_from_background() {
        // Small but real end-to-end training: 12x12 pixels, 2-frame
        // segments, a handful of videos. The entity brightness/motion is
        // the signal.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut net = R3dLite::new(&mut rng);

        let videos: Vec<Video> = (0..6).map(|i| tiny_video(i, i % 2 == 0)).collect();
        let refs: Vec<&Video> = videos.iter().collect();
        let config = Configuration::new(12, 2, 2);
        let samples = build_training_set(&refs, &[ActionClass::CrossRight], config, 3);
        assert!(samples.len() >= 12, "need a usable training set");
        let has_pos = samples.iter().any(|s| s.2);
        let has_neg = samples.iter().any(|s| !s.2);
        assert!(has_pos && has_neg, "training set must be mixed");

        let before = net.accuracy(&samples);
        let loss = net.fit(&samples, 30, 0.01);
        let after = net.accuracy(&samples);
        assert!(
            after >= 0.8,
            "R3dLite failed to learn: {before:.2} -> {after:.2} (loss {loss:.3})"
        );
    }

    #[test]
    fn generator_adapter_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = R3dLite::new(&mut rng);
        let g = R3dLiteGenerator::new(net);
        let v = tiny_video(0, true);
        let out = g.process(&v, 0, Configuration::new(12, 2, 2));
        assert_eq!(out.feature.len(), R3D_LITE_FEATURES);
        assert!((0.0..=1.0).contains(&out.confidence));
    }
}
