//! Per-query difficulty traits driving the behavioural APFG model.
//!
//! Three scalar traits characterise how hard a query is for each model
//! family, distilled from the paper's qualitative discussion (§1, §6.2,
//! §6.5) and its measured ceilings (Table 4):
//!
//! * `max_accuracy` — the best F1 any configuration reaches (Table 4
//!   reports this per query; e.g. CrossRight 0.91, CleanAndJerk 0.76).
//! * `temporal_dependence` — the fraction of the class signal that exists
//!   only across frames (motion direction, trajectory). High values cap
//!   Frame-PP: "frames before, during, and after the scene of the action
//!   can be visually indistinguishable" (§2). The CrossRight/CrossLeft
//!   union *lowers* it, because direction stops mattering — which is why
//!   Frame-PP does well on that union (§6.5).
//! * `scene_complexity` — how much inter-object interaction the class
//!   involves. High values cap Segment-PP's lightweight filter: "the
//!   lightweight filters in Segment-PP are highly inaccurate (F1 as low
//!   as 0.2)" on hard classes, while "easier LeftTurn" does fine (§6.2).

use serde::{Deserialize, Serialize};
use zeus_video::ActionClass;

/// Difficulty profile of a query (one class or a union of classes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryTraits {
    /// Ceiling F1 achievable by the best configuration (Table 4).
    pub max_accuracy: f64,
    /// Fraction of signal only visible across frames, in `[0, 1]`.
    pub temporal_dependence: f64,
    /// Scene/interaction complexity, in `[0, 1]`.
    pub scene_complexity: f64,
}

/// Per-class traits. `max_accuracy` values are Table 4's "Maximum
/// Accuracy" column (CrossLeft is not in Table 4; §6.5 treats it as
/// CrossRight's mirror, so it inherits CrossRight-like traits).
pub fn class_traits(class: ActionClass) -> QueryTraits {
    match class {
        ActionClass::CrossRight => QueryTraits {
            max_accuracy: 0.91,
            temporal_dependence: 0.85,
            scene_complexity: 0.75,
        },
        ActionClass::CrossLeft => QueryTraits {
            max_accuracy: 0.90,
            temporal_dependence: 0.85,
            scene_complexity: 0.75,
        },
        ActionClass::LeftTurn => QueryTraits {
            max_accuracy: 0.89,
            temporal_dependence: 0.55,
            scene_complexity: 0.35,
        },
        ActionClass::PoleVault => QueryTraits {
            max_accuracy: 0.78,
            temporal_dependence: 0.75,
            scene_complexity: 0.85,
        },
        ActionClass::CleanAndJerk => QueryTraits {
            max_accuracy: 0.76,
            temporal_dependence: 0.70,
            scene_complexity: 0.85,
        },
        ActionClass::IroningClothes => QueryTraits {
            max_accuracy: 0.85,
            temporal_dependence: 0.60,
            scene_complexity: 0.80,
        },
        ActionClass::TennisServe => QueryTraits {
            max_accuracy: 0.80,
            temporal_dependence: 0.75,
            scene_complexity: 0.80,
        },
    }
}

/// Visual similarity between two classes in `[0, 1]`, used by the
/// multi-class (§6.5) and cross-model studies. Mirror crossings are nearly
/// identical per-frame; a crossing and a turn share some street context;
/// classes from different domains share almost nothing.
pub fn class_similarity(a: ActionClass, b: ActionClass) -> f64 {
    use ActionClass::*;
    if a == b {
        return 1.0;
    }
    let pair = |x: ActionClass, y: ActionClass| (a == x && b == y) || (a == y && b == x);
    if pair(CrossRight, CrossLeft) {
        0.9
    } else if pair(CrossRight, LeftTurn) || pair(CrossLeft, LeftTurn) {
        0.55
    } else if pair(PoleVault, CleanAndJerk) {
        0.5
    } else if pair(IroningClothes, TennisServe) {
        0.45
    } else {
        0.25
    }
}

/// Traits of a query over a *union* of classes (§6.5 multi-class training:
/// "frames belonging to either of the action classes are considered true
/// positives").
///
/// * Mirror-like unions (similarity ≥ 0.8) get *easier* per frame — the
///   discriminative requirement (direction) disappears, so temporal
///   dependence collapses and accuracy rises slightly. This reproduces
///   Frame-PP's high accuracy on CrossRight+CrossLeft (§6.5).
/// * Dissimilar unions confuse the APFG: accuracy drops below the mean of
///   the members (§6.5: "reduces the accuracy of the APFG and thus
///   Zeus-RL").
pub fn union_traits(classes: &[ActionClass]) -> QueryTraits {
    assert!(!classes.is_empty(), "need at least one class");
    if classes.len() == 1 {
        return class_traits(classes[0]);
    }
    let n = classes.len() as f64;
    let mean =
        |f: fn(QueryTraits) -> f64| classes.iter().map(|&c| f(class_traits(c))).sum::<f64>() / n;
    let mean_acc = mean(|t| t.max_accuracy);
    let mean_td = mean(|t| t.temporal_dependence);
    let mean_sc = mean(|t| t.scene_complexity);

    // Minimum pairwise similarity captures the hardest confusion.
    let mut min_sim = 1.0f64;
    for (i, &a) in classes.iter().enumerate() {
        for &b in &classes[i + 1..] {
            min_sim = min_sim.min(class_similarity(a, b));
        }
    }

    if min_sim >= 0.8 {
        // Mirror union: direction stops mattering.
        QueryTraits {
            max_accuracy: (mean_acc + 0.02).min(0.95),
            temporal_dependence: mean_td * 0.3,
            scene_complexity: mean_sc,
        }
    } else {
        // Dissimilar union: APFG confusion lowers the ceiling.
        QueryTraits {
            max_accuracy: mean_acc - 0.06 * (1.0 - min_sim),
            temporal_dependence: mean_td,
            scene_complexity: mean_sc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ActionClass::*;

    #[test]
    fn table4_max_accuracies() {
        assert_eq!(class_traits(CrossRight).max_accuracy, 0.91);
        assert_eq!(class_traits(LeftTurn).max_accuracy, 0.89);
        assert_eq!(class_traits(PoleVault).max_accuracy, 0.78);
        assert_eq!(class_traits(CleanAndJerk).max_accuracy, 0.76);
        assert_eq!(class_traits(IroningClothes).max_accuracy, 0.85);
        assert_eq!(class_traits(TennisServe).max_accuracy, 0.80);
    }

    #[test]
    fn similarity_is_symmetric_and_reflexive() {
        for a in ActionClass::ALL {
            assert_eq!(class_similarity(a, a), 1.0);
            for b in ActionClass::ALL {
                assert_eq!(class_similarity(a, b), class_similarity(b, a));
            }
        }
    }

    #[test]
    fn mirror_union_collapses_temporal_dependence() {
        let single = class_traits(CrossRight);
        let union = union_traits(&[CrossRight, CrossLeft]);
        assert!(
            union.temporal_dependence < single.temporal_dependence * 0.5,
            "mirror union should need little temporal context"
        );
        assert!(union.max_accuracy >= single.max_accuracy - 0.01);
    }

    #[test]
    fn dissimilar_union_lowers_ceiling() {
        let cr = class_traits(CrossRight).max_accuracy;
        let lt = class_traits(LeftTurn).max_accuracy;
        let union = union_traits(&[CrossRight, LeftTurn]);
        assert!(
            union.max_accuracy < (cr + lt) / 2.0,
            "dissimilar union must be below the mean of its members"
        );
        // And it should still be below the mirror union (§6.5: the
        // CrossRight+CrossLeft combination performs better).
        let mirror = union_traits(&[CrossRight, CrossLeft]);
        assert!(union.max_accuracy < mirror.max_accuracy);
    }

    #[test]
    fn singleton_union_is_class_traits() {
        assert_eq!(union_traits(&[PoleVault]), class_traits(PoleVault));
    }

    #[test]
    #[should_panic(expected = "need at least one class")]
    fn empty_union_panics() {
        let _ = union_traits(&[]);
    }
}
