//! Frame-PP: the frame-level probabilistic-predicate baseline model.
//!
//! Existing VDBMSs (NoScope, PP, BlazeIt — refs [15, 16, 22]) filter with
//! per-frame 2D CNNs. The paper's §6.1 adaptation runs the 2D model on
//! *every* frame and emits per-frame binary labels. Its characteristic
//! failure on action queries (§2, §6.2) is structural, and this model
//! reproduces the structure:
//!
//! * **Temporal blindness** — a single frame cannot carry the across-frame
//!   part of the signal (motion direction, trajectory). True-positive rate
//!   is capped by `1 - 0.5·τ` where τ is the class's temporal dependence.
//! * **Mirror confusion** — frames of a visually similar class (CrossLeft
//!   vs CrossRight) fire the detector: false positives at a rate scaled by
//!   class similarity. When the query *unions* the mirror classes (§6.5),
//!   those frames become true positives and Frame-PP's accuracy jumps —
//!   exactly the paper's observation.
//! * **Boundary ambiguity** — "frames before, during, and after the scene
//!   of the action can be visually indistinguishable" (§2): frames within
//!   a band around each interval boundary draw near-chance predictions.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use zeus_video::scene::mix2;
use zeus_video::{ActionClass, Video};

use crate::traits::{class_similarity, union_traits, QueryTraits};

/// Width of the boundary-ambiguity band, frames on each side.
pub const BOUNDARY_BAND: usize = 8;

/// Temporal correlation length of per-frame errors: consecutive frames of
/// the same scene look alike, so a 2D model that misjudges a frame
/// misjudges the whole stretch. Without this, per-frame noise would be
/// independent and majority-voted evaluation windows would average a weak
/// classifier into a strong one — the opposite of the paper's finding
/// that Frame-PP is "prohibitively low" on action queries (§6.2).
pub const ERROR_BLOCK: usize = 16;

/// The per-frame 2D-CNN proxy model.
#[derive(Debug, Clone)]
pub struct FramePpModel {
    classes: Vec<ActionClass>,
    traits: QueryTraits,
    /// Inference resolution (Frame-PP uses the most accurate = highest
    /// resolution model, §6.2).
    pub resolution: usize,
    seed: u64,
    /// Domain shift for §6.6 (0 in-domain).
    pub domain_shift: f64,
}

impl FramePpModel {
    /// Build a frame model for a query over `classes` at `resolution`.
    pub fn new(classes: Vec<ActionClass>, resolution: usize, seed: u64) -> Self {
        assert!(!classes.is_empty(), "need at least one target class");
        let traits = union_traits(&classes);
        FramePpModel {
            classes,
            traits,
            resolution,
            seed,
            domain_shift: 0.0,
        }
    }

    /// Apply a domain shift (§6.6).
    pub fn with_domain_shift(mut self, shift: f64) -> Self {
        assert!((0.0..=1.0).contains(&shift));
        self.domain_shift = shift;
        self
    }

    /// Per-frame true-positive rate: what fraction of genuine action
    /// frames the 2D model can recognise from pixels alone.
    pub fn tp_rate(&self) -> f64 {
        let base = 0.95 - 0.5 * self.traits.temporal_dependence;
        (base * (1.0 - 1.5 * self.domain_shift)).clamp(0.0, 1.0)
    }

    /// Background false-positive rate (frames with no action, away from
    /// boundaries and confusable classes).
    pub fn bg_fp_rate(&self) -> f64 {
        (0.04 + 0.05 * self.traits.scene_complexity) * (1.0 + 3.0 * self.domain_shift)
    }

    /// False-positive rate on frames of a *similar-looking* class.
    pub fn confusion_fp_rate(&self, similarity: f64) -> f64 {
        (0.75 * similarity).clamp(0.0, 0.95)
    }

    /// Near-boundary false-positive rate (ambiguity band).
    pub fn boundary_fp_rate(&self) -> f64 {
        0.40
    }

    /// Predict one frame. Deterministic in `(seed, video, frame)`;
    /// the random draw is shared across an [`ERROR_BLOCK`]-frame stretch
    /// so errors are temporally correlated like a real 2D model's.
    pub fn predict_frame(&self, video: &Video, n: usize) -> bool {
        assert!(n < video.num_frames, "frame {n} out of range");
        let block = (n / ERROR_BLOCK) as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(mix2(self.seed, mix2(video.seed, block)));
        let p = self.positive_probability(video, n);
        rng.gen::<f64>() < p
    }

    /// The probability this model fires on frame `n`.
    pub fn positive_probability(&self, video: &Video, n: usize) -> f64 {
        if video.label_at(&self.classes, n) {
            return self.tp_rate();
        }
        // Frame of a similar-looking non-target class?
        if let Some(sim) = video
            .intervals
            .iter()
            .filter(|iv| iv.contains(n) && !self.classes.contains(&iv.class))
            .map(|iv| {
                self.classes
                    .iter()
                    .map(|&c| class_similarity(c, iv.class))
                    .fold(0.0f64, f64::max)
            })
            .fold(None, |acc: Option<f64>, s| {
                Some(acc.map_or(s, |a| a.max(s)))
            })
        {
            if sim >= 0.5 {
                return self.confusion_fp_rate(sim);
            }
        }
        // Boundary ambiguity band around target-class intervals.
        let near_boundary = video.intervals_of(&self.classes).iter().any(|iv| {
            (n + BOUNDARY_BAND >= iv.start && n < iv.start)
                || (n >= iv.end && n < iv.end + BOUNDARY_BAND)
        });
        if near_boundary {
            return self.boundary_fp_rate();
        }
        self.bg_fp_rate()
    }

    /// Per-frame labels over a whole video.
    pub fn predict_video(&self, video: &Video) -> Vec<bool> {
        (0..video.num_frames)
            .map(|n| self.predict_frame(video, n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionInterval, VideoId};

    fn video() -> Video {
        Video {
            id: VideoId(0),
            num_frames: 400,
            fps: 30.0,
            seed: 3,
            intervals: vec![
                ActionInterval::new(100, 200, ActionClass::CrossRight),
                ActionInterval::new(250, 320, ActionClass::CrossLeft),
            ],
        }
    }

    #[test]
    fn deterministic() {
        let m = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let v = video();
        assert_eq!(m.predict_frame(&v, 150), m.predict_frame(&v, 150));
    }

    #[test]
    fn temporal_dependence_caps_tp_rate() {
        let hard = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let easier = FramePpModel::new(vec![ActionClass::LeftTurn], 300, 5);
        assert!(hard.tp_rate() < easier.tp_rate());
        // CrossRight: 0.95 - 0.5*0.85 = 0.525 — near chance, the paper's
        // "prohibitively low accuracy" regime.
        assert!((hard.tp_rate() - 0.525).abs() < 1e-9);
    }

    #[test]
    fn mirror_frames_confuse_the_detector() {
        let m = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let v = video();
        // Frame 280 is CrossLeft: high-probability false positive.
        let p_mirror = m.positive_probability(&v, 280);
        let p_bg = m.positive_probability(&v, 10);
        assert!(p_mirror > 0.5, "mirror confusion {p_mirror}");
        assert!(p_bg < 0.15, "background fp {p_bg}");
    }

    #[test]
    fn union_query_turns_confusion_into_signal() {
        let union = FramePpModel::new(
            vec![ActionClass::CrossRight, ActionClass::CrossLeft],
            300,
            5,
        );
        // With the mirror union, temporal dependence collapses and the
        // tp rate jumps — §6.5's observation.
        assert!(union.tp_rate() > 0.8, "union tp {}", union.tp_rate());
        let v = video();
        assert!(union.positive_probability(&v, 280) > 0.8);
    }

    #[test]
    fn boundary_band_is_ambiguous() {
        let m = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let v = video();
        // Frame 95 is within 8 frames before the interval start (100).
        assert!((m.positive_probability(&v, 95) - 0.40).abs() < 1e-9);
        // Frame 204 is within 8 frames after the end (200).
        assert!((m.positive_probability(&v, 204) - 0.40).abs() < 1e-9);
    }

    #[test]
    fn domain_shift_degrades() {
        let base = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let shifted = base.clone().with_domain_shift(0.08);
        assert!(shifted.tp_rate() < base.tp_rate());
        assert!(shifted.bg_fp_rate() > base.bg_fp_rate());
    }

    #[test]
    fn predict_video_length() {
        let m = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let v = video();
        assert_eq!(m.predict_video(&v).len(), 400);
    }

    #[test]
    fn recall_is_near_tp_rate_on_action_frames() {
        // Blockwise errors mean fewer independent draws; estimate over
        // many videos to keep the variance manageable.
        let m = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let mut hits = 0usize;
        let mut total = 0usize;
        for seed in 0..12 {
            let v = Video {
                id: VideoId(seed as u32),
                num_frames: 400,
                fps: 30.0,
                seed,
                intervals: vec![ActionInterval::new(50, 350, ActionClass::CrossRight)],
            };
            let preds = m.predict_video(&v);
            hits += (50..350).filter(|&n| preds[n]).count();
            total += 300;
        }
        let rate = hits as f64 / total as f64;
        assert!(
            (rate - m.tp_rate()).abs() < 0.12,
            "empirical {rate} vs model {}",
            m.tp_rate()
        );
    }

    #[test]
    fn errors_are_blockwise_correlated() {
        // Within one error block and one probability regime, predictions
        // are constant.
        let m = FramePpModel::new(vec![ActionClass::CrossRight], 300, 5);
        let v = Video {
            id: VideoId(9),
            num_frames: 512,
            fps: 30.0,
            seed: 9,
            intervals: vec![ActionInterval::new(0, 512, ActionClass::CrossRight)],
        };
        let preds = m.predict_video(&v);
        for block in preds.chunks(ERROR_BLOCK) {
            assert!(
                block.iter().all(|&b| b == block[0]),
                "predictions within a block must agree"
            );
        }
    }
}
