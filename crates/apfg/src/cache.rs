//! Precomputed feature cache — the §5 "Pre-Processing" optimization.
//!
//! "To accelerate this training process, Zeus first runs the APFG on all
//! the input segments at different resolutions and segment lengths to
//! generate the feature vectors. ... The agent then directly uses the
//! precomputed features during training" (§5). The cache is shared across
//! training episodes (and across threads in the parallel executor), hence
//! the `parking_lot::RwLock`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use zeus_video::{Video, VideoId};

use crate::config::Configuration;
use crate::feature::{ApfgOutput, FeatureGenerator};

type Key = (VideoId, usize, Configuration);

/// A concurrent memo table over APFG invocations.
#[derive(Debug, Default)]
pub struct FeatureCache {
    map: RwLock<HashMap<Key, ApfgOutput>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl FeatureCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached invocations.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Lookups served from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to invoke the generator since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction in `[0, 1]` (0 when no lookups happened) — the
    /// training plane's measure of how much ProxyFeature recomputation
    /// the shared cache absorbed across parallel rollouts.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Fetch the cached output or compute (and cache) it.
    pub fn get_or_compute(
        &self,
        generator: &dyn FeatureGenerator,
        video: &Video,
        start: usize,
        config: Configuration,
    ) -> ApfgOutput {
        let key = (video.id, start, config);
        if let Some(hit) = self.map.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let out = generator.process(video, start, config);
        self.map.write().insert(key, out.clone());
        out
    }

    /// Eagerly populate the cache for every step position of a video under
    /// one configuration (the batched pre-processing pass of §5). Returns
    /// the number of invocations performed.
    pub fn precompute(
        &self,
        generator: &dyn FeatureGenerator,
        video: &Video,
        config: Configuration,
    ) -> usize {
        let stride = config.frames_covered();
        let mut count = 0;
        let mut start = 0;
        while start < video.num_frames {
            self.get_or_compute(generator, video, start, config);
            count += 1;
            start += stride;
        }
        count
    }

    /// Parallel pre-processing across videos — the §5 optimization
    /// ("this preprocessing step uses a batching optimization and
    /// leverages multiple GPUs to lower the RL training time"). Each
    /// worker walks a share of the corpus; results land in the shared
    /// map. Returns the number of invocations performed.
    pub fn precompute_parallel(
        &self,
        generator: &(dyn FeatureGenerator + Sync),
        videos: &[&Video],
        config: Configuration,
        workers: usize,
    ) -> usize {
        assert!(workers > 0, "need at least one worker");
        let total = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let share: Vec<&Video> = videos
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i % workers == w)
                        .map(|(_, v)| *v)
                        .collect();
                    s.spawn(move |_| {
                        share
                            .iter()
                            .map(|v| self.precompute(generator, v, config))
                            .sum::<usize>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("precompute worker panicked"))
                .sum::<usize>()
        })
        .expect("thread scope failed");
        total
    }

    /// Drop all cached entries.
    pub fn clear(&self) {
        self.map.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use zeus_video::VideoId;

    struct Counting {
        calls: AtomicUsize,
    }

    impl FeatureGenerator for Counting {
        fn feature_dim(&self) -> usize {
            1
        }
        fn process(&self, _v: &Video, start: usize, _c: Configuration) -> ApfgOutput {
            self.calls.fetch_add(1, Ordering::SeqCst);
            ApfgOutput {
                feature: vec![start as f32],
                prediction: false,
                confidence: 0.0,
            }
        }
    }

    fn video() -> Video {
        Video {
            id: VideoId(3),
            num_frames: 100,
            fps: 30.0,
            seed: 0,
            intervals: vec![],
        }
    }

    #[test]
    fn caches_repeat_invocations() {
        let gen = Counting {
            calls: AtomicUsize::new(0),
        };
        let cache = FeatureCache::new();
        let v = video();
        let c = Configuration::new(100, 4, 2);
        assert_eq!(cache.hit_rate(), 0.0, "no lookups yet");
        let a = cache.get_or_compute(&gen, &v, 0, c);
        let b = cache.get_or_compute(&gen, &v, 0, c);
        assert_eq!(a, b);
        assert_eq!(gen.calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinguishes_configs_and_positions() {
        let gen = Counting {
            calls: AtomicUsize::new(0),
        };
        let cache = FeatureCache::new();
        let v = video();
        cache.get_or_compute(&gen, &v, 0, Configuration::new(100, 4, 2));
        cache.get_or_compute(&gen, &v, 8, Configuration::new(100, 4, 2));
        cache.get_or_compute(&gen, &v, 0, Configuration::new(200, 4, 2));
        assert_eq!(gen.calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn precompute_walks_the_video() {
        let gen = Counting {
            calls: AtomicUsize::new(0),
        };
        let cache = FeatureCache::new();
        let v = video();
        // Covers 8 frames per step over 100 frames -> 13 invocations.
        let n = cache.precompute(&gen, &v, Configuration::new(100, 4, 2));
        assert_eq!(n, 13);
        assert_eq!(cache.len(), 13);
    }

    #[test]
    fn parallel_precompute_matches_sequential() {
        use crate::simulated::SimulatedApfg;
        use zeus_video::{ActionClass, DatasetKind};
        let ds = DatasetKind::Bdd100k.generate(0.04, 5);
        let videos: Vec<&Video> = ds.store.videos().iter().collect();
        let apfg = SimulatedApfg::new(vec![ActionClass::CrossRight], 300, 8, 8, 3);
        let config = Configuration::new(150, 8, 8);

        let seq_cache = FeatureCache::new();
        let mut seq_n = 0;
        for v in &videos {
            seq_n += seq_cache.precompute(&apfg, v, config);
        }
        let par_cache = FeatureCache::new();
        let par_n = par_cache.precompute_parallel(&apfg, &videos, config, 4);
        assert_eq!(seq_n, par_n);
        assert_eq!(seq_cache.len(), par_cache.len());
        // Spot-check one entry matches (determinism through the cache).
        let v = videos[0];
        let a = seq_cache.get_or_compute(&apfg, v, 0, config);
        let b = par_cache.get_or_compute(&apfg, v, 0, config);
        assert_eq!(a, b);
    }

    #[test]
    fn clear_empties() {
        let gen = Counting {
            calls: AtomicUsize::new(0),
        };
        let cache = FeatureCache::new();
        let v = video();
        cache.get_or_compute(&gen, &v, 0, Configuration::new(100, 4, 2));
        cache.clear();
        assert!(cache.is_empty());
    }
}
