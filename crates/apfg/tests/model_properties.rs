//! Property-based tests on the behavioural APFG model: the monotonicity
//! and determinism guarantees every experiment relies on.

use proptest::prelude::*;
use zeus_apfg::{Configuration, FeatureGenerator, SimulatedApfg, FEATURE_DIM};
use zeus_video::{ActionClass, ActionInterval, Video, VideoId};

fn any_class() -> impl Strategy<Value = ActionClass> {
    prop::sample::select(ActionClass::ALL.to_vec())
}

fn bdd_config() -> impl Strategy<Value = Configuration> {
    (
        prop::sample::select(vec![150usize, 200, 250, 300]),
        prop::sample::select(vec![2usize, 4, 6, 8]),
        prop::sample::select(vec![1usize, 2, 4, 8]),
    )
        .prop_map(|(r, l, s)| Configuration::new(r, l, s))
}

fn video_with(class: ActionClass, start: usize, len: usize, seed: u64) -> Video {
    Video {
        id: VideoId(0),
        num_frames: 2_000,
        fps: 30.0,
        seed,
        intervals: vec![ActionInterval::new(start, start + len, class)],
    }
}

proptest! {
    #[test]
    fn process_is_deterministic(class in any_class(), config in bdd_config(),
                                pos in 0usize..1900, seed in 0u64..100) {
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, seed);
        let v = video_with(class, 500, 300, seed ^ 0x55);
        let a = apfg.process(&v, pos, config);
        let b = apfg.process(&v, pos, config);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn features_have_fixed_shape_and_bounded_evidence(
        class in any_class(), config in bdd_config(), pos in 0usize..1900) {
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, 7);
        let v = video_with(class, 600, 200, 11);
        let out = apfg.process(&v, pos, config);
        prop_assert_eq!(out.feature.len(), FEATURE_DIM);
        for &f in &out.feature[0..4] {
            prop_assert!((0.0..=1.0).contains(&f));
        }
        prop_assert!((0.0..=1.0).contains(&out.confidence));
        prop_assert!(out.feature.iter().all(|f| f.is_finite()));
    }

    #[test]
    fn discriminability_is_monotone_in_resolution(
        class in any_class(), l in prop::sample::select(vec![2usize, 4, 6, 8]),
        s in prop::sample::select(vec![1usize, 2, 4, 8])) {
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, 1);
        let mut prev = 0.0;
        for r in [150usize, 200, 250, 300] {
            let q = apfg.discriminability(Configuration::new(r, l, s));
            prop_assert!(q >= prev, "q must rise with resolution");
            prev = q;
        }
    }

    #[test]
    fn discriminability_is_monotone_in_sampling(
        class in any_class(), r in prop::sample::select(vec![150usize, 300])) {
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, 1);
        let mut prev = f64::INFINITY;
        for s in [1usize, 2, 4, 8] {
            let q = apfg.discriminability(Configuration::new(r, 4, s));
            prop_assert!(q <= prev, "q must fall with coarser sampling");
            prev = q;
        }
    }

    #[test]
    fn false_positive_rate_monotone_in_resolution(class in any_class()) {
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, 1);
        let mut prev = f64::INFINITY;
        for r in [150usize, 200, 250, 300] {
            let fp = apfg.false_positive_rate(Configuration::new(r, 4, 1));
            prop_assert!(fp <= prev, "fp must fall with resolution");
            prev = fp;
        }
    }

    #[test]
    fn domain_shift_never_helps(class in any_class(), config in bdd_config(),
                                shift in 0.0f64..0.3) {
        let base = SimulatedApfg::new(vec![class], 300, 8, 8, 1);
        let shifted = SimulatedApfg::new(vec![class], 300, 8, 8, 1).with_domain_shift(shift);
        prop_assert!(shifted.discriminability(config) <= base.discriminability(config) + 1e-12);
        prop_assert!(shifted.false_positive_rate(config) >= base.false_positive_rate(config) - 1e-12);
    }

    #[test]
    fn hard_instances_are_stable_per_video(class in any_class(), start in 0usize..1000,
                                           seed in 0u64..200) {
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, 9);
        let v = video_with(class, start.max(1), 100, seed);
        let a = apfg.is_hard_instance(&v, start.max(1));
        let b = apfg.is_hard_instance(&v, start.max(1));
        prop_assert_eq!(a, b, "hardness must be a stable property of the instance");
    }

    #[test]
    fn evidence_channel_tracks_action_overlap(seed in 0u64..50) {
        // Far from the action, the (noisy) evidence channel must read
        // lower on average than inside the action — provided the instance
        // is visible (intrinsically hard instances are invisible by
        // design; that is the Table 4 ceiling mechanism).
        let class = ActionClass::CrossRight;
        let apfg = SimulatedApfg::new(vec![class], 300, 8, 8, seed);
        let v = video_with(class, 1000, 400, seed ^ 0x91);
        prop_assume!(!apfg.is_hard_instance(&v, 1000));
        let config = Configuration::new(300, 8, 1);
        let inside: f32 = (0..8).map(|i| apfg.process(&v, 1100 + i * 8, config).feature[0]).sum();
        let outside: f32 = (0..8).map(|i| apfg.process(&v, 100 + i * 8, config).feature[0]).sum();
        prop_assert!(inside > outside, "evidence {inside} inside vs {outside} outside");
    }

}

#[test]
fn hard_instances_yield_no_evidence() {
    // The converse of `evidence_channel_tracks_action_overlap`: a hard
    // instance contributes nothing to the evidence channel beyond noise.
    // Scan seeds for hard instances directly (they are a ~20% minority
    // for CleanAndJerk, too sparse for prop_assume).
    let class = ActionClass::CleanAndJerk; // highest hard rate
    let config = Configuration::new(160, 32, 2);
    let mut checked = 0;
    for seed in 0..400u64 {
        let apfg = SimulatedApfg::new(vec![class], 160, 64, 8, seed);
        let v = video_with(class, 1000, 400, seed ^ 0x77);
        if !apfg.is_hard_instance(&v, 1000) {
            continue;
        }
        let out = apfg.process(&v, 1100, config);
        assert!(
            out.feature[0] < 0.5,
            "hard instance leaked evidence: {} (seed {seed})",
            out.feature[0]
        );
        checked += 1;
        if checked >= 10 {
            return;
        }
    }
    assert!(checked > 0, "no hard instances found in 400 seeds");
}
