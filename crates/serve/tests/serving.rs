//! Integration and property tests for the serving subsystem.
//!
//! The two load-bearing properties from the scheduler's contract:
//!
//! 1. **Serial equivalence** — serving any number of queries over any
//!    number of devices yields byte-identical `QueryResult`s to serial
//!    execution under a fixed seed.
//! 2. **Admission discipline** — the bounded queue never exceeds its
//!    capacity and never starves a priority class.

use std::sync::OnceLock;

use proptest::prelude::*;
use zeus_core::baselines::QueryEngine;
use zeus_core::catalog::{decode_plan, encode_plan, StoredPlan};
use zeus_core::planner::{PlannerOptions, QueryPlanner};
use zeus_core::query::ActionQuery;
use zeus_core::ExecutorKind;
use zeus_serve::admission::AdmissionQueue;
use zeus_serve::{
    run_open_loop, AdmitError, CorpusId, PlanStore, Priority, QueryOutcome, ServeConfig,
    WorkloadSpec, ZeusServer,
};
use zeus_sim::CostModel;
use zeus_video::video::Split;
use zeus_video::{ActionClass, DatasetKind, SyntheticDataset};

const SCALE: f64 = 0.1;
const SEED: u64 = 3;

struct Fixture {
    dataset: SyntheticDataset,
    stored: StoredPlan,
}

/// Plan once (fast options), reuse across every test.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = DatasetKind::Bdd100k.generate(SCALE, SEED);
        let mut options = PlannerOptions {
            seed: SEED,
            ..PlannerOptions::default()
        };
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let planner = QueryPlanner::new(&dataset, options);
        let plan = planner.plan(&ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap());
        let stored = decode_plan(&encode_plan(&plan, SEED)).expect("roundtrip");
        Fixture { dataset, stored }
    })
}

fn corpus() -> CorpusId {
    CorpusId::of(&fixture().dataset)
}

fn plan_store(templates: &[ActionQuery]) -> PlanStore {
    let store = PlanStore::in_memory();
    for template in templates {
        let mut variant = fixture().stored.clone();
        variant.query = template.clone();
        store.install_stored(corpus(), variant);
    }
    store
}

fn templates() -> Vec<ActionQuery> {
    vec![
        ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap(),
        ActionQuery::new(ActionClass::CrossRight, 0.80).unwrap(),
        ActionQuery::new(ActionClass::CrossRight, 0.75).unwrap(),
    ]
}

fn start_server(workers: usize, queue: usize, executor: ExecutorKind) -> ZeusServer {
    let templates = templates();
    ZeusServer::start(
        &fixture().dataset,
        plan_store(&templates),
        ServeConfig {
            workers,
            queue_capacity: queue,
            executor,
            ..ServeConfig::default()
        },
    )
    .expect("server starts")
}

/// Submit every query, then wait for all (keeps the queue genuinely
/// concurrent rather than one-at-a-time).
fn serve_all(server: &ZeusServer, queries: &[(ActionQuery, Priority)]) -> Vec<QueryOutcome> {
    let streams: Vec<_> = queries
        .iter()
        .map(|(q, p)| server.submit(q.clone(), *p).expect("admitted"))
        .collect();
    streams.into_iter().map(|s| s.wait()).collect()
}

proptest! {
    /// Concurrent serving must be indistinguishable from serial serving:
    /// identical labels and bit-identical f64 metrics, for any worker
    /// count, executor, and query mix.
    #[test]
    fn concurrent_serving_matches_serial_bitwise(
        workers in 2usize..6,
        executor in prop::sample::select(vec![ExecutorKind::ZeusSliding, ExecutorKind::ZeusRl]),
        picks in prop::collection::vec((0usize..3, 0usize..3), 1..8),
    ) {
        let ts = templates();
        let queries: Vec<(ActionQuery, Priority)> = picks
            .iter()
            .map(|&(t, p)| (ts[t].clone(), Priority::ALL[p]))
            .collect();

        let concurrent = start_server(workers, 64, executor);
        let got = serve_all(&concurrent, &queries);
        concurrent.shutdown();

        let serial = start_server(1, 64, executor);
        let want = serve_all(&serial, &queries);
        serial.shutdown();

        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(&g.query, &w.query);
            prop_assert_eq!(&g.labels, &w.labels, "labels diverged under concurrency");
            prop_assert_eq!(g.result.f1.to_bits(), w.result.f1.to_bits());
            prop_assert_eq!(
                g.result.elapsed_secs.to_bits(),
                w.result.elapsed_secs.to_bits(),
                "clock merge must be scheduling-independent"
            );
            prop_assert_eq!(
                g.result.throughput_fps.to_bits(),
                w.result.throughput_fps.to_bits()
            );
            prop_assert_eq!(g.result.invocations, w.result.invocations);
        }
    }

    /// The admission queue's bound holds under arbitrary push/pop
    /// interleavings, and accounting conserves items.
    #[test]
    fn admission_bound_holds_under_any_interleaving(
        capacity in 1usize..12,
        ops in prop::collection::vec((any::<bool>(), 0usize..3), 1..120),
    ) {
        let q = AdmissionQueue::new(capacity);
        let mut pushed = 0usize;
        let mut shed = 0usize;
        let mut popped = 0usize;
        for (is_push, class) in ops {
            if is_push {
                match q.try_push(pushed, Priority::ALL[class]) {
                    Ok(depth) => {
                        pushed += 1;
                        prop_assert!(depth <= capacity, "depth {depth} > capacity {capacity}");
                    }
                    Err(AdmitError::QueueFull { .. }) => {
                        shed += 1;
                        prop_assert_eq!(q.depth(), capacity, "shed below capacity");
                    }
                    Err(e) => prop_assert!(false, "unexpected admit error {e}"),
                }
            } else if q.try_pop().is_some() {
                popped += 1;
            }
            prop_assert!(q.depth() <= capacity);
        }
        prop_assert_eq!(pushed, popped + q.depth());
        let _ = shed;
    }

    /// With every class backlogged, one full scheduling cycle serves all
    /// three classes — no class starves behind higher priorities.
    #[test]
    fn no_priority_class_starves(backlog in 3usize..20) {
        let q = AdmissionQueue::new(3 * backlog);
        for i in 0..backlog {
            for p in Priority::ALL {
                q.try_push(i, p).unwrap();
            }
        }
        // Any window of 7 consecutive pops (one schedule cycle) must
        // include every class while all classes remain backlogged.
        let safe_pops = (backlog - 1).min(7) * 3;
        let mut window: Vec<Priority> = Vec::new();
        for _ in 0..safe_pops.min(7) {
            window.push(q.pop_blocking().unwrap().1);
        }
        for p in Priority::ALL {
            prop_assert!(
                window.contains(&p),
                "{p} not served within one cycle: {window:?}"
            );
        }
    }
}

#[test]
fn hundred_concurrent_queries_across_four_devices() {
    // The acceptance-scale workload: >= 100 queries, >= 4 devices, open
    // loop, non-zero cache hit rate, serial equivalence.
    let ts = templates();
    let server = start_server(4, 128, ExecutorKind::ZeusSliding);
    let spec = WorkloadSpec::new(ts.clone(), 120, 0xF00D);
    let report = run_open_loop(&server, &spec, 500.0);
    let metrics = server.metrics();
    server.shutdown();

    assert_eq!(report.outcomes.len() + report.shed, 120);
    assert!(report.shed == 0, "queue of 128 must not shed 120 queries");
    assert!(
        metrics.cache_hits > 0,
        "repeat templates must hit the cache"
    );
    assert!(metrics.p50 <= metrics.p95 && metrics.p95 <= metrics.p99);
    assert_eq!(metrics.completed, 120);

    // Serial reference: the plan's engine on a fresh device.
    let fx = fixture();
    let mut test = fx.dataset.store.split(Split::Test);
    test.sort_by_key(|v| v.id);
    for template in &ts {
        let mut variant = fx.stored.clone();
        variant.query = template.clone();
        let exec = variant.sliding_engine(CostModel::default()).execute(&test);
        let outcome = report
            .outcomes
            .iter()
            .find(|o| &o.query == template)
            .expect("every template served");
        assert_eq!(outcome.labels, exec.labels, "served vs serial labels");
    }
}

#[test]
fn identical_inflight_submissions_coalesce_to_one_execution() {
    // A thundering herd of one query: the first submission executes, the
    // rest subscribe to it (or hit the cache after it lands), and every
    // client receives the identical outcome.
    let ts = templates();
    let server = start_server(2, 64, ExecutorKind::ZeusSliding);
    let streams: Vec<_> = (0..30)
        .map(|i| {
            server
                .submit(ts[0].clone(), Priority::ALL[i % 3])
                .expect("admitted")
        })
        .collect();
    let outcomes: Vec<QueryOutcome> = streams.into_iter().map(|s| s.wait()).collect();
    let metrics = server.metrics();
    server.shutdown();

    assert_eq!(metrics.cache_misses, 1, "exactly one execution");
    assert_eq!(
        metrics.cache_hits + metrics.coalesced,
        29,
        "everyone else rides along"
    );
    let first = &outcomes[0];
    for o in &outcomes {
        assert_eq!(o.labels, first.labels);
        assert_eq!(o.result.f1.to_bits(), first.result.f1.to_bits());
    }
    // Ids are distinct per client even when coalesced.
    let mut ids: Vec<_> = outcomes.iter().map(|o| o.id).collect();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), outcomes.len());
}

#[test]
fn queue_full_sheds_and_reports() {
    // One worker, capacity-1 queue, and a stampede: most submissions must
    // shed, and the server must survive and finish the admitted ones.
    let ts = templates();
    let server = start_server(1, 1, ExecutorKind::ZeusSliding);
    let mut streams = Vec::new();
    let mut shed = 0;
    for i in 0..40 {
        match server.submit(ts[i % ts.len()].clone(), Priority::Batch) {
            Ok(s) => streams.push(s),
            Err(AdmitError::QueueFull { capacity }) => {
                assert_eq!(capacity, 1);
                shed += 1;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    for s in streams {
        let _ = s.wait();
    }
    let metrics = server.metrics();
    server.shutdown();
    assert!(shed > 0, "a capacity-1 queue must shed under a stampede");
    assert_eq!(metrics.shed as usize, shed);
    assert!(metrics.shed_rate() > 0.0);
}

#[test]
fn unplanned_query_is_refused_not_trained() {
    let server = start_server(1, 8, ExecutorKind::ZeusSliding);
    let unplanned = ActionQuery::new(ActionClass::PoleVault, 0.75).unwrap();
    let err = server
        .submit(unplanned, Priority::Interactive)
        .expect_err("no plan installed");
    assert!(matches!(err, AdmitError::NoPlan { .. }));
    let metrics = server.metrics();
    server.shutdown();
    assert_eq!(metrics.rejected_no_plan, 1);
}

#[test]
fn cache_hits_replay_the_first_execution_exactly() {
    let ts = templates();
    let server = start_server(2, 16, ExecutorKind::ZeusSliding);
    let first = server
        .submit(ts[0].clone(), Priority::Standard)
        .unwrap()
        .wait();
    assert!(!first.from_cache);
    let second = server
        .submit(ts[0].clone(), Priority::Standard)
        .unwrap()
        .wait();
    server.shutdown();
    assert!(second.from_cache, "identical repeat must hit the cache");
    assert_eq!(first.labels, second.labels);
    assert_eq!(first.result.f1.to_bits(), second.result.f1.to_bits());
    assert_eq!(
        first.result.elapsed_secs.to_bits(),
        second.result.elapsed_secs.to_bits()
    );
}
