//! The serving engine: admission → schedule → execute → cache → respond.
//!
//! A [`ZeusServer`] owns a corpus, a [`PlanStore`], a worker pool of
//! simulated devices, an LRU [`ResultCache`], and a bounded admission
//! queue. [`ZeusServer::submit`] is the whole client API: it either
//! answers from cache immediately, admits the query for concurrent
//! execution, or rejects it (queue full / no stored plan / shutting
//! down) — and hands back a typed [`ResponseStream`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use zeus_core::baselines::QueryEngine;
use zeus_core::catalog::PlanCatalog;
use zeus_core::parallel::DevicePool;
use zeus_core::query::ActionQuery;
use zeus_core::ExecutorKind;
use zeus_sim::{CostModel, DeviceProfile};
use zeus_video::annotation::runs_from_labels;
use zeus_video::video::Split;
use zeus_video::DataSource;

use zeus_core::query::QueryIr;

use crate::admission::{AdmissionQueue, AdmitError};
use crate::cache::{CacheKey, CorpusId, ResultCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::plans::PlanStore;
use crate::pool::{worker_loop, ActiveQuery, PoolShared, Subscriber};
use crate::refine::{compute_exclude_spans, ExcludeSpans, QueryRefiner};
use crate::request::{Priority, QueryId, QueryOutcome, ResponseEvent, ResponseStream};

/// Why a server could not be started: every `assert!` that used to guard
/// [`ZeusServer::start`] is a typed variant here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A tuning knob is unusable (zero workers, zero queue/cache
    /// capacity, ...).
    InvalidConfig(String),
    /// The corpus test split holds no videos at this scale.
    EmptyCorpus,
    /// The configured executor cannot be rebuilt from a stored plan.
    NotServable(ExecutorKind),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(s) => write!(f, "invalid serve config: {s}"),
            ServeError::EmptyCorpus => write!(f, "corpus test split is empty"),
            ServeError::NotServable(kind) => {
                write!(f, "executor {kind} cannot be rebuilt from a stored plan")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, one simulated device each.
    pub workers: usize,
    /// Admission-queue bound shared across priority classes.
    pub queue_capacity: usize,
    /// Result-cache entries.
    pub cache_capacity: usize,
    /// Hardware profile of every pool device.
    pub device: DeviceProfile,
    /// Default engine for submitted queries. Only the plan-reconstructable
    /// engines ([`ExecutorKind::ZeusRl`], [`ExecutorKind::ZeusSliding`])
    /// are servable.
    pub executor: ExecutorKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            device: DeviceProfile::default(),
            executor: ExecutorKind::ZeusRl,
        }
    }
}

/// A running serving engine. Dropping it shuts the pool down (pending
/// queries still drain).
pub struct ZeusServer {
    shared: Arc<PoolShared>,
    plans: Arc<PlanStore>,
    config: ServeConfig,
    corpus: CorpusId,
    dataset_name: String,
    cost: CostModel,
    next_id: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Exclude-span maps per distinct `AND NOT` class set: the corpus
    /// scan is paid once per set, not once per submission.
    exclude_spans: Mutex<HashMap<Vec<u8>, Arc<ExcludeSpans>>>,
}

impl ZeusServer {
    /// Start a server over any [`DataSource`]: spin up `config.workers`
    /// threads, each owning one device from a [`DevicePool`].
    ///
    /// The corpus identity keying the result cache and plan store is the
    /// source's content fingerprint ([`CorpusId::of`]), so two servers
    /// over different corpora sharing one [`PlanStore`] can never reuse
    /// or clobber each other's plans. `plans` may be passed by value or
    /// pre-shared as an `Arc` (the `zeus-api` session layer shares its
    /// store with the server it spawns). Returns a typed [`ServeError`]
    /// instead of panicking on an unusable configuration or an empty
    /// corpus.
    pub fn start(
        source: &dyn DataSource,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
    ) -> Result<ZeusServer, ServeError> {
        let name = source.name().to_string();
        Self::start_as(source, name, plans, config)
    }

    /// [`ZeusServer::start`] with an explicit served-dataset name — the
    /// name ZQL `FROM <name>` routing is checked against. Sessions pass
    /// the *registered* name here, which may differ from the source's
    /// own profile name (one corpus can be registered under several
    /// aliases).
    pub fn start_as(
        source: &dyn DataSource,
        name: impl Into<String>,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
    ) -> Result<ZeusServer, ServeError> {
        // Normalize the served name so it can actually match parsed
        // `FROM` operands (the parser lowercases every routing name).
        let name = zeus_video::source::normalize_name(&name.into())
            .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig("need at least one worker".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue capacity must be positive".into(),
            ));
        }
        if config.cache_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "cache capacity must be positive".into(),
            ));
        }
        if !servable(config.executor) {
            return Err(ServeError::NotServable(config.executor));
        }
        let corpus_id = CorpusId::of(source);
        let mut videos: Vec<_> = source
            .store()
            .split(Split::Test)
            .into_iter()
            .cloned()
            .collect();
        videos.sort_by_key(|v| v.id);
        if videos.is_empty() {
            return Err(ServeError::EmptyCorpus);
        }

        let pool = DevicePool::homogeneous(config.workers, config.device.clone());
        let shared = Arc::new(PoolShared {
            queue: AdmissionQueue::new(config.queue_capacity),
            board: Mutex::new(Vec::new()),
            inflight: Mutex::new(std::collections::HashMap::new()),
            devices: pool.into_devices().into_iter().map(Mutex::new).collect(),
            cache: ResultCache::new(config.cache_capacity),
            metrics: ServeMetrics::new(),
            videos,
        });
        let handles = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zeus-serve-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        let cost = CostModel::new(config.device.clone());
        Ok(ZeusServer {
            shared,
            plans: plans.into(),
            config,
            corpus: corpus_id,
            dataset_name: name,
            cost,
            next_id: AtomicU64::new(0),
            handles: Mutex::new(handles),
            exclude_spans: Mutex::new(HashMap::new()),
        })
    }

    /// The plan store (for warming plans ahead of traffic).
    pub fn plans(&self) -> &PlanStore {
        &self.plans
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The corpus identity (content fingerprint) this server serves.
    pub fn corpus_id(&self) -> CorpusId {
        self.corpus
    }

    /// The registry name of the dataset this server serves. Queries with
    /// a ZQL `FROM <other>` routing are refused at admission.
    pub fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    /// Submit with the server's default executor.
    pub fn submit(
        &self,
        query: ActionQuery,
        priority: Priority,
    ) -> Result<ResponseStream, AdmitError> {
        self.submit_with(query, priority, self.config.executor)
    }

    /// Submit an extended-ZQL query ([`QueryIr`]).
    ///
    /// The classic core (`ir.base`) drives plan resolution, execution,
    /// caching, and coalescing — a hundred differently-refined views of
    /// one query cost one execution. The extended clauses act here:
    ///
    /// * `latency_budget` selects the admission priority when the caller
    ///   passes `None` (see [`priority_for_budget`]): tight budgets ride
    ///   the interactive class.
    /// * `WINDOW` / `AND NOT` filter streamed per-video segments; with
    ///   `ORDER BY` / `LIMIT` they shape the final
    ///   [`QueryOutcome::answer`].
    pub fn submit_ir(
        &self,
        ir: &QueryIr,
        priority: Option<Priority>,
    ) -> Result<ResponseStream, AdmitError> {
        if let Some(requested) = &ir.source {
            if requested != &self.dataset_name {
                return Err(AdmitError::WrongDataset {
                    requested: requested.clone(),
                    serving: self.dataset_name.clone(),
                });
            }
        }
        let priority = priority.unwrap_or_else(|| priority_for_budget(ir.latency_budget_ms));
        let stream = self.submit_with(ir.base.clone(), priority, self.config.executor)?;
        // Resolve the exclude-span map from the per-set cache so the
        // admission path never re-scans the corpus for a repeated
        // `AND NOT` set.
        let spans = if ir.exclude.is_empty() {
            Arc::default()
        } else {
            let mut key: Vec<u8> = ir
                .exclude
                .iter()
                .map(|c| {
                    zeus_video::ActionClass::ALL
                        .iter()
                        .position(|x| x == c)
                        .expect("class in ALL") as u8
                })
                .collect();
            key.sort_unstable();
            key.dedup();
            let cached = self.exclude_spans.lock().unwrap().get(&key).cloned();
            match cached {
                Some(spans) => spans,
                None => {
                    // Scan outside the lock (corpus-proportional work must
                    // not stall concurrent admissions); double-checked
                    // insert keeps one copy if two submissions race.
                    let computed =
                        Arc::new(compute_exclude_spans(&ir.exclude, &self.shared.videos));
                    let mut cache = self.exclude_spans.lock().unwrap();
                    Arc::clone(cache.entry(key).or_insert(computed))
                }
            }
        };
        Ok(stream.with_refiner(QueryRefiner::with_exclude_spans(ir, spans)))
    }

    /// Submit a query for execution by `executor`.
    ///
    /// Fast paths first: a result-cache hit answers synchronously (the
    /// stream already holds every event); a missing plan or a full queue
    /// rejects. Otherwise the query is admitted and executes on the pool.
    pub fn submit_with(
        &self,
        query: ActionQuery,
        priority: Priority,
        executor: ExecutorKind,
    ) -> Result<ResponseStream, AdmitError> {
        let submitted = Instant::now();
        self.shared.metrics.on_submit();
        if !servable(executor) {
            self.shared.metrics.on_no_plan();
            return Err(AdmitError::NoPlan {
                key: format!("{executor} is not plan-reconstructable"),
            });
        }
        let id = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let cache_key = CacheKey::new(&query, self.corpus, executor);

        let (tx, rx) = mpsc::channel();
        let mut subscriber = Subscriber {
            id,
            priority,
            submitted,
            tx,
            coalesced: true,
        };

        // 1. Result cache.
        if let Some(cached) = self.shared.cache.get(&cache_key) {
            self.replay_cached(&query, executor, &subscriber, &cached);
            return Ok(ResponseStream::new(id, rx));
        }

        // 2. Coalesce onto an identical in-flight query: the follower
        //    subscribes to the running execution instead of re-running it.
        {
            let inflight = self.shared.inflight.lock().unwrap();
            if let Some(task) = inflight.get(&cache_key) {
                match task.subscribe(subscriber) {
                    Ok(()) => {
                        self.shared.metrics.on_admit();
                        return Ok(ResponseStream::new(id, rx));
                    }
                    // The query finalized between our cache miss and now;
                    // finalize publishes to the cache before closing, so
                    // this lookup cannot miss.
                    Err(returned) => subscriber = returned,
                }
            }
        }
        if let Some(cached) = self.shared.cache.get(&cache_key) {
            self.replay_cached(&query, executor, &subscriber, &cached);
            return Ok(ResponseStream::new(id, rx));
        }

        // 3. Plan resolution (never trains inline).
        let stored = self.plans.get(self.corpus, &query).ok_or_else(|| {
            self.shared.metrics.on_no_plan();
            AdmitError::NoPlan {
                key: PlanCatalog::key(&query),
            }
        })?;
        let engine: Box<dyn QueryEngine + Send + Sync> = match executor {
            ExecutorKind::ZeusRl => Box::new(stored.zeus_rl_engine(self.cost.clone())),
            ExecutorKind::ZeusSliding => Box::new(stored.sliding_engine(self.cost.clone())),
            _ => unreachable!("servable() vetted the executor"),
        };

        // 4. Admission, atomic with a coalescing re-check: an identical
        //    submission may have been admitted since the step-2 check, so
        //    the subscribe-or-create decision and the queue push both
        //    happen under the in-flight map lock (a shed submission is
        //    therefore never visible for coalescing either).
        enum Admitted {
            Queued,
            Coalesced,
            Finalized(Subscriber),
            Rejected(AdmitError),
        }
        let admitted = {
            let mut inflight = self.shared.inflight.lock().unwrap();
            if let Some(existing) = inflight.get(&cache_key) {
                subscriber.coalesced = true;
                match existing.subscribe(subscriber) {
                    Ok(()) => Admitted::Coalesced,
                    Err(returned) => Admitted::Finalized(returned),
                }
            } else {
                subscriber.coalesced = false;
                let task = Arc::new(ActiveQuery::new(
                    query.clone(),
                    executor,
                    stored.protocol,
                    engine,
                    cache_key.clone(),
                    subscriber,
                    self.shared.videos.len(),
                ));
                match self.shared.queue.try_push(Arc::clone(&task), priority) {
                    Ok(_depth) => {
                        inflight.insert(cache_key.clone(), task);
                        Admitted::Queued
                    }
                    Err(e) => Admitted::Rejected(e),
                }
            }
        };
        match admitted {
            Admitted::Queued | Admitted::Coalesced => {
                self.shared.metrics.on_admit();
                Ok(ResponseStream::new(id, rx))
            }
            Admitted::Finalized(returned) => {
                // The in-flight query finalized under our feet; finalize
                // publishes to the result cache before closing, so this
                // lookup is guaranteed to hit.
                let cached = self
                    .shared
                    .cache
                    .get(&cache_key)
                    .expect("finalized query must be cached before closing");
                self.replay_cached(&query, executor, &returned, &cached);
                Ok(ResponseStream::new(id, rx))
            }
            Admitted::Rejected(e) => {
                if matches!(e, AdmitError::QueueFull { .. }) {
                    self.shared.metrics.on_shed();
                }
                Err(e)
            }
        }
    }

    /// Answer a submission from a cached execution: replay per-video
    /// events and the final outcome onto the subscriber's channel.
    fn replay_cached(
        &self,
        query: &ActionQuery,
        executor: ExecutorKind,
        subscriber: &Subscriber,
        cached: &crate::cache::CachedExecution,
    ) {
        for (video, labels) in &cached.labels {
            let _ = subscriber.tx.send(ResponseEvent::Video {
                video: *video,
                segments: runs_from_labels(labels),
                device: None,
            });
        }
        let latency = subscriber.submitted.elapsed();
        self.shared.metrics.on_cache_hit(latency);
        let _ = subscriber.tx.send(ResponseEvent::Done(QueryOutcome {
            id: subscriber.id,
            query: query.clone(),
            priority: subscriber.priority,
            executor,
            result: cached.result.clone(),
            // Filled in at delivery by `ResponseStream`.
            answer: Vec::new(),
            labels: cached.labels.clone(),
            from_cache: true,
            latency,
        }));
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Result-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.cache.stats()
    }

    /// Snapshot serving telemetry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.shared.queue.depth(), self.shared.device_busy_secs())
    }

    /// Stop admitting, drain pending queries, and join the pool. Safe to
    /// call more than once.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles: Vec<_> = self.handles.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ZeusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Can `executor` be rebuilt from a [`zeus_core::catalog::StoredPlan`]?
pub fn servable(executor: ExecutorKind) -> bool {
    matches!(executor, ExecutorKind::ZeusRl | ExecutorKind::ZeusSliding)
}

/// Map a ZQL `latency_budget` to an admission priority class: tight
/// budgets (≤ 250 ms) are interactive, moderate ones (≤ 1 s) standard,
/// loose or absent budgets batch/standard.
pub fn priority_for_budget(budget_ms: Option<f64>) -> Priority {
    match budget_ms {
        Some(ms) if ms <= 250.0 => Priority::Interactive,
        Some(ms) if ms <= 1_000.0 => Priority::Standard,
        Some(_) => Priority::Batch,
        None => Priority::Standard,
    }
}
