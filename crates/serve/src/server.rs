//! The serving engine: admission → schedule → execute → cache → respond.
//!
//! A [`ZeusServer`] owns a corpus, a [`PlanStore`], a worker pool of
//! simulated devices, an LRU [`ResultCache`], and a bounded admission
//! queue. [`ZeusServer::submit`] is the whole client API: it either
//! answers from cache immediately, admits the query for concurrent
//! execution, or rejects it (queue full / no stored plan / shutting
//! down) — and hands back a typed [`ResponseStream`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use zeus_core::baselines::QueryEngine;
use zeus_core::catalog::PlanCatalog;
use zeus_core::parallel::DevicePool;
use zeus_core::query::ActionQuery;
use zeus_core::ExecutorKind;
use zeus_sim::{CostModel, DeviceProfile};
use zeus_video::annotation::runs_from_labels;
use zeus_video::video::Split;
use zeus_video::SyntheticDataset;

use crate::admission::{AdmissionQueue, AdmitError};
use crate::cache::{CacheKey, CorpusId, ResultCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::plans::PlanStore;
use crate::pool::{worker_loop, ActiveQuery, PoolShared, Subscriber};
use crate::request::{Priority, QueryId, QueryOutcome, ResponseEvent, ResponseStream};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, one simulated device each.
    pub workers: usize,
    /// Admission-queue bound shared across priority classes.
    pub queue_capacity: usize,
    /// Result-cache entries.
    pub cache_capacity: usize,
    /// Hardware profile of every pool device.
    pub device: DeviceProfile,
    /// Default engine for submitted queries. Only the plan-reconstructable
    /// engines ([`ExecutorKind::ZeusRl`], [`ExecutorKind::ZeusSliding`])
    /// are servable.
    pub executor: ExecutorKind,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            device: DeviceProfile::default(),
            executor: ExecutorKind::ZeusRl,
        }
    }
}

/// A running serving engine. Dropping it shuts the pool down (pending
/// queries still drain).
pub struct ZeusServer {
    shared: Arc<PoolShared>,
    plans: Arc<PlanStore>,
    config: ServeConfig,
    corpus: CorpusId,
    cost: CostModel,
    next_id: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ZeusServer {
    /// Start a server over a corpus: spin up `config.workers` threads,
    /// each owning one device from a [`DevicePool`].
    ///
    /// `corpus_id` must identify how `dataset` was generated (it keys the
    /// result cache). Panics if the test split is empty or the configured
    /// executor is not servable.
    pub fn start(
        dataset: &SyntheticDataset,
        corpus_id: CorpusId,
        plans: PlanStore,
        config: ServeConfig,
    ) -> ZeusServer {
        assert!(config.workers > 0, "need at least one worker");
        assert!(
            servable(config.executor),
            "executor {} cannot be rebuilt from a stored plan",
            config.executor
        );
        let mut videos: Vec<_> = dataset
            .store
            .split(Split::Test)
            .into_iter()
            .cloned()
            .collect();
        videos.sort_by_key(|v| v.id);
        assert!(!videos.is_empty(), "corpus test split is empty");

        let pool = DevicePool::homogeneous(config.workers, config.device.clone());
        let shared = Arc::new(PoolShared {
            queue: AdmissionQueue::new(config.queue_capacity),
            board: Mutex::new(Vec::new()),
            inflight: Mutex::new(std::collections::HashMap::new()),
            devices: pool.into_devices().into_iter().map(Mutex::new).collect(),
            cache: ResultCache::new(config.cache_capacity),
            metrics: ServeMetrics::new(),
            videos,
        });
        let handles = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zeus-serve-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        let cost = CostModel::new(config.device.clone());
        ZeusServer {
            shared,
            plans: Arc::new(plans),
            config,
            corpus: corpus_id,
            cost,
            next_id: AtomicU64::new(0),
            handles: Mutex::new(handles),
        }
    }

    /// The plan store (for warming plans ahead of traffic).
    pub fn plans(&self) -> &PlanStore {
        &self.plans
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Submit with the server's default executor.
    pub fn submit(
        &self,
        query: ActionQuery,
        priority: Priority,
    ) -> Result<ResponseStream, AdmitError> {
        self.submit_with(query, priority, self.config.executor)
    }

    /// Submit a query for execution by `executor`.
    ///
    /// Fast paths first: a result-cache hit answers synchronously (the
    /// stream already holds every event); a missing plan or a full queue
    /// rejects. Otherwise the query is admitted and executes on the pool.
    pub fn submit_with(
        &self,
        query: ActionQuery,
        priority: Priority,
        executor: ExecutorKind,
    ) -> Result<ResponseStream, AdmitError> {
        let submitted = Instant::now();
        self.shared.metrics.on_submit();
        if !servable(executor) {
            self.shared.metrics.on_no_plan();
            return Err(AdmitError::NoPlan {
                key: format!("{executor} is not plan-reconstructable"),
            });
        }
        let id = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let cache_key = CacheKey::new(&query, self.corpus, executor);

        let (tx, rx) = mpsc::channel();
        let mut subscriber = Subscriber {
            id,
            priority,
            submitted,
            tx,
            coalesced: true,
        };

        // 1. Result cache.
        if let Some(cached) = self.shared.cache.get(&cache_key) {
            self.replay_cached(&query, executor, &subscriber, &cached);
            return Ok(ResponseStream::new(id, rx));
        }

        // 2. Coalesce onto an identical in-flight query: the follower
        //    subscribes to the running execution instead of re-running it.
        {
            let inflight = self.shared.inflight.lock().unwrap();
            if let Some(task) = inflight.get(&cache_key) {
                match task.subscribe(subscriber) {
                    Ok(()) => {
                        self.shared.metrics.on_admit();
                        return Ok(ResponseStream::new(id, rx));
                    }
                    // The query finalized between our cache miss and now;
                    // finalize publishes to the cache before closing, so
                    // this lookup cannot miss.
                    Err(returned) => subscriber = returned,
                }
            }
        }
        if let Some(cached) = self.shared.cache.get(&cache_key) {
            self.replay_cached(&query, executor, &subscriber, &cached);
            return Ok(ResponseStream::new(id, rx));
        }

        // 3. Plan resolution (never trains inline).
        let stored = self.plans.get(&query).ok_or_else(|| {
            self.shared.metrics.on_no_plan();
            AdmitError::NoPlan {
                key: PlanCatalog::key(&query),
            }
        })?;
        let engine: Box<dyn QueryEngine + Send + Sync> = match executor {
            ExecutorKind::ZeusRl => Box::new(stored.zeus_rl_engine(self.cost.clone())),
            ExecutorKind::ZeusSliding => Box::new(stored.sliding_engine(self.cost.clone())),
            _ => unreachable!("servable() vetted the executor"),
        };

        // 4. Admission, atomic with a coalescing re-check: an identical
        //    submission may have been admitted since the step-2 check, so
        //    the subscribe-or-create decision and the queue push both
        //    happen under the in-flight map lock (a shed submission is
        //    therefore never visible for coalescing either).
        enum Admitted {
            Queued,
            Coalesced,
            Finalized(Subscriber),
            Rejected(AdmitError),
        }
        let admitted = {
            let mut inflight = self.shared.inflight.lock().unwrap();
            if let Some(existing) = inflight.get(&cache_key) {
                subscriber.coalesced = true;
                match existing.subscribe(subscriber) {
                    Ok(()) => Admitted::Coalesced,
                    Err(returned) => Admitted::Finalized(returned),
                }
            } else {
                subscriber.coalesced = false;
                let task = Arc::new(ActiveQuery::new(
                    query.clone(),
                    executor,
                    stored.protocol,
                    engine,
                    cache_key.clone(),
                    subscriber,
                    self.shared.videos.len(),
                ));
                match self.shared.queue.try_push(Arc::clone(&task), priority) {
                    Ok(_depth) => {
                        inflight.insert(cache_key.clone(), task);
                        Admitted::Queued
                    }
                    Err(e) => Admitted::Rejected(e),
                }
            }
        };
        match admitted {
            Admitted::Queued | Admitted::Coalesced => {
                self.shared.metrics.on_admit();
                Ok(ResponseStream::new(id, rx))
            }
            Admitted::Finalized(returned) => {
                // The in-flight query finalized under our feet; finalize
                // publishes to the result cache before closing, so this
                // lookup is guaranteed to hit.
                let cached = self
                    .shared
                    .cache
                    .get(&cache_key)
                    .expect("finalized query must be cached before closing");
                self.replay_cached(&query, executor, &returned, &cached);
                Ok(ResponseStream::new(id, rx))
            }
            Admitted::Rejected(e) => {
                if matches!(e, AdmitError::QueueFull { .. }) {
                    self.shared.metrics.on_shed();
                }
                Err(e)
            }
        }
    }

    /// Answer a submission from a cached execution: replay per-video
    /// events and the final outcome onto the subscriber's channel.
    fn replay_cached(
        &self,
        query: &ActionQuery,
        executor: ExecutorKind,
        subscriber: &Subscriber,
        cached: &crate::cache::CachedExecution,
    ) {
        for (video, labels) in &cached.labels {
            let _ = subscriber.tx.send(ResponseEvent::Video {
                video: *video,
                segments: runs_from_labels(labels),
                device: None,
            });
        }
        let latency = subscriber.submitted.elapsed();
        self.shared.metrics.on_cache_hit(latency);
        let _ = subscriber.tx.send(ResponseEvent::Done(QueryOutcome {
            id: subscriber.id,
            query: query.clone(),
            priority: subscriber.priority,
            executor,
            result: cached.result.clone(),
            labels: cached.labels.clone(),
            from_cache: true,
            latency,
        }));
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Result-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.cache.stats()
    }

    /// Snapshot serving telemetry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.shared.queue.depth(), self.shared.device_busy_secs())
    }

    /// Stop admitting, drain pending queries, and join the pool. Safe to
    /// call more than once.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles: Vec<_> = self.handles.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ZeusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Can `executor` be rebuilt from a [`zeus_core::catalog::StoredPlan`]?
pub fn servable(executor: ExecutorKind) -> bool {
    matches!(executor, ExecutorKind::ZeusRl | ExecutorKind::ZeusSliding)
}
