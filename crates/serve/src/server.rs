//! The serving engine: admission → schedule → execute → cache → respond.
//!
//! A [`ZeusServer`] owns a corpus, a [`PlanStore`], a worker pool of
//! simulated devices, an LRU [`ResultCache`], and a bounded admission
//! queue. [`ZeusServer::submit`] is the whole client API: it either
//! answers from cache immediately, admits the query for concurrent
//! execution, or rejects it (queue full / no stored plan / shutting
//! down) — and hands back a typed [`ResponseStream`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use zeus_core::baselines::QueryEngine;
use zeus_core::catalog::PlanCatalog;
use zeus_core::parallel::DevicePool;
use zeus_core::query::ActionQuery;
use zeus_core::ExecutorKind;
use zeus_sim::{CostModel, DeviceProfile};
use zeus_video::annotation::runs_from_labels;
use zeus_video::video::Split;
use zeus_video::DataSource;

use zeus_core::query::QueryIr;
use zeus_obs::keys;
use zeus_obs::sync::lock_recover;
use zeus_obs::{ExplainReport, ObsHub, ObsSnapshot, StageClock, Trace};

use crate::admission::{AdmissionQueue, AdmitError};
use crate::cache::{CacheKey, CachedExecution, CorpusId, ResultCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::plans::PlanStore;
use crate::pool::{worker_loop, ActiveQuery, PoolShared, Subscriber};
use crate::quota::{Decision, FairShareGate, TenantId};
use crate::refine::{compute_exclude_spans, ExcludeSpans, QueryRefiner};
use crate::request::{Priority, QueryId, QueryOutcome, ResponseEvent, ResponseStream};

/// Why a server could not be started: every `assert!` that used to guard
/// [`ZeusServer::start`] is a typed variant here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A tuning knob is unusable (zero workers, zero queue/cache
    /// capacity, ...).
    InvalidConfig(String),
    /// The corpus test split holds no videos at this scale.
    EmptyCorpus,
    /// The configured executor cannot be rebuilt from a stored plan.
    NotServable(ExecutorKind),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::InvalidConfig(s) => write!(f, "invalid serve config: {s}"),
            ServeError::EmptyCorpus => write!(f, "corpus test split is empty"),
            ServeError::NotServable(kind) => {
                write!(f, "executor {kind} cannot be rebuilt from a stored plan")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads, one simulated device each.
    pub workers: usize,
    /// Admission-queue bound shared across priority classes.
    pub queue_capacity: usize,
    /// Result-cache entries.
    pub cache_capacity: usize,
    /// Hardware profile of every pool device.
    pub device: DeviceProfile,
    /// Default engine for submitted queries. Only the plan-reconstructable
    /// engines ([`ExecutorKind::ZeusRl`], [`ExecutorKind::ZeusSliding`])
    /// are servable.
    pub executor: ExecutorKind,
    /// Optional per-tenant admission gate. When set, tenant-attributed
    /// submissions ([`ZeusServer::submit_ir_as`]) are quota-checked
    /// before touching the cache or queue; unattributed submissions
    /// bypass it. A fleet router usually gates at the router instead and
    /// leaves this `None` to avoid double charging.
    pub quota: Option<Arc<FairShareGate>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 128,
            device: DeviceProfile::default(),
            executor: ExecutorKind::ZeusRl,
            quota: None,
        }
    }
}

/// A running serving engine. Dropping it shuts the pool down (pending
/// queries still drain).
pub struct ZeusServer {
    shared: Arc<PoolShared>,
    plans: Arc<PlanStore>,
    config: ServeConfig,
    corpus: CorpusId,
    dataset_name: String,
    cost: CostModel,
    next_id: AtomicU64,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Exclude-span maps per distinct `AND NOT` class set: the corpus
    /// scan is paid once per set, not once per submission.
    exclude_spans: Mutex<HashMap<Vec<u8>, Arc<ExcludeSpans>>>,
    obs: ObsHub,
}

impl ZeusServer {
    /// Start a server over any [`DataSource`]: spin up `config.workers`
    /// threads, each owning one device from a [`DevicePool`].
    ///
    /// The corpus identity keying the result cache and plan store is the
    /// source's content fingerprint ([`CorpusId::of`]), so two servers
    /// over different corpora sharing one [`PlanStore`] can never reuse
    /// or clobber each other's plans. `plans` may be passed by value or
    /// pre-shared as an `Arc` (the `zeus-api` session layer shares its
    /// store with the server it spawns). Returns a typed [`ServeError`]
    /// instead of panicking on an unusable configuration or an empty
    /// corpus.
    pub fn start(
        source: &dyn DataSource,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
    ) -> Result<ZeusServer, ServeError> {
        let name = source.name().to_string();
        Self::start_as(source, name, plans, config)
    }

    /// [`ZeusServer::start`] with an explicit served-dataset name — the
    /// name ZQL `FROM <name>` routing is checked against. Sessions pass
    /// the *registered* name here, which may differ from the source's
    /// own profile name (one corpus can be registered under several
    /// aliases).
    pub fn start_as(
        source: &dyn DataSource,
        name: impl Into<String>,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
    ) -> Result<ZeusServer, ServeError> {
        Self::start_with_obs(source, name, plans, config, ObsHub::new())
    }

    /// [`ZeusServer::start_as`] recording into a caller-owned
    /// observability hub: serving counters, the latency histogram, and
    /// request traces land in `obs`'s shared namespace (the session
    /// layer passes its own hub so training and serving telemetry share
    /// one snapshot).
    pub fn start_with_obs(
        source: &dyn DataSource,
        name: impl Into<String>,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
        obs: ObsHub,
    ) -> Result<ZeusServer, ServeError> {
        Self::start_inner(source, name, plans, config, obs, None)
    }

    /// [`ZeusServer::start_with_obs`] serving out of a caller-shared
    /// result cache instead of a private one. Result-cache memory is a
    /// *node* resource: several servers co-located on one node (e.g. one
    /// per corpus on a fleet shard) share a single LRU budget, so their
    /// corpora compete for residency exactly as they would for a real
    /// node's memory. Keys embed the corpus fingerprint, so sharing can
    /// never alias results across corpora. `config.cache_capacity` is
    /// ignored — the shared cache's own capacity governs.
    pub fn start_with_cache(
        source: &dyn DataSource,
        name: impl Into<String>,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
        obs: ObsHub,
        cache: Arc<ResultCache>,
    ) -> Result<ZeusServer, ServeError> {
        Self::start_inner(source, name, plans, config, obs, Some(cache))
    }

    fn start_inner(
        source: &dyn DataSource,
        name: impl Into<String>,
        plans: impl Into<Arc<PlanStore>>,
        config: ServeConfig,
        obs: ObsHub,
        cache: Option<Arc<ResultCache>>,
    ) -> Result<ZeusServer, ServeError> {
        // Normalize the served name so it can actually match parsed
        // `FROM` operands (the parser lowercases every routing name).
        let name = zeus_video::source::normalize_name(&name.into())
            .map_err(|e| ServeError::InvalidConfig(e.to_string()))?;
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig("need at least one worker".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue capacity must be positive".into(),
            ));
        }
        if cache.is_none() && config.cache_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "cache capacity must be positive".into(),
            ));
        }
        if !servable(config.executor) {
            return Err(ServeError::NotServable(config.executor));
        }
        let corpus_id = CorpusId::of(source);
        let mut videos: Vec<_> = source
            .store()
            .split(Split::Test)
            .into_iter()
            .cloned()
            .collect();
        videos.sort_by_key(|v| v.id);
        if videos.is_empty() {
            return Err(ServeError::EmptyCorpus);
        }

        let pool = DevicePool::homogeneous(config.workers, config.device.clone());
        let shared = Arc::new(PoolShared {
            queue: AdmissionQueue::new(config.queue_capacity),
            board: Mutex::new(Vec::new()),
            inflight: Mutex::new(std::collections::HashMap::new()),
            devices: pool.into_devices().into_iter().map(Mutex::new).collect(),
            cache: cache.unwrap_or_else(|| Arc::new(ResultCache::new(config.cache_capacity))),
            metrics: ServeMetrics::with_registry(&obs.metrics),
            obs: obs.clone(),
            videos,
        });
        let handles = (0..config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("zeus-serve-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker")
            })
            .collect();
        let cost = CostModel::new(config.device.clone());
        Ok(ZeusServer {
            shared,
            plans: plans.into(),
            config,
            corpus: corpus_id,
            dataset_name: name,
            cost,
            next_id: AtomicU64::new(0),
            handles: Mutex::new(handles),
            exclude_spans: Mutex::new(HashMap::new()),
            obs,
        })
    }

    /// The plan store (for warming plans ahead of traffic).
    pub fn plans(&self) -> &PlanStore {
        &self.plans
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The corpus identity (content fingerprint) this server serves.
    pub fn corpus_id(&self) -> CorpusId {
        self.corpus
    }

    /// The registry name of the dataset this server serves. Queries with
    /// a ZQL `FROM <other>` routing are refused at admission.
    pub fn dataset_name(&self) -> &str {
        &self.dataset_name
    }

    /// Submit with the server's default executor.
    pub fn submit(
        &self,
        query: ActionQuery,
        priority: Priority,
    ) -> Result<ResponseStream, AdmitError> {
        self.submit_with(query, priority, self.config.executor)
    }

    /// Submit an extended-ZQL query ([`QueryIr`]).
    ///
    /// The classic core (`ir.base`) drives plan resolution, execution,
    /// caching, and coalescing — a hundred differently-refined views of
    /// one query cost one execution. The extended clauses act here:
    ///
    /// * `latency_budget` selects the admission priority when the caller
    ///   passes `None` (see [`priority_for_budget`]): tight budgets ride
    ///   the interactive class.
    /// * `WINDOW` / `AND NOT` filter streamed per-video segments; with
    ///   `ORDER BY` / `LIMIT` they shape the final
    ///   [`QueryOutcome::answer`].
    pub fn submit_ir(
        &self,
        ir: &QueryIr,
        priority: Option<Priority>,
    ) -> Result<ResponseStream, AdmitError> {
        self.submit_ir_staged(ir, priority, None, None)
    }

    /// [`ZeusServer::submit_ir`] attributed to a tenant. When the server
    /// carries a [`FairShareGate`] (see [`ServeConfig::quota`]), the
    /// request is quota-checked first — an over-quota tenant is shed
    /// with [`AdmitError::QuotaExceeded`] before the submission touches
    /// the cache, plan store, or admission queue. The gate's structural
    /// invariant means an in-quota tenant is never shed here; only the
    /// bounded queue itself can still reject it.
    pub fn submit_ir_as(
        &self,
        ir: &QueryIr,
        tenant: &TenantId,
        priority: Option<Priority>,
    ) -> Result<ResponseStream, AdmitError> {
        if let Some(gate) = &self.config.quota {
            if let Decision::Shed { .. } = gate.admit(tenant, self.pressure()) {
                self.obs.metrics.counter(keys::SERVE_ADMIT_QUOTA_SHED).inc();
                return Err(AdmitError::QuotaExceeded {
                    tenant: tenant.clone(),
                });
            }
        }
        self.submit_ir(ir, priority)
    }

    fn submit_ir_staged(
        &self,
        ir: &QueryIr,
        priority: Option<Priority>,
        clock: Option<&mut StageClock>,
        trace: Option<&Trace>,
    ) -> Result<ResponseStream, AdmitError> {
        if let Some(requested) = &ir.source {
            if requested != &self.dataset_name {
                return Err(AdmitError::WrongDataset {
                    requested: requested.clone(),
                    serving: self.dataset_name.clone(),
                });
            }
        }
        let priority = priority.unwrap_or_else(|| priority_for_budget(ir.latency_budget_ms));
        let stream = self.submit_staged(
            ir.base.clone(),
            priority,
            self.config.executor,
            clock,
            trace,
        )?;
        // Resolve the exclude-span map from the per-set cache so the
        // admission path never re-scans the corpus for a repeated
        // `AND NOT` set.
        let spans = if ir.exclude.is_empty() {
            Arc::default()
        } else {
            let mut key: Vec<u8> = ir
                .exclude
                .iter()
                .map(|c| {
                    zeus_video::ActionClass::ALL
                        .iter()
                        .position(|x| x == c)
                        .expect("class in ALL") as u8
                })
                .collect();
            key.sort_unstable();
            key.dedup();
            let cached = lock_recover(&self.exclude_spans).get(&key).cloned();
            match cached {
                Some(spans) => spans,
                None => {
                    // Scan outside the lock (corpus-proportional work must
                    // not stall concurrent admissions); double-checked
                    // insert keeps one copy if two submissions race.
                    let computed =
                        Arc::new(compute_exclude_spans(&ir.exclude, &self.shared.videos));
                    let mut cache = lock_recover(&self.exclude_spans);
                    Arc::clone(cache.entry(key).or_insert(computed))
                }
            }
        };
        Ok(stream.with_refiner(QueryRefiner::with_exclude_spans(ir, spans)))
    }

    /// Submit a query for execution by `executor`.
    ///
    /// Fast paths first: a result-cache hit answers synchronously (the
    /// stream already holds every event); a missing plan or a full queue
    /// rejects. Otherwise the query is admitted and executes on the pool.
    pub fn submit_with(
        &self,
        query: ActionQuery,
        priority: Priority,
        executor: ExecutorKind,
    ) -> Result<ResponseStream, AdmitError> {
        self.submit_staged(query, priority, executor, None, None)
    }

    /// [`ZeusServer::submit_with`] plus stage instrumentation: every
    /// admission-path stage (`cache`, `plan`, `admission`) is recorded
    /// into the tracer's aggregates; an `EXPLAIN ANALYZE` caller passes a
    /// [`StageClock`] (contiguous checkpoints) and a [`Trace`] to get the
    /// full per-request tree. Hot-path submissions with neither still
    /// grow a sampled trace tree every [`TRACE_SAMPLE`]th request.
    fn submit_staged(
        &self,
        query: ActionQuery,
        priority: Priority,
        executor: ExecutorKind,
        clock: Option<&mut StageClock>,
        trace: Option<&Trace>,
    ) -> Result<ResponseStream, AdmitError> {
        let submitted = Instant::now();
        self.shared.metrics.on_submit();
        if !servable(executor) {
            self.shared.metrics.on_no_plan();
            return Err(AdmitError::NoPlan {
                key: format!("{executor} is not plan-reconstructable"),
            });
        }
        let id = QueryId(self.next_id.fetch_add(1, Ordering::Relaxed));
        // Hot-path submissions grow a sampled trace tree (deterministic,
        // id-based — no RNG); explain callers pass their own trace.
        let sampled = (clock.is_none() && trace.is_none() && id.0.is_multiple_of(TRACE_SAMPLE))
            .then(|| self.obs.tracer.trace("serve.submit"));
        let trace = trace.or(sampled.as_ref());
        let mut stages = StageScope::new(&self.obs, clock, trace, submitted);
        let cache_key = CacheKey::new(&query, self.corpus, executor);

        let (tx, rx) = mpsc::channel();
        let mut subscriber = Subscriber {
            id,
            priority,
            submitted,
            tx,
            coalesced: true,
        };

        // 1. Result cache.
        stages.enter("cache");
        if let Some(cached) = self.shared.cache.get(&cache_key) {
            self.replay_cached(&query, executor, &subscriber, &cached);
            drop(stages);
            return Ok(attach_trace(ResponseStream::new(id, rx), &sampled));
        }

        // 2. Coalesce onto an identical in-flight query: the follower
        //    subscribes to the running execution instead of re-running it.
        {
            let inflight = lock_recover(&self.shared.inflight);
            if let Some(task) = inflight.get(&cache_key) {
                match task.subscribe(subscriber) {
                    Ok(()) => {
                        self.shared.metrics.on_admit();
                        drop(inflight);
                        drop(stages);
                        return Ok(attach_trace(ResponseStream::new(id, rx), &sampled));
                    }
                    // The query finalized between our cache miss and now;
                    // finalize publishes to the cache before closing, so
                    // the re-check below normally hits (unless a shared
                    // node cache already evicted it again, in which case
                    // we fall through and execute afresh).
                    Err(returned) => subscriber = returned,
                }
            }
        }
        if let Some(cached) = self.shared.cache.get(&cache_key) {
            self.replay_cached(&query, executor, &subscriber, &cached);
            drop(stages);
            return Ok(attach_trace(ResponseStream::new(id, rx), &sampled));
        }

        // 3. Plan resolution (never trains inline).
        stages.enter("plan");
        let stored = self.plans.get(self.corpus, &query).ok_or_else(|| {
            self.shared.metrics.on_no_plan();
            AdmitError::NoPlan {
                key: PlanCatalog::key(&query),
            }
        })?;
        let engine: Box<dyn QueryEngine + Send + Sync> = match executor {
            ExecutorKind::ZeusRl => Box::new(stored.zeus_rl_engine(self.cost.clone())),
            ExecutorKind::ZeusSliding => Box::new(stored.sliding_engine(self.cost.clone())),
            _ => unreachable!("servable() vetted the executor"),
        };

        // 4. Admission, atomic with a coalescing re-check: an identical
        //    submission may have been admitted since the step-2 check, so
        //    the subscribe-or-create decision and the queue push both
        //    happen under the in-flight map lock (a shed submission is
        //    therefore never visible for coalescing either).
        enum Admitted {
            Queued,
            Coalesced,
            Replayed(Arc<CachedExecution>, Subscriber),
            Rejected(AdmitError),
        }
        stages.enter("admission");
        let mut engine = Some(engine);
        // Loops only on a rare double race: the in-flight query we tried
        // to join finalized under our feet AND its published result was
        // already evicted (possible under a shared node cache's memory
        // pressure) — then this submission must execute for itself.
        let admitted = loop {
            let mut inflight = lock_recover(&self.shared.inflight);
            if let Some(existing) = inflight.get(&cache_key) {
                subscriber.coalesced = true;
                match existing.subscribe(subscriber) {
                    Ok(()) => break Admitted::Coalesced,
                    Err(returned) => {
                        drop(inflight);
                        match self.shared.cache.get(&cache_key) {
                            Some(cached) => break Admitted::Replayed(cached, returned),
                            None => subscriber = returned,
                        }
                    }
                }
            } else {
                subscriber.coalesced = false;
                let task = Arc::new(ActiveQuery::new(
                    query.clone(),
                    executor,
                    stored.protocol,
                    engine.take().expect("the push branch runs at most once"),
                    cache_key.clone(),
                    subscriber,
                    self.shared.videos.len(),
                ));
                match self.shared.queue.try_push(Arc::clone(&task), priority) {
                    Ok(_depth) => {
                        inflight.insert(cache_key.clone(), task);
                        break Admitted::Queued;
                    }
                    Err(e) => break Admitted::Rejected(e),
                }
            }
        };
        drop(stages);
        match admitted {
            Admitted::Queued | Admitted::Coalesced => {
                self.shared.metrics.on_admit();
                Ok(attach_trace(ResponseStream::new(id, rx), &sampled))
            }
            Admitted::Replayed(cached, returned) => {
                self.replay_cached(&query, executor, &returned, &cached);
                Ok(attach_trace(ResponseStream::new(id, rx), &sampled))
            }
            Admitted::Rejected(e) => {
                if matches!(e, AdmitError::QueueFull { .. }) {
                    self.shared.metrics.on_shed();
                }
                Err(e)
            }
        }
    }

    /// `EXPLAIN ANALYZE`: submit `ir`, wait for its outcome, and return
    /// it with a per-stage timing report. The stages (`cache`, `plan`,
    /// `admission`, `execute`, `refine`) are contiguous checkpoint
    /// deltas, so their sum equals the measured end-to-end latency by
    /// construction; stages a fast path skipped appear with zero width.
    pub fn explain_ir(
        &self,
        ir: &QueryIr,
        priority: Option<Priority>,
    ) -> Result<(QueryOutcome, ExplainReport), AdmitError> {
        let mut clock = StageClock::new();
        let trace = self.obs.tracer.trace("serve.explain");
        let stream = self.submit_ir_staged(ir, priority, Some(&mut clock), Some(&trace))?;
        for name in ["cache", "plan", "admission"] {
            if !clock.stages().iter().any(|s| s.name == name) {
                clock.mark(name);
            }
        }
        let raw = {
            let _span = trace.span("execute");
            stream.wait_raw()
        };
        clock.mark("execute");
        clock.set_device_secs(raw.result.elapsed_secs);
        let outcome = {
            let _span = trace.span("refine");
            stream.refine_outcome(raw)
        };
        clock.mark("refine");
        let device_secs = outcome.result.elapsed_secs;
        let (stage_timings, total) = clock.finish();
        let report = ExplainReport {
            query: ir.to_sql(),
            executor: outcome.executor.name().to_string(),
            from_cache: outcome.from_cache,
            coalesced: outcome.from_cache && !outcome.labels.is_empty() && outcome.latency > total,
            stages: stage_timings,
            total,
            device_secs,
        };
        Ok((outcome, report))
    }

    /// Answer a submission from a cached execution: replay per-video
    /// events and the final outcome onto the subscriber's channel.
    fn replay_cached(
        &self,
        query: &ActionQuery,
        executor: ExecutorKind,
        subscriber: &Subscriber,
        cached: &crate::cache::CachedExecution,
    ) {
        for (video, labels) in &cached.labels {
            let _ = subscriber.tx.send(ResponseEvent::Video {
                video: *video,
                segments: runs_from_labels(labels),
                device: None,
            });
        }
        let latency = subscriber.submitted.elapsed();
        self.shared.metrics.on_cache_hit(latency);
        let _ = subscriber.tx.send(ResponseEvent::Done(QueryOutcome {
            id: subscriber.id,
            query: query.clone(),
            priority: subscriber.priority,
            executor,
            result: cached.result.clone(),
            // Filled in at delivery by `ResponseStream`.
            answer: Vec::new(),
            labels: cached.labels.clone(),
            from_cache: true,
            latency,
        }));
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Queue fill fraction in `[0, 1]` — the pressure signal the quota
    /// gate and the fleet router's shed policy consume.
    pub fn pressure(&self) -> f64 {
        self.shared.queue.depth() as f64 / self.config.queue_capacity as f64
    }

    /// Result-cache `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.cache.stats()
    }

    /// Snapshot serving telemetry.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared
            .metrics
            .snapshot(self.shared.queue.depth(), self.shared.device_busy_secs())
    }

    /// The server's observability hub (shared metric registry + tracer).
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Handle onto the span tracer — the sink `zeus trace` exports trace
    /// trees and per-stage aggregates from.
    pub fn trace_sink(&self) -> zeus_obs::Tracer {
        self.obs.tracer.clone()
    }

    /// One-stop observability snapshot: samples queue depth and
    /// per-device utilization into gauges, then returns the full metric
    /// namespace (serving counters, latency histogram, cache hit/miss).
    pub fn snapshot(&self) -> ObsSnapshot {
        self.obs
            .metrics
            .gauge(keys::SERVE_QUEUE_DEPTH)
            .set(self.shared.queue.depth() as f64);
        self.obs
            .metrics
            .gauge(keys::SERVE_DEVICE_SECS)
            .set(self.shared.metrics.device_secs());
        for (i, busy) in self.shared.device_busy_secs().iter().enumerate() {
            self.obs
                .metrics
                .gauge(&keys::pool_device_busy_secs(i))
                .set(*busy);
        }
        self.obs.metrics.snapshot()
    }

    /// Stop admitting, drain pending queries, and join the pool. Safe to
    /// call more than once.
    pub fn shutdown(&self) {
        self.shared.queue.close();
        let handles: Vec<_> = lock_recover(&self.handles).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ZeusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Every `TRACE_SAMPLE`th plain submission records a full trace tree
/// (deterministic id-based sampling; stage aggregates always record).
const TRACE_SAMPLE: u64 = 16;

fn attach_trace(stream: ResponseStream, sampled: &Option<Trace>) -> ResponseStream {
    match sampled {
        Some(trace) => stream.with_trace(trace.clone()),
        None => stream,
    }
}

/// Tracks the admission path's current stage: `enter` closes the
/// previous stage (checkpoint mark + tracer aggregate + trace span) and
/// opens the next; dropping the scope closes the last one, so early
/// returns stay accounted.
struct StageScope<'a> {
    obs: &'a ObsHub,
    clock: Option<&'a mut StageClock>,
    trace: Option<&'a Trace>,
    span: Option<zeus_obs::SpanGuard>,
    current: Option<&'static str>,
    last: Instant,
}

impl<'a> StageScope<'a> {
    fn new(
        obs: &'a ObsHub,
        clock: Option<&'a mut StageClock>,
        trace: Option<&'a Trace>,
        start: Instant,
    ) -> Self {
        StageScope {
            obs,
            clock,
            trace,
            span: None,
            current: None,
            last: start,
        }
    }

    fn enter(&mut self, name: &'static str) {
        self.close();
        self.current = Some(name);
        self.span = self.trace.map(|t| t.span(name));
    }

    fn close(&mut self) {
        if let Some(name) = self.current.take() {
            let now = Instant::now();
            // A live span records the stage aggregate on drop; only the
            // span-less hot path records it directly.
            if self.span.take().is_none() {
                self.obs
                    .tracer
                    .record_stage(name, now.saturating_duration_since(self.last));
            }
            if let Some(clock) = self.clock.as_deref_mut() {
                clock.mark(name);
            }
            self.last = now;
        }
    }
}

impl Drop for StageScope<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

/// Can `executor` be rebuilt from a [`zeus_core::catalog::StoredPlan`]?
pub fn servable(executor: ExecutorKind) -> bool {
    matches!(executor, ExecutorKind::ZeusRl | ExecutorKind::ZeusSliding)
}

/// Map a ZQL `latency_budget` to an admission priority class: tight
/// budgets (≤ 250 ms) are interactive, moderate ones (≤ 1 s) standard,
/// loose or absent budgets batch/standard.
pub fn priority_for_budget(budget_ms: Option<f64>) -> Priority {
    match budget_ms {
        Some(ms) if ms <= 250.0 => Priority::Interactive,
        Some(ms) if ms <= 1_000.0 => Priority::Standard,
        Some(_) => Priority::Batch,
        None => Priority::Standard,
    }
}
