//! Typed requests and streamed responses.
//!
//! A client submits an [`zeus_core::query::ActionQuery`] with a
//! [`Priority`]; the server answers over a typed channel: one
//! [`ResponseEvent::Video`] per finished video (in completion order —
//! results stream as devices finish) and a final [`ResponseEvent::Done`]
//! carrying the assembled, canonically-ordered [`QueryOutcome`].

use std::sync::mpsc;
use std::time::Duration;

use zeus_core::query::ActionQuery;
use zeus_core::result::QueryResult;
use zeus_core::ExecutorKind;
use zeus_video::VideoId;

use crate::refine::{answer_from_labels, QueryRefiner, SegmentHit};

/// Server-assigned query identifier (monotonic per server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Admission-control priority classes, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive dashboard/interactive queries.
    Interactive,
    /// Normal application traffic.
    Standard,
    /// Throughput-oriented background analytics.
    Batch,
}

impl Priority {
    /// All classes, highest priority first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Index into per-class tables (0 = highest).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One event on a query's response stream.
#[derive(Debug, Clone)]
pub enum ResponseEvent {
    /// A video finished processing (streamed in completion order).
    Video {
        /// The finished video.
        video: VideoId,
        /// Predicted action segments `(start, end)` in frames.
        segments: Vec<(usize, usize)>,
        /// Pool-local id of the device that processed it; `None` when the
        /// result was replayed from the cache.
        device: Option<usize>,
    },
    /// The query finished; final assembled outcome.
    Done(QueryOutcome),
}

/// Final outcome of a served query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Server-assigned id.
    pub id: QueryId,
    /// The query as submitted.
    pub query: ActionQuery,
    /// Priority class the query was served at.
    pub priority: Priority,
    /// The engine that executed it.
    pub executor: ExecutorKind,
    /// Evaluated result (F1 / precision / recall / simulated throughput),
    /// assembled in canonical video order so the outcome is independent of
    /// scheduling.
    pub result: QueryResult,
    /// Per-frame predictions per video, sorted by video id (byte-exact
    /// comparison target for the serial-equivalence property; always the
    /// *unrefined* execution, independent of extended-ZQL clauses).
    pub labels: Vec<(VideoId, Vec<bool>)>,
    /// The answer set the query returns: predicted segments after any
    /// extended-ZQL refinement (`WINDOW`/`AND NOT`/`ORDER BY`/`LIMIT`).
    /// Populated at delivery for `submit_ir` submissions (a classic IR
    /// gets every predicted run in canonical order); left empty for
    /// plain `submit` outcomes, whose callers read `labels`/`result` —
    /// use [`QueryOutcome::answer_set`] to derive it on demand.
    pub answer: Vec<SegmentHit>,
    /// Whether the outcome was answered from the result cache.
    pub from_cache: bool,
    /// Wall-clock latency from submission to completion.
    pub latency: Duration,
}

impl QueryOutcome {
    /// The canonical (unrefined) answer set, derived from `labels` —
    /// what `answer` holds for a classic `submit_ir` submission.
    pub fn answer_set(&self) -> Vec<SegmentHit> {
        answer_from_labels(&self.labels)
    }
}

/// Receiving half of a query's typed response channel.
///
/// When the submission carried extended-ZQL clauses, the stream holds the
/// compiled [`QueryRefiner`] and applies it on delivery: `Video` events
/// are filtered (window + class exclusions) and the final outcome's
/// [`QueryOutcome::answer`] is recomputed (filter + order + limit). The
/// raw `labels` pass through untouched — the cached execution and the
/// serial-equivalence contract are refinement-independent.
#[derive(Debug)]
pub struct ResponseStream {
    id: QueryId,
    rx: mpsc::Receiver<ResponseEvent>,
    refiner: Option<QueryRefiner>,
    /// Sampled request trace: `wait` times its `execute`/`refine` spans
    /// on it, and the trace tree publishes when the stream drops.
    trace: Option<zeus_obs::Trace>,
}

impl ResponseStream {
    pub(crate) fn new(id: QueryId, rx: mpsc::Receiver<ResponseEvent>) -> Self {
        ResponseStream {
            id,
            rx,
            refiner: None,
            trace: None,
        }
    }

    /// Attach an answer-set refiner (extended-ZQL submissions). An
    /// identity refiner still marks the stream as IR-submitted, so its
    /// outcomes carry the canonical answer set.
    pub(crate) fn with_refiner(mut self, refiner: QueryRefiner) -> Self {
        self.refiner = Some(refiner);
        self
    }

    /// Attach a request trace (sampled submissions).
    pub(crate) fn with_trace(mut self, trace: zeus_obs::Trace) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The query this stream answers.
    pub fn id(&self) -> QueryId {
        self.id
    }

    fn apply(&self, event: ResponseEvent) -> ResponseEvent {
        match event {
            ResponseEvent::Video {
                video,
                segments,
                device,
            } => ResponseEvent::Video {
                video,
                segments: match &self.refiner {
                    Some(refiner) => refiner.refine_segments(video, segments),
                    None => segments,
                },
                device,
            },
            // The answer set is computed at delivery, and only for IR
            // submissions (plain `submit` callers read labels/result and
            // should not pay a corpus-sized scan they never use — they
            // can call [`QueryOutcome::answer_set`] on demand).
            ResponseEvent::Done(mut outcome) => {
                if let Some(refiner) = &self.refiner {
                    outcome.answer = refiner.answer(&outcome.labels);
                }
                ResponseEvent::Done(outcome)
            }
        }
    }

    /// Block for the next event; `None` once the stream is exhausted
    /// (after [`ResponseEvent::Done`]).
    pub fn recv(&self) -> Option<ResponseEvent> {
        self.rx.recv().ok().map(|e| self.apply(e))
    }

    /// Drain the stream to the raw (unrefined) final outcome — the
    /// `execute` half of [`ResponseStream::wait`], split out so
    /// `EXPLAIN ANALYZE` can time execution and refinement separately.
    ///
    /// Panics if the server dropped the channel without sending `Done`
    /// (a server bug — every admitted query is answered).
    pub(crate) fn wait_raw(&self) -> QueryOutcome {
        loop {
            match self.rx.recv() {
                Ok(ResponseEvent::Done(outcome)) => return outcome,
                Ok(ResponseEvent::Video { .. }) => continue,
                Err(_) => panic!("server dropped response stream for {}", self.id),
            }
        }
    }

    /// Apply this stream's refiner to a raw outcome — the `refine` half
    /// of [`ResponseStream::wait`].
    pub(crate) fn refine_outcome(&self, outcome: QueryOutcome) -> QueryOutcome {
        match self.apply(ResponseEvent::Done(outcome)) {
            ResponseEvent::Done(outcome) => outcome,
            ResponseEvent::Video { .. } => unreachable!("apply preserves variants"),
        }
    }

    /// Drain the stream to completion and return the final outcome.
    ///
    /// Panics if the server dropped the channel without sending `Done`
    /// (a server bug — every admitted query is answered).
    pub fn wait(self) -> QueryOutcome {
        let raw = {
            let _span = self.trace.as_ref().map(|t| t.span("execute"));
            self.wait_raw()
        };
        let _span = self.trace.as_ref().map(|t| t.span("refine"));
        self.refine_outcome(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_indices_are_ordered() {
        assert_eq!(Priority::ALL.len(), 3);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Priority::Interactive < Priority::Batch);
    }

    #[test]
    fn stream_drains_to_done() {
        let (tx, rx) = mpsc::channel();
        let stream = ResponseStream::new(QueryId(7), rx);
        tx.send(ResponseEvent::Video {
            video: VideoId(1),
            segments: vec![(0, 5)],
            device: Some(0),
        })
        .unwrap();
        tx.send(ResponseEvent::Done(QueryOutcome {
            id: QueryId(7),
            query: ActionQuery::new(zeus_video::ActionClass::LeftTurn, 0.8).unwrap(),
            priority: Priority::Standard,
            executor: ExecutorKind::ZeusSliding,
            result: QueryResult {
                method: "Zeus-Sliding".into(),
                f1: 1.0,
                precision: 1.0,
                recall: 1.0,
                throughput_fps: 10.0,
                elapsed_secs: 1.0,
                invocations: 1,
                histogram: zeus_core::result::ConfigHistogram::new(),
            },
            labels: vec![],
            answer: vec![],
            from_cache: false,
            latency: Duration::from_millis(3),
        }))
        .unwrap();
        let outcome = stream.wait();
        assert_eq!(outcome.id, QueryId(7));
        assert!(!outcome.from_cache);
    }
}
