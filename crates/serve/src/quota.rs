//! Per-tenant admission quotas with fair-share load shedding.
//!
//! A serving fleet is multi-tenant: many consumers share the same
//! shards, and one tenant's burst must not starve everyone else's
//! interactive traffic. The contract here is the classic fair-share
//! one:
//!
//! * Every tenant owns a token bucket (`rate` tokens/sec, `burst`
//!   depth). A tenant holding a token is **in quota** and the gate
//!   always admits it — the gate never sheds under-quota traffic; only
//!   a physically full admission queue can reject it downstream.
//! * A tenant whose bucket is empty is **over quota**. In strict mode
//!   it is shed immediately. In work-conserving mode it is still
//!   admitted while the shard is idle — unused capacity is never wasted
//!   — but as pressure rises the gate sheds the *most*-over-quota
//!   tenants first: the shed threshold is `high_water / overage`, a
//!   monotonically decreasing function of how deep past its quota the
//!   tenant is running.
//!
//! Time is injected (`admit_at`) so the policy is a pure, testable
//! function of `(tenant state, pressure, now)`; the wall-clock
//! [`FairShareGate::admit`] entry point just supplies `now` from a
//! monotonic epoch.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

/// A tenant identity, threaded from the session/API layer through every
/// serve request. Cheap to clone (shared string).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// A tenant id from any string-ish name.
    pub fn new(name: impl AsRef<str>) -> Self {
        TenantId(Arc::from(name.as_ref()))
    }

    /// The tenant name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    /// The anonymous tenant every unattributed request is accounted to.
    fn default() -> Self {
        TenantId::new("default")
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TenantId {
    fn from(s: &str) -> Self {
        TenantId::new(s)
    }
}

impl From<String> for TenantId {
    fn from(s: String) -> Self {
        TenantId::new(s)
    }
}

/// A tenant's admission allowance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuotaSpec {
    /// Sustained admissions per second.
    pub rate_per_sec: f64,
    /// Bucket depth: how large a burst is in-quota after idling.
    pub burst: f64,
}

impl QuotaSpec {
    /// A quota of `rate_per_sec` with a burst of the same size.
    pub fn per_sec(rate_per_sec: f64) -> Self {
        QuotaSpec {
            rate_per_sec,
            burst: rate_per_sec.max(1.0),
        }
    }
}

impl Default for QuotaSpec {
    fn default() -> Self {
        QuotaSpec {
            rate_per_sec: 100.0,
            burst: 100.0,
        }
    }
}

/// How far into debt a work-conserving bucket may run, in bursts. Caps
/// the `overage` signal so one runaway tenant saturates the "shed me
/// first" ordering instead of overflowing it.
const DEBT_CAP_BURSTS: f64 = 4.0;

/// Classic token bucket with injected time (seconds since an arbitrary
/// epoch). Tokens go negative in work-conserving mode — the debt *is*
/// the overage signal.
#[derive(Debug, Clone)]
struct TokenBucket {
    spec: QuotaSpec,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    fn new(spec: QuotaSpec, now: f64) -> Self {
        TokenBucket {
            spec,
            tokens: spec.burst,
            last: now,
        }
    }

    fn refill(&mut self, now: f64) {
        let dt = (now - self.last).max(0.0);
        self.tokens = (self.tokens + dt * self.spec.rate_per_sec).min(self.spec.burst);
        self.last = now;
    }

    fn in_quota(&self) -> bool {
        self.tokens >= 1.0
    }

    fn take(&mut self) {
        let floor = -DEBT_CAP_BURSTS * self.spec.burst.max(1.0);
        self.tokens = (self.tokens - 1.0).max(floor);
    }

    /// How far over quota this tenant is running: 1.0 at the quota
    /// boundary, growing with bucket debt, capped by [`DEBT_CAP_BURSTS`].
    fn overage(&self) -> f64 {
        1.0 + (-self.tokens).max(0.0) / self.spec.burst.max(1.0)
    }
}

/// The gate's verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Admit the request.
    Admit {
        /// Whether the tenant held a token (true) or was admitted over
        /// quota on spare capacity (false, work-conserving mode only).
        in_quota: bool,
    },
    /// Shed the request: the tenant is over quota and the shard cannot
    /// spare the capacity.
    Shed {
        /// The tenant's overage factor (≥ 1.0) at decision time —
        /// larger means deeper past quota.
        overage: f64,
    },
}

impl Decision {
    /// True for either `Admit` variant.
    pub fn admitted(&self) -> bool {
        matches!(self, Decision::Admit { .. })
    }
}

/// Per-tenant admission/shed totals, for operator visibility.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests admitted (in-quota + over-quota).
    pub admitted: u64,
    /// Of the admitted, how many rode spare capacity over quota.
    pub over_quota_admitted: u64,
    /// Requests shed by the gate (always over-quota by construction).
    pub shed: u64,
}

struct TenantState {
    bucket: TokenBucket,
    stats: TenantStats,
}

/// Lock stripes for the tenant table. A fleet routes *every* request
/// through one gate, so a single tenant-map mutex would serialize the
/// whole fleet; striping by tenant hash keeps distinct tenants on
/// distinct locks (a tenant's own requests still serialize, which the
/// token-bucket arithmetic requires anyway).
const STRIPES: usize = 16;

/// The fair-share admission gate: one token bucket per tenant plus the
/// shed policy.
///
/// Structural invariant: [`Decision::Shed`] is only ever returned when
/// the tenant's bucket is empty, so an under-quota tenant can never be
/// shed by the gate — regardless of pressure, mode, or what any other
/// tenant is doing. The fairness property test in `tests/` leans on
/// this.
pub struct FairShareGate {
    default_quota: QuotaSpec,
    overrides: HashMap<TenantId, QuotaSpec>,
    /// Queue-pressure level (`depth / capacity`) at which a tenant just
    /// barely over quota starts being shed in work-conserving mode.
    high_water: f64,
    work_conserving: bool,
    epoch: Instant,
    stripes: Vec<Mutex<HashMap<TenantId, TenantState>>>,
}

impl fmt::Debug for FairShareGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FairShareGate")
            .field("default_quota", &self.default_quota)
            .field("overrides", &self.overrides.len())
            .field("high_water", &self.high_water)
            .field("work_conserving", &self.work_conserving)
            .finish()
    }
}

impl FairShareGate {
    /// A strict gate: over-quota requests are shed regardless of load.
    pub fn strict(default_quota: QuotaSpec) -> Self {
        Self::new(default_quota, false)
    }

    /// A work-conserving gate: over-quota requests ride spare capacity
    /// until pressure crosses `high_water / overage`.
    pub fn work_conserving(default_quota: QuotaSpec) -> Self {
        Self::new(default_quota, true)
    }

    fn new(default_quota: QuotaSpec, work_conserving: bool) -> Self {
        FairShareGate {
            default_quota,
            overrides: HashMap::new(),
            high_water: 0.75,
            work_conserving,
            epoch: Instant::now(),
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// The lock stripe owning `tenant`.
    fn stripe(&self, tenant: &TenantId) -> &Mutex<HashMap<TenantId, TenantState>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        tenant.hash(&mut hasher);
        &self.stripes[(hasher.finish() as usize) % STRIPES]
    }

    /// Override one tenant's quota (builder-style).
    pub fn with_quota(mut self, tenant: impl Into<TenantId>, quota: QuotaSpec) -> Self {
        self.overrides.insert(tenant.into(), quota);
        self
    }

    /// Change the work-conserving high-water mark (builder-style).
    pub fn with_high_water(mut self, high_water: f64) -> Self {
        self.high_water = high_water.clamp(0.0, 1.0);
        self
    }

    /// The quota `tenant` is subject to.
    pub fn quota_for(&self, tenant: &TenantId) -> QuotaSpec {
        self.overrides
            .get(tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// Gate one request using wall-clock time. `pressure` is the target
    /// shard's queue fill fraction in `[0, 1]`.
    pub fn admit(&self, tenant: &TenantId, pressure: f64) -> Decision {
        self.admit_at(tenant, pressure, self.epoch.elapsed().as_secs_f64())
    }

    /// Gate one request at an explicit time (seconds since the gate's
    /// epoch). Deterministic given the call sequence — the property
    /// tests drive this directly.
    pub fn admit_at(&self, tenant: &TenantId, pressure: f64, now_secs: f64) -> Decision {
        let quota = self.quota_for(tenant);
        let mut tenants = self.stripe(tenant).lock();
        let state = tenants
            .entry(tenant.clone())
            .or_insert_with(|| TenantState {
                bucket: TokenBucket::new(quota, now_secs),
                stats: TenantStats::default(),
            });
        state.bucket.refill(now_secs);
        if state.bucket.in_quota() {
            state.bucket.take();
            state.stats.admitted += 1;
            return Decision::Admit { in_quota: true };
        }
        let overage = state.bucket.overage();
        let shed = if self.work_conserving {
            // Most-over-quota tenants shed first: deeper debt lowers the
            // pressure threshold at which this tenant is turned away.
            pressure >= self.high_water / overage
        } else {
            true
        };
        if shed {
            state.stats.shed += 1;
            Decision::Shed { overage }
        } else {
            state.bucket.take();
            state.stats.admitted += 1;
            state.stats.over_quota_admitted += 1;
            Decision::Admit { in_quota: false }
        }
    }

    /// Per-tenant totals, sorted by tenant name.
    pub fn tenant_stats(&self) -> Vec<(TenantId, TenantStats)> {
        let mut out: Vec<_> = self
            .stripes
            .iter()
            .flat_map(|stripe| {
                stripe
                    .lock()
                    .iter()
                    .map(|(t, s)| (t.clone(), s.stats.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total requests shed by the gate across all tenants.
    pub fn total_shed(&self) -> u64 {
        self.stripes
            .iter()
            .map(|stripe| stripe.lock().values().map(|s| s.stats.shed).sum::<u64>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_quota_is_always_admitted_even_at_full_pressure() {
        let gate = FairShareGate::strict(QuotaSpec::per_sec(10.0));
        let t = TenantId::new("alice");
        // Burst of 10 tokens: the first 10 requests are in quota and must
        // be admitted even with the queue reported completely full.
        for i in 0..10 {
            let d = gate.admit_at(&t, 1.0, 0.0);
            assert!(d.admitted(), "request {i} shed while in quota: {d:?}");
        }
        assert!(matches!(gate.admit_at(&t, 1.0, 0.0), Decision::Shed { .. }));
    }

    #[test]
    fn strict_mode_sheds_over_quota_even_when_idle() {
        let gate = FairShareGate::strict(QuotaSpec {
            rate_per_sec: 1.0,
            burst: 1.0,
        });
        let t = TenantId::new("bursty");
        assert!(gate.admit_at(&t, 0.0, 0.0).admitted());
        assert!(matches!(gate.admit_at(&t, 0.0, 0.0), Decision::Shed { .. }));
    }

    #[test]
    fn work_conserving_admits_over_quota_while_idle_then_sheds_under_pressure() {
        let gate = FairShareGate::work_conserving(QuotaSpec {
            rate_per_sec: 1.0,
            burst: 1.0,
        });
        let t = TenantId::new("bursty");
        assert!(gate.admit_at(&t, 0.0, 0.0).admitted(), "token");
        let over = gate.admit_at(&t, 0.0, 0.0);
        assert_eq!(over, Decision::Admit { in_quota: false }, "spare capacity");
        assert!(
            matches!(gate.admit_at(&t, 0.9, 0.0), Decision::Shed { .. }),
            "pressure over high water sheds the over-quota tenant"
        );
    }

    #[test]
    fn deeper_overage_sheds_at_lower_pressure() {
        let gate = FairShareGate::work_conserving(QuotaSpec {
            rate_per_sec: 1.0,
            burst: 2.0,
        });
        let (light, heavy) = (TenantId::new("light"), TenantId::new("heavy"));
        // Drain both buckets; drive `heavy` deep into debt at idle.
        for _ in 0..2 {
            assert!(gate.admit_at(&light, 0.0, 0.0).admitted());
            assert!(gate.admit_at(&heavy, 0.0, 0.0).admitted());
        }
        for _ in 0..6 {
            assert!(gate.admit_at(&heavy, 0.0, 0.0).admitted());
        }
        // At a pressure below the barely-over threshold but above the
        // deep-debt threshold, only the deep-debt tenant is shed.
        let p = 0.5;
        assert!(gate.admit_at(&light, p, 0.0).admitted());
        assert!(matches!(
            gate.admit_at(&heavy, p, 0.0),
            Decision::Shed { .. }
        ));
    }

    #[test]
    fn refill_restores_quota() {
        let gate = FairShareGate::strict(QuotaSpec {
            rate_per_sec: 5.0,
            burst: 1.0,
        });
        let t = TenantId::new("steady");
        assert!(gate.admit_at(&t, 0.0, 0.0).admitted());
        assert!(!gate.admit_at(&t, 0.0, 0.0).admitted());
        // 0.2 s at 5 tokens/sec refills a full token.
        assert!(gate.admit_at(&t, 0.0, 0.21).admitted());
    }

    #[test]
    fn per_tenant_overrides_apply() {
        let gate = FairShareGate::strict(QuotaSpec::per_sec(1.0))
            .with_quota("vip", QuotaSpec::per_sec(100.0));
        let (vip, pleb) = (TenantId::new("vip"), TenantId::new("pleb"));
        for _ in 0..50 {
            assert!(gate.admit_at(&vip, 0.0, 0.0).admitted());
        }
        assert!(gate.admit_at(&pleb, 0.0, 0.0).admitted());
        assert!(!gate.admit_at(&pleb, 0.0, 0.0).admitted());
        let stats = gate.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(gate.total_shed(), 1);
    }
}
