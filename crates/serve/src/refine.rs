//! Answer-set refinement for extended-ZQL queries.
//!
//! The classic query core (classes + accuracy target) determines the
//! trained plan, the execution, and the cache identity; the extended
//! clauses — `WINDOW`, `AND NOT`, `ORDER BY confidence`, `LIMIT` — are
//! relational operators applied to the *answer set* after execution.
//! Keeping refinement out of the execution path means an extended query
//! still coalesces with (and is cached as) its classic core: a hundred
//! differently-windowed views of the same query cost one execution.
//!
//! Confidence is a saturating run-length prior, `len / (len + 1)`: the
//! simulated proxy models emit per-frame booleans rather than scores, and
//! longer predicted runs survive more independent positive decisions. A
//! deployment with score-emitting models would substitute calibrated
//! scores here; the ordering contract is what the API fixes.

use std::collections::HashMap;
use std::sync::Arc;

use zeus_core::query::{OrderBy, QueryIr};
use zeus_video::annotation::runs_from_labels;
use zeus_video::{ActionClass, Video, VideoId};

/// Ground-truth spans of a set of excluded classes, per video — the
/// expensive part of refiner construction, shareable across refiners
/// (the server caches one per distinct exclude set).
pub type ExcludeSpans = HashMap<VideoId, Vec<(usize, usize)>>;

/// Scan a corpus for the ground-truth spans of `exclude` (empty map for
/// an empty exclude set).
pub fn compute_exclude_spans<'a, I>(exclude: &[ActionClass], videos: I) -> ExcludeSpans
where
    I: IntoIterator<Item = &'a Video>,
{
    if exclude.is_empty() {
        return HashMap::new();
    }
    videos
        .into_iter()
        .map(|v| (v.id, runs_from_labels(&v.labels(exclude))))
        .collect()
}

/// One segment of the refined answer set.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentHit {
    /// The video the segment was localized in.
    pub video: VideoId,
    /// First frame (inclusive).
    pub start: usize,
    /// End frame (exclusive).
    pub end: usize,
    /// Saturating run-length confidence in `(0, 1)`.
    pub confidence: f64,
}

/// Confidence of a predicted run of `len` frames.
pub fn segment_confidence(len: usize) -> f64 {
    len as f64 / (len as f64 + 1.0)
}

/// The unrefined answer set: every predicted run of every video, in
/// canonical (video, start) order.
pub fn answer_from_labels(labels: &[(VideoId, Vec<bool>)]) -> Vec<SegmentHit> {
    labels
        .iter()
        .flat_map(|(video, l)| {
            runs_from_labels(l)
                .into_iter()
                .map(|(start, end)| SegmentHit {
                    video: *video,
                    start,
                    end,
                    confidence: segment_confidence(end - start),
                })
        })
        .collect()
}

/// Compiled answer-set refinement for one [`QueryIr`].
#[derive(Debug, Clone, Default)]
pub struct QueryRefiner {
    window: Option<(usize, usize)>,
    limit: Option<usize>,
    order: Option<OrderBy>,
    /// Ground-truth spans of the excluded classes, per video (shared —
    /// the scan is corpus-sized and reusable across refiners).
    exclude_spans: Arc<ExcludeSpans>,
}

impl QueryRefiner {
    /// Compile the refinement for `ir` over the corpus it will be
    /// applied to (needed to resolve `AND NOT` class exclusions).
    pub fn new<'a, I>(ir: &QueryIr, videos: I) -> Self
    where
        I: IntoIterator<Item = &'a Video>,
    {
        Self::with_exclude_spans(ir, Arc::new(compute_exclude_spans(&ir.exclude, videos)))
    }

    /// Compile the refinement reusing a precomputed exclude-span map
    /// (see [`compute_exclude_spans`]; the server caches one per
    /// distinct exclude set so submissions stay cheap).
    pub fn with_exclude_spans(ir: &QueryIr, exclude_spans: Arc<ExcludeSpans>) -> Self {
        QueryRefiner {
            window: ir.window,
            limit: ir.limit,
            order: ir.order,
            exclude_spans,
        }
    }

    /// True when every segment passes unchanged (classic query).
    pub fn is_identity(&self) -> bool {
        self.window.is_none()
            && self.limit.is_none()
            && self.order.is_none()
            && self.exclude_spans.is_empty()
    }

    /// The `LIMIT` cap, if any (lets streaming callers stop early).
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    fn keep(&self, video: VideoId, start: usize, end: usize) -> bool {
        if let Some((t0, t1)) = self.window {
            if end <= t0 || start >= t1 {
                return false;
            }
        }
        if let Some(spans) = self.exclude_spans.get(&video) {
            if spans.iter().any(|&(s, e)| start < e && s < end) {
                return false;
            }
        }
        true
    }

    /// Filter one video's predicted segments (window + exclusions).
    /// `ORDER BY` and `LIMIT` are global and applied by [`Self::answer`].
    pub fn refine_segments(
        &self,
        video: VideoId,
        segments: Vec<(usize, usize)>,
    ) -> Vec<(usize, usize)> {
        segments
            .into_iter()
            .filter(|&(s, e)| self.keep(video, s, e))
            .collect()
    }

    /// The full refined answer set: filter, order, limit.
    pub fn answer(&self, labels: &[(VideoId, Vec<bool>)]) -> Vec<SegmentHit> {
        let mut hits: Vec<SegmentHit> = answer_from_labels(labels)
            .into_iter()
            .filter(|h| self.keep(h.video, h.start, h.end))
            .collect();
        match self.order {
            Some(OrderBy::ConfidenceDesc) => hits.sort_by(|a, b| {
                b.confidence
                    .total_cmp(&a.confidence)
                    .then(a.video.cmp(&b.video))
                    .then(a.start.cmp(&b.start))
            }),
            Some(OrderBy::ConfidenceAsc) => hits.sort_by(|a, b| {
                a.confidence
                    .total_cmp(&b.confidence)
                    .then(a.video.cmp(&b.video))
                    .then(a.start.cmp(&b.start))
            }),
            None => {}
        }
        if let Some(n) = self.limit {
            hits.truncate(n);
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_core::query::ActionQuery;
    use zeus_video::ActionClass;

    fn ir(window: Option<(usize, usize)>, limit: Option<usize>, order: Option<OrderBy>) -> QueryIr {
        QueryIr {
            base: ActionQuery::new(ActionClass::LeftTurn, 0.8).unwrap(),
            source: None,
            exclude: vec![],
            window,
            limit,
            latency_budget_ms: None,
            order,
            explain: false,
        }
    }

    fn labels() -> Vec<(VideoId, Vec<bool>)> {
        // Video 1: runs (1,3) and (5,9); video 2: run (0,2).
        vec![
            (
                VideoId(1),
                vec![
                    false, true, true, false, false, true, true, true, true, false,
                ],
            ),
            (VideoId(2), vec![true, true, false]),
        ]
    }

    #[test]
    fn window_masks_segments_outside_the_range() {
        let r = QueryRefiner::new(&ir(Some((4, 10)), None, None), std::iter::empty());
        let hits = r.answer(&labels());
        assert_eq!(hits.len(), 1);
        assert_eq!(
            (hits[0].video, hits[0].start, hits[0].end),
            (VideoId(1), 5, 9)
        );
    }

    #[test]
    fn order_and_limit_rank_by_confidence_then_truncate() {
        let r = QueryRefiner::new(
            &ir(None, Some(2), Some(OrderBy::ConfidenceDesc)),
            std::iter::empty(),
        );
        let hits = r.answer(&labels());
        assert_eq!(hits.len(), 2);
        // Longest run (5,9) first, then the two-frame runs tie-broken by
        // (video, start): (1,1..3) before (2,0..2).
        assert_eq!((hits[0].start, hits[0].end), (5, 9));
        assert_eq!((hits[1].video, hits[1].start), (VideoId(1), 1));
        assert!(hits[0].confidence > hits[1].confidence);
    }

    #[test]
    fn identity_refiner_returns_every_run() {
        let r = QueryRefiner::new(&ir(None, None, None), std::iter::empty());
        assert!(r.is_identity());
        assert_eq!(r.answer(&labels()).len(), 3);
    }
}
