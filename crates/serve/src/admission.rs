//! Bounded admission queue with priority classes and load shedding.
//!
//! The queue enforces a hard bound shared across the three
//! [`Priority`] classes: a submission arriving at a full queue is *shed*
//! (rejected with [`AdmitError::QueueFull`]) instead of growing an
//! unbounded backlog — the standard open-system defence against
//! collapse under overload.
//!
//! Dequeue follows a fixed cyclic schedule weighted toward higher
//! priorities (`interactive ×4, standard ×2, batch ×1`). Every class
//! appears in the schedule, so as long as a class has waiting work it is
//! served at least once per cycle — weighted service *without* starvation,
//! unlike strict priority popping.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use zeus_obs::sync::{lock_recover, wait_recover, wait_timeout_recover};

use crate::request::Priority;

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The queue is at capacity; the request was shed.
    QueueFull {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
    /// No plan is installed for the query (see `PlanStore`); the server
    /// refuses work it would have to RL-train for inline.
    NoPlan {
        /// Catalog key of the missing plan.
        key: String,
    },
    /// The query's ZQL `FROM <dataset>` names a corpus this server does
    /// not serve (each server instance is bound to one data source).
    WrongDataset {
        /// The dataset the query asked for.
        requested: String,
        /// The dataset this server serves.
        serving: String,
    },
    /// The submitting tenant is over its admission quota and the
    /// fair-share gate shed the request (see
    /// [`FairShareGate`](crate::quota::FairShareGate)).
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: crate::quota::TenantId,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(
                    f,
                    "admission queue full (capacity {capacity}); request shed"
                )
            }
            AdmitError::ShuttingDown => write!(f, "server is shutting down"),
            AdmitError::NoPlan { key } => write!(f, "no stored plan for query '{key}'"),
            AdmitError::WrongDataset { requested, serving } => write!(
                f,
                "query targets dataset '{requested}' but this server serves '{serving}'"
            ),
            AdmitError::QuotaExceeded { tenant } => {
                write!(
                    f,
                    "tenant '{tenant}' is over its admission quota; request shed"
                )
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// The weighted cyclic dequeue schedule (class indices).
const SCHEDULE: [usize; 7] = [0, 0, 1, 0, 1, 0, 2];

/// Outcome of a bounded-wait pop.
#[derive(Debug, PartialEq, Eq)]
pub enum PopTimeout<T> {
    /// An item was dequeued.
    Item(T, Priority),
    /// The wait expired with the queue still empty (and open).
    Empty,
    /// The queue is closed and drained; no more items will ever arrive.
    Closed,
}

struct Inner<T> {
    queues: [VecDeque<T>; 3],
    len: usize,
    cursor: usize,
    closed: bool,
}

/// A bounded, priority-classed MPMC queue.
pub struct AdmissionQueue<T> {
    inner: Mutex<Inner<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// Create a queue holding at most `capacity` items across all classes.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        AdmissionQueue {
            inner: Mutex::new(Inner {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                cursor: 0,
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued across all classes.
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).len
    }

    /// Try to admit `item`; returns the post-admission depth, or sheds.
    pub fn try_push(&self, item: T, priority: Priority) -> Result<usize, AdmitError> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Err(AdmitError::ShuttingDown);
        }
        if inner.len >= self.capacity {
            return Err(AdmitError::QueueFull {
                capacity: self.capacity,
            });
        }
        inner.queues[priority.index()].push_back(item);
        inner.len += 1;
        let depth = inner.len;
        drop(inner);
        self.available.notify_one();
        Ok(depth)
    }

    /// Pop the next item per the weighted schedule, blocking while the
    /// queue is empty. Returns `None` once the queue is closed *and*
    /// drained.
    pub fn pop_blocking(&self) -> Option<(T, Priority)> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if inner.len > 0 {
                return Some(Self::pop_scheduled(&mut inner));
            }
            if inner.closed {
                return None;
            }
            inner = wait_recover(&self.available, inner);
        }
    }

    /// Non-blocking pop (used by idle workers probing between steals).
    pub fn try_pop(&self) -> Option<(T, Priority)> {
        let mut inner = lock_recover(&self.inner);
        if inner.len == 0 {
            return None;
        }
        Some(Self::pop_scheduled(&mut inner))
    }

    /// Pop with a bounded wait, so idle workers can alternate between the
    /// queue and the work-stealing board without missing either.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> PopTimeout<T> {
        let mut inner = lock_recover(&self.inner);
        if inner.len == 0 && !inner.closed {
            let (guard, _) = wait_timeout_recover(&self.available, inner, timeout);
            inner = guard;
        }
        if inner.len > 0 {
            let (item, priority) = Self::pop_scheduled(&mut inner);
            PopTimeout::Item(item, priority)
        } else if inner.closed {
            PopTimeout::Closed
        } else {
            PopTimeout::Empty
        }
    }

    fn pop_scheduled(inner: &mut Inner<T>) -> (T, Priority) {
        debug_assert!(inner.len > 0);
        // Walk the cyclic schedule from the cursor; every class appears in
        // it, so a non-empty class is found within one full cycle.
        for step in 0..SCHEDULE.len() {
            let class = SCHEDULE[(inner.cursor + step) % SCHEDULE.len()];
            if let Some(item) = inner.queues[class].pop_front() {
                inner.cursor = (inner.cursor + step + 1) % SCHEDULE.len();
                inner.len -= 1;
                return (item, Priority::ALL[class]);
            }
        }
        unreachable!("len > 0 but every class queue was empty");
    }

    /// Close the queue: pending items still drain, new pushes are refused,
    /// and blocked poppers wake up.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bound_is_enforced_and_shed_reported() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1, Priority::Standard), Ok(1));
        assert_eq!(q.try_push(2, Priority::Standard), Ok(2));
        assert_eq!(
            q.try_push(3, Priority::Interactive),
            Err(AdmitError::QueueFull { capacity: 2 })
        );
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn weighted_schedule_prefers_interactive_without_starving_batch() {
        let q = AdmissionQueue::new(64);
        for i in 0..7 {
            q.try_push(i, Priority::Interactive).unwrap();
            q.try_push(100 + i, Priority::Batch).unwrap();
        }
        // Over one full schedule cycle, batch must be served at least once
        // while interactive gets the lion's share.
        let first_cycle: Vec<Priority> = (0..7).map(|_| q.pop_blocking().unwrap().1).collect();
        let interactive = first_cycle
            .iter()
            .filter(|p| **p == Priority::Interactive)
            .count();
        let batch = first_cycle
            .iter()
            .filter(|p| **p == Priority::Batch)
            .count();
        assert!(interactive >= 4, "interactive served {interactive}/7");
        assert!(batch >= 1, "batch starved in a full cycle");
    }

    #[test]
    fn falls_through_to_lower_classes_when_higher_are_empty() {
        let q = AdmissionQueue::new(8);
        q.try_push(9, Priority::Batch).unwrap();
        assert_eq!(q.pop_blocking(), Some((9, Priority::Batch)));
    }

    #[test]
    fn close_drains_then_signals_end() {
        let q = AdmissionQueue::new(8);
        q.try_push(1, Priority::Standard).unwrap();
        q.close();
        assert_eq!(
            q.try_push(2, Priority::Standard),
            Err(AdmitError::ShuttingDown)
        );
        assert_eq!(q.pop_blocking(), Some((1, Priority::Standard)));
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(AdmissionQueue::new(16));
        let producers = 4;
        let per_producer = 50usize;
        let consumed = crossbeam::thread::scope(|s| {
            let producer_handles: Vec<_> = (0..producers)
                .map(|p| {
                    let q = Arc::clone(&q);
                    s.spawn(move |_| {
                        let mut sent = 0;
                        while sent < per_producer {
                            let priority = Priority::ALL[(p + sent) % 3];
                            if q.try_push(p * 1000 + sent, priority).is_ok() {
                                sent += 1;
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = Arc::clone(&q);
                    s.spawn(move |_| {
                        let mut got = Vec::new();
                        while let Some((item, _)) = q.pop_blocking() {
                            got.push(item);
                        }
                        got
                    })
                })
                .collect();
            for h in producer_handles {
                h.join().unwrap();
            }
            q.close();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        })
        .unwrap();
        assert_eq!(consumed.len(), producers * per_producer);
        let mut sorted = consumed.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), consumed.len(), "no item duplicated");
    }
}
