//! The worker pool: one thread per simulated device, pulling queries from
//! the admission queue and stealing per-video subtasks from each other.
//!
//! ## Scheduling
//!
//! A worker that dequeues a query becomes its *owner*: it posts the query
//! on the shared steal board and starts claiming its per-video subtasks.
//! Any idle worker (empty queue) scans the board and claims subtasks from
//! in-flight queries — so a single large query spreads across the whole
//! pool, and a busy pool still makes progress on every admitted query.
//! Claims are a single `fetch_add` on the query's cursor; the worker that
//! completes the *last* subtask assembles and sends the final outcome, so
//! completion never waits on the owner.
//!
//! ## Coalescing
//!
//! A submission identical to an in-flight query (same cache key) does not
//! execute again: it *subscribes* to the running query, receives a replay
//! of the per-video events already finished plus everything still to
//! come, and gets its own [`QueryOutcome`] (own id, own latency, marked
//! `from_cache`) — thundering herds cost one execution.
//!
//! ## Determinism
//!
//! Every subtask runs its video on a fresh clock, and assembly merges
//! parts in canonical video order — so the assembled
//! [`QueryOutcome`] is byte-identical regardless of worker count, steal
//! interleaving, or which device ran which video. (Per-*device* busy time
//! does depend on scheduling; the query-visible result does not.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use zeus_core::baselines::QueryEngine;
use zeus_core::metrics::EvalProtocol;
use zeus_core::query::ActionQuery;
use zeus_core::result::{ConfigHistogram, ExecutionResult, QueryResult};
use zeus_core::ExecutorKind;
use zeus_sim::{SimClock, SimDevice};
use zeus_video::annotation::runs_from_labels;
use zeus_video::{Video, VideoId};

use zeus_obs::sync::lock_recover;
use zeus_obs::ObsHub;

use crate::admission::{AdmissionQueue, PopTimeout};
use crate::cache::{CacheKey, CachedExecution, ResultCache};
use crate::metrics::ServeMetrics;
use crate::request::{Priority, QueryId, QueryOutcome, ResponseEvent};

/// One finished per-video subtask.
struct Part {
    video: VideoId,
    labels: Vec<bool>,
    clock: SimClock,
    histogram: ConfigHistogram,
}

/// One client waiting on a query (the submitter, or a coalesced
/// follower).
pub(crate) struct Subscriber {
    pub(crate) id: QueryId,
    pub(crate) priority: Priority,
    pub(crate) submitted: Instant,
    pub(crate) tx: Sender<ResponseEvent>,
    /// False only for the original submitter; followers are reported as
    /// cache-served (they cost no execution).
    pub(crate) coalesced: bool,
}

/// Mutable per-query state behind one lock (single lock ⇒ no ordering
/// hazards between part completion, event broadcast, and subscription).
struct QueryState {
    parts: Vec<Option<Part>>,
    completed: usize,
    subscribers: Vec<Subscriber>,
    /// Set at finalize; late identical submissions must re-check the
    /// result cache instead of subscribing.
    closed: bool,
}

/// A query being executed by the pool.
pub(crate) struct ActiveQuery {
    pub(crate) query: ActionQuery,
    pub(crate) executor: ExecutorKind,
    pub(crate) protocol: EvalProtocol,
    pub(crate) engine: Box<dyn QueryEngine + Send + Sync>,
    pub(crate) cache_key: CacheKey,
    /// Next unclaimed video position.
    next: AtomicUsize,
    state: Mutex<QueryState>,
}

impl ActiveQuery {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        query: ActionQuery,
        executor: ExecutorKind,
        protocol: EvalProtocol,
        engine: Box<dyn QueryEngine + Send + Sync>,
        cache_key: CacheKey,
        primary: Subscriber,
        num_videos: usize,
    ) -> Self {
        ActiveQuery {
            query,
            executor,
            protocol,
            engine,
            cache_key,
            next: AtomicUsize::new(0),
            state: Mutex::new(QueryState {
                parts: (0..num_videos).map(|_| None).collect(),
                completed: 0,
                subscribers: vec![primary],
                closed: false,
            }),
        }
    }

    /// Claim the next unprocessed video position, if any remain.
    fn claim(&self, total: usize) -> Option<usize> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        if i < total {
            Some(i)
        } else {
            None
        }
    }

    /// True when every subtask has been claimed (not necessarily done).
    fn fully_claimed(&self, total: usize) -> bool {
        self.next.load(Ordering::Relaxed) >= total
    }

    /// Attach a coalesced follower, replaying already-finished videos.
    /// Fails when the query has already finalized (caller re-checks the
    /// result cache, which finalize populated first).
    pub(crate) fn subscribe(&self, subscriber: Subscriber) -> Result<(), Subscriber> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err(subscriber);
        }
        for part in state.parts.iter().flatten() {
            let _ = subscriber.tx.send(ResponseEvent::Video {
                video: part.video,
                segments: runs_from_labels(&part.labels),
                device: None,
            });
        }
        state.subscribers.push(subscriber);
        Ok(())
    }
}

/// Everything the worker threads share.
pub(crate) struct PoolShared {
    pub(crate) queue: AdmissionQueue<Arc<ActiveQuery>>,
    pub(crate) board: Mutex<Vec<Arc<ActiveQuery>>>,
    /// In-flight queries by cache key, for submission coalescing.
    pub(crate) inflight: Mutex<HashMap<CacheKey, Arc<ActiveQuery>>>,
    pub(crate) devices: Vec<Mutex<SimDevice>>,
    pub(crate) cache: Arc<ResultCache>,
    pub(crate) metrics: ServeMetrics,
    /// The server's observability plane (shared registry + tracer).
    pub(crate) obs: ObsHub,
    /// Canonical test-split videos, sorted by id; every query runs over
    /// this corpus and subtask `i` is `videos[i]`.
    pub(crate) videos: Vec<Video>,
}

impl PoolShared {
    /// Per-device simulated busy seconds.
    pub(crate) fn device_busy_secs(&self) -> Vec<f64> {
        self.devices
            .iter()
            .map(|d| lock_recover(d).busy_secs())
            .collect()
    }
}

/// How long an idle worker waits on the queue before re-scanning the
/// steal board.
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// The worker loop: run by thread `worker` until the queue closes and all
/// in-flight work drains.
pub(crate) fn worker_loop(shared: &PoolShared, worker: usize) {
    loop {
        // New queries first: admission order (weighted by priority class)
        // beats stealing, so queued interactive work is never stuck
        // behind a batch query's fan-out.
        if let Some((task, _)) = shared.queue.try_pop() {
            own_query(shared, worker, task);
            continue;
        }
        if steal_one(shared, worker) {
            continue;
        }
        match shared.queue.pop_timeout(IDLE_WAIT) {
            PopTimeout::Item(task, _) => own_query(shared, worker, task),
            PopTimeout::Empty => continue,
            PopTimeout::Closed => {
                // Drain the board, then exit.
                if !steal_one(shared, worker) {
                    return;
                }
            }
        }
    }
}

/// Own a freshly-dequeued query: post it for stealing, then claim its
/// subtasks until none remain.
fn own_query(shared: &PoolShared, worker: usize, task: Arc<ActiveQuery>) {
    let total = shared.videos.len();
    lock_recover(&shared.board).push(Arc::clone(&task));
    while let Some(i) = task.claim(total) {
        execute_part(shared, worker, &task, i);
    }
    // Remaining parts (if any) are in flight on thieves; the last one to
    // finish assembles. Retire fully-claimed queries from the board.
    lock_recover(&shared.board).retain(|q| !q.fully_claimed(total));
}

/// Claim one subtask from any in-flight query on the board.
fn steal_one(shared: &PoolShared, worker: usize) -> bool {
    let total = shared.videos.len();
    let victim = {
        let board = lock_recover(&shared.board);
        board.iter().find(|q| !q.fully_claimed(total)).cloned()
    };
    match victim {
        Some(task) => match task.claim(total) {
            Some(i) => {
                execute_part(shared, worker, &task, i);
                true
            }
            None => false,
        },
        None => false,
    }
}

/// Run video `i` of `task` on this worker's device.
fn execute_part(shared: &PoolShared, worker: usize, task: &Arc<ActiveQuery>, i: usize) {
    let video = &shared.videos[i];
    let started = Instant::now();
    let mut clock = SimClock::new();
    let mut hist = ConfigHistogram::new();
    let labels = task.engine.execute_video(video, &mut clock, &mut hist);
    // Per-part device execution feeds the `execute` stage aggregate (the
    // full query-level `execute` span is timed by the submitter).
    shared
        .obs
        .tracer
        .record_stage("execute.part", started.elapsed());

    // Charge the simulated time to the executing device.
    lock_recover(&shared.devices[worker])
        .clock_mut()
        .merge(&clock);

    let event = ResponseEvent::Video {
        video: video.id,
        segments: runs_from_labels(&labels),
        device: Some(worker),
    };
    let finished = {
        // Store the part and broadcast atomically, so a subscriber
        // attaching concurrently sees each video exactly once (replay or
        // broadcast, never both or neither).
        let mut state = lock_recover(&task.state);
        for sub in &state.subscribers {
            let _ = sub.tx.send(event.clone());
        }
        state.parts[i] = Some(Part {
            video: video.id,
            labels,
            clock,
            histogram: hist,
        });
        state.completed += 1;
        state.completed
    };
    if finished == shared.videos.len() {
        finalize(shared, task);
    }
}

/// Assemble the canonical outcome after the last subtask completes.
fn finalize(shared: &PoolShared, task: &Arc<ActiveQuery>) {
    // 1. Snapshot the parts, leaving them in place: subscriptions stay
    //    open until step 3, and a follower attaching in the meantime
    //    must still receive the full per-video replay.
    let parts: Vec<Part> = {
        let state = lock_recover(&task.state);
        state
            .parts
            .iter()
            .map(|slot| {
                let part = slot.as_ref().expect("every part present at finalize");
                Part {
                    video: part.video,
                    labels: part.labels.clone(),
                    clock: part.clock.clone(),
                    histogram: part.histogram.clone(),
                }
            })
            .collect()
    };
    // Canonical merge: positions are in video-id order, so clock seconds
    // sum in a fixed order and the outcome is scheduling-independent.
    let mut labels = Vec::with_capacity(parts.len());
    let mut clock = SimClock::new();
    let mut histogram = ConfigHistogram::new();
    for part in &parts {
        labels.push((part.video, part.labels.clone()));
        clock.merge(&part.clock);
        histogram.merge(&part.histogram);
    }
    let exec = ExecutionResult {
        labels,
        clock,
        histogram,
    };
    let video_refs: Vec<&Video> = shared.videos.iter().collect();
    let report = exec.evaluate(&video_refs, &task.query.classes, task.protocol);
    let result = QueryResult::from_parts(task.executor.name(), &exec, &report);

    // 2. Publish to the result cache *before* closing subscriptions, so a
    //    submission that finds the query closed is guaranteed a cache hit.
    shared.cache.insert(
        task.cache_key.clone(),
        CachedExecution {
            labels: exec.labels.clone(),
            result: result.clone(),
        },
    );

    // 3. Close: no more subscribers; drain the present ones.
    let subscribers: Vec<Subscriber> = {
        let mut state = lock_recover(&task.state);
        state.closed = true;
        state.subscribers.drain(..).collect()
    };
    {
        // Remove only our own registration: belt-and-braces against ever
        // deleting a newer identical query's entry.
        let mut inflight = lock_recover(&shared.inflight);
        if inflight
            .get(&task.cache_key)
            .is_some_and(|current| Arc::ptr_eq(current, task))
        {
            inflight.remove(&task.cache_key);
        }
    }

    // 4. Answer everyone.
    let frames = exec.total_frames();
    let device_secs = exec.clock.elapsed_secs();
    for sub in subscribers {
        let latency = sub.submitted.elapsed();
        if sub.coalesced {
            shared.metrics.on_coalesced(latency);
        } else {
            shared.metrics.on_executed(latency, device_secs, frames);
        }
        let _ = sub.tx.send(ResponseEvent::Done(QueryOutcome {
            id: sub.id,
            query: task.query.clone(),
            priority: sub.priority,
            executor: task.executor,
            result: result.clone(),
            // Filled in at delivery by `ResponseStream` (refined per the
            // submission's IR, or the canonical full answer).
            answer: Vec::new(),
            labels: exec.labels.clone(),
            from_cache: sub.coalesced,
            latency,
        }));
    }
}
