//! Workload drivers for `zeus serve-bench` and the serving experiments.
//!
//! * **Open loop** — queries arrive on a Poisson process at a target rate,
//!   regardless of how the server keeps up: the honest way to measure
//!   tail latency and load shedding (a closed loop self-throttles and
//!   hides queueing collapse).
//! * **Closed loop** — a fixed number of in-flight clients, each
//!   submitting the next query the moment the previous one finishes:
//!   measures saturated throughput.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use zeus_core::query::ActionQuery;

use crate::admission::AdmitError;
use crate::metrics::MetricsSnapshot;
use crate::request::{Priority, QueryOutcome};
use crate::server::ZeusServer;

/// A traffic mix: queries are drawn round-robin from the templates, with
/// priorities assigned cyclically from `priorities`.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Query templates (must all have installed plans).
    pub templates: Vec<ActionQuery>,
    /// Priority classes cycled across submissions.
    pub priorities: Vec<Priority>,
    /// Total submissions.
    pub total: usize,
    /// Seed for arrival-time randomness.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A uniform mix over `templates` with all three priority classes.
    pub fn new(templates: Vec<ActionQuery>, total: usize, seed: u64) -> Self {
        assert!(
            !templates.is_empty(),
            "workload needs at least one template"
        );
        WorkloadSpec {
            templates,
            priorities: Priority::ALL.to_vec(),
            total,
            seed,
        }
    }

    fn nth(&self, i: usize) -> (ActionQuery, Priority) {
        (
            self.templates[i % self.templates.len()].clone(),
            self.priorities[i % self.priorities.len()],
        )
    }
}

/// Outcome of one workload run.
#[derive(Debug)]
pub struct WorkloadReport {
    /// Completed query outcomes, in completion order.
    pub outcomes: Vec<QueryOutcome>,
    /// Submissions shed at admission.
    pub shed: usize,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Server telemetry at the end of the run.
    pub metrics: MetricsSnapshot,
}

/// Drive an open-loop workload: Poisson arrivals at `rate_qps`.
///
/// The submitting thread never blocks on responses — streams are drained
/// on a collector thread — so arrivals stay on schedule even when the
/// server falls behind, and the queue bound (not client back-pressure)
/// is what sheds overload.
pub fn run_open_loop(server: &ZeusServer, spec: &WorkloadSpec, rate_qps: f64) -> WorkloadReport {
    assert!(rate_qps > 0.0, "arrival rate must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let start = Instant::now();
    let shed = AtomicUsize::new(0);

    let outcomes = crossbeam::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel();
        let collector = s.spawn(move |_| {
            let mut outcomes: Vec<QueryOutcome> = Vec::new();
            while let Ok(stream) = rx.recv() {
                let stream: crate::request::ResponseStream = stream;
                outcomes.push(stream.wait());
            }
            outcomes
        });

        let mut next_arrival = Instant::now();
        for i in 0..spec.total {
            // Exponential inter-arrival gap: -ln(U)/λ.
            let u: f64 = rng.gen_range(1e-12..1.0);
            let gap = Duration::from_secs_f64(-u.ln() / rate_qps);
            next_arrival += gap;
            if let Some(wait) = next_arrival.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let (query, priority) = spec.nth(i);
            match server.submit(query, priority) {
                Ok(stream) => {
                    let _ = tx.send(stream);
                }
                Err(AdmitError::QueueFull { .. }) => {
                    shed.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => panic!("open-loop submission failed: {e}"),
            }
        }
        drop(tx);
        collector.join().expect("collector panicked")
    })
    .expect("workload scope failed");

    WorkloadReport {
        shed: shed.load(Ordering::Relaxed),
        wall: start.elapsed(),
        metrics: server.metrics(),
        outcomes,
    }
}

/// Drive a closed-loop workload with `concurrency` in-flight clients.
///
/// Shed submissions are retried after a short backoff (a closed-loop
/// client has nothing better to do), so every query in the spec
/// eventually completes.
pub fn run_closed_loop(
    server: &ZeusServer,
    spec: &WorkloadSpec,
    concurrency: usize,
) -> WorkloadReport {
    assert!(concurrency > 0, "need at least one client");
    let start = Instant::now();
    let cursor = AtomicUsize::new(0);
    let shed = AtomicUsize::new(0);

    let mut outcomes = crossbeam::thread::scope(|s| {
        let clients: Vec<_> = (0..concurrency)
            .map(|_| {
                let cursor = &cursor;
                let shed = &shed;
                s.spawn(move |_| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= spec.total {
                            return mine;
                        }
                        let (query, priority) = spec.nth(i);
                        loop {
                            match server.submit(query.clone(), priority) {
                                Ok(stream) => {
                                    mine.push(stream.wait());
                                    break;
                                }
                                Err(AdmitError::QueueFull { .. }) => {
                                    shed.fetch_add(1, Ordering::Relaxed);
                                    std::thread::sleep(Duration::from_micros(200));
                                }
                                Err(e) => panic!("closed-loop submission failed: {e}"),
                            }
                        }
                    }
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect::<Vec<_>>()
    })
    .expect("workload scope failed");
    outcomes.sort_by_key(|o| o.id);

    WorkloadReport {
        shed: shed.load(Ordering::Relaxed),
        wall: start.elapsed(),
        metrics: server.metrics(),
        outcomes,
    }
}
