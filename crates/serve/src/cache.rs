//! LRU result cache keyed by `(query, dataset, configuration)`.
//!
//! A repeated query against an unchanged corpus is answered from cache
//! without touching a device: the cache stores the canonical per-video
//! labels and the simulated-time accounting of the first execution, which
//! is exactly reproducible (execution is deterministic), so a hit is
//! indistinguishable from a re-run minus the device time.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use zeus_core::query::ActionQuery;
use zeus_core::result::QueryResult;
use zeus_core::ExecutorKind;
use zeus_video::{DataSource, VideoId};

/// Identity of the corpus a server instance serves: the content
/// fingerprint of its [`DataSource`]. Part of every cache and plan key —
/// the same SQL against a different corpus is a different result, so two
/// corpora can never share or clobber each other's entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CorpusId(pub u64);

impl CorpusId {
    /// The identity of a data source (its content fingerprint). A corpus
    /// regenerated from the same profile and seed — or round-tripped
    /// through a `.zds` file — keeps its identity.
    pub fn of(source: &dyn DataSource) -> Self {
        CorpusId(source.fingerprint())
    }
}

impl std::fmt::Display for CorpusId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Cache key: query identity × corpus × executor configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Catalog key of the query (classes + rounded target; stable and
    /// human-readable, but *not* sufficient on its own — see
    /// `target_bits`).
    pub query_key: String,
    /// Exact accuracy target, as raw bits. The catalog key rounds the
    /// target to integer percent, which would conflate e.g. 0.846 and
    /// 0.854 into one entry.
    pub target_bits: u64,
    /// The corpus the result was computed over.
    pub corpus: CorpusId,
    /// Which engine produced it.
    pub executor: ExecutorKind,
}

impl CacheKey {
    /// Build the key for a query/corpus/executor triple.
    pub fn new(query: &ActionQuery, corpus: CorpusId, executor: ExecutorKind) -> Self {
        CacheKey {
            query_key: zeus_core::catalog::PlanCatalog::key(query),
            target_bits: query.target_accuracy.to_bits(),
            corpus,
            executor,
        }
    }
}

/// The cached portion of an execution (everything needed to replay the
/// outcome without a device).
#[derive(Debug, Clone)]
pub struct CachedExecution {
    /// Per-frame predictions per video, sorted by video id.
    pub labels: Vec<(VideoId, Vec<bool>)>,
    /// The evaluated result of the original run (F1, simulated
    /// throughput, invocations, histogram — all deterministic, so the
    /// replayed outcome is exactly the original).
    pub result: QueryResult,
}

struct Entry {
    value: Arc<CachedExecution>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
}

/// A thread-safe LRU cache of query executions.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl ResultCache {
    /// Cache holding at most `capacity` distinct results.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Look up a result, bumping recency; counts a hit or a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CachedExecution>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = tick;
                let value = Arc::clone(&entry.value);
                inner.hits += 1;
                Some(value)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) a result, evicting the least-recently-used
    /// entry when at capacity.
    pub fn insert(&self, key: CacheKey, value: CachedExecution) {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // O(n) LRU scan: capacities are small (hundreds at most) and
            // eviction is off the execution hot path.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            key,
            Entry {
                value: Arc::new(value),
                last_used: tick,
            },
        );
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Hit rate in `[0, 1]` (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_video::{ActionClass, DatasetKind};

    fn key(target_pct: u32) -> CacheKey {
        CacheKey::new(
            &ActionQuery::new(ActionClass::LeftTurn, target_pct as f64 / 100.0).unwrap(),
            CorpusId(0xB00),
            ExecutorKind::ZeusSliding,
        )
    }

    fn value(mark: u64) -> CachedExecution {
        CachedExecution {
            labels: vec![(VideoId(mark as u32), vec![true])],
            result: QueryResult {
                method: "Zeus-Sliding".into(),
                f1: 1.0,
                precision: 1.0,
                recall: 1.0,
                throughput_fps: 1.0,
                elapsed_secs: mark as f64,
                invocations: mark,
                histogram: zeus_core::result::ConfigHistogram::new(),
            },
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ResultCache::new(4);
        assert!(c.get(&key(80)).is_none());
        c.insert(key(80), value(1));
        let hit = c.get(&key(80)).expect("cached");
        assert_eq!(hit.result.invocations, 1);
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_corpora_and_executors_do_not_collide() {
        let c = ResultCache::new(8);
        c.insert(key(80), value(1));
        let other_corpus = CacheKey {
            corpus: CorpusId(0xB01),
            ..key(80)
        };
        let other_exec = CacheKey {
            executor: ExecutorKind::ZeusRl,
            ..key(80)
        };
        assert!(c.get(&other_corpus).is_none());
        assert!(c.get(&other_exec).is_none());
    }

    #[test]
    fn targets_rounding_to_the_same_percent_do_not_collide() {
        // The catalog key rounds to integer percent; the cache key must
        // still distinguish 0.846 from 0.854 (both round to 85%).
        let corpus = CorpusId::of(&DatasetKind::Bdd100k.generate(0.05, 7));
        let a = CacheKey::new(
            &ActionQuery::new(ActionClass::LeftTurn, 0.846).unwrap(),
            corpus,
            ExecutorKind::ZeusSliding,
        );
        let b = CacheKey::new(
            &ActionQuery::new(ActionClass::LeftTurn, 0.854).unwrap(),
            corpus,
            ExecutorKind::ZeusSliding,
        );
        assert_eq!(a.query_key, b.query_key, "catalog keys do round");
        assert_ne!(a, b, "cache keys must not");
        let c = ResultCache::new(4);
        c.insert(a.clone(), value(1));
        assert!(c.get(&b).is_none());
        assert!(c.get(&a).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest() {
        let c = ResultCache::new(2);
        c.insert(key(70), value(1));
        c.insert(key(80), value(2));
        // Touch 70 so 80 becomes the LRU victim.
        assert!(c.get(&key(70)).is_some());
        c.insert(key(90), value(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key(70)).is_some(), "recently used must survive");
        assert!(c.get(&key(80)).is_none(), "LRU entry must be evicted");
        assert!(c.get(&key(90)).is_some());
    }
}
