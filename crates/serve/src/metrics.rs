//! Serving telemetry: latency percentiles, throughput, queue depth, shed
//! and cache counters, device utilization.
//!
//! [`ServeMetrics`] is the live, thread-safe recorder the server updates;
//! [`MetricsSnapshot`] is the immutable view handed to operators (and
//! printed by `zeus serve-bench`). Latency is wall-clock (queueing +
//! scheduling + the real CPU cost of simulated execution); device seconds
//! are simulated time, so the two axes are reported separately.

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct MetricsInner {
    submitted: u64,
    admitted: u64,
    shed: u64,
    rejected_no_plan: u64,
    completed: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    latencies_us: Vec<u64>,
    device_secs: f64,
    frames: u64,
    first_completion: Option<Instant>,
    last_completion: Option<Instant>,
}

/// Live serving counters (interior-mutable, shared across workers).
#[derive(Debug, Default)]
pub struct ServeMetrics {
    inner: Mutex<MetricsInner>,
}

impl ServeMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a submission attempt.
    pub fn on_submit(&self) {
        self.inner.lock().unwrap().submitted += 1;
    }

    /// Record an admission into the queue.
    pub fn on_admit(&self) {
        self.inner.lock().unwrap().admitted += 1;
    }

    /// Record a load-shed rejection.
    pub fn on_shed(&self) {
        self.inner.lock().unwrap().shed += 1;
    }

    /// Record a no-plan rejection.
    pub fn on_no_plan(&self) {
        self.inner.lock().unwrap().rejected_no_plan += 1;
    }

    /// Record a result-cache hit answering a query without execution.
    pub fn on_cache_hit(&self, latency: Duration) {
        let mut inner = self.inner.lock().unwrap();
        inner.cache_hits += 1;
        Self::complete(&mut inner, latency, 0.0, 0);
    }

    /// Record a completed execution (cache miss path).
    pub fn on_executed(&self, latency: Duration, device_secs: f64, frames: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.cache_misses += 1;
        Self::complete(&mut inner, latency, device_secs, frames);
    }

    /// Record a submission answered by coalescing onto an in-flight
    /// identical query (no execution of its own).
    pub fn on_coalesced(&self, latency: Duration) {
        let mut inner = self.inner.lock().unwrap();
        inner.coalesced += 1;
        Self::complete(&mut inner, latency, 0.0, 0);
    }

    fn complete(inner: &mut MetricsInner, latency: Duration, device_secs: f64, frames: u64) {
        inner.completed += 1;
        inner.latencies_us.push(latency.as_micros() as u64);
        inner.device_secs += device_secs;
        inner.frames += frames;
        let now = Instant::now();
        inner.first_completion.get_or_insert(now);
        inner.last_completion = Some(now);
    }

    /// Take an immutable snapshot (queue depth and per-device busy time
    /// are sampled by the caller, which owns those structures).
    pub fn snapshot(&self, queue_depth: usize, device_busy_secs: Vec<f64>) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut sorted = inner.latencies_us.clone();
        sorted.sort_unstable();
        let pct = |p: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
            Duration::from_micros(sorted[rank - 1])
        };
        let mean = if sorted.is_empty() {
            Duration::ZERO
        } else {
            Duration::from_micros(sorted.iter().sum::<u64>() / sorted.len() as u64)
        };
        let wall = match (inner.first_completion, inner.last_completion) {
            (Some(a), Some(b)) if b > a => (b - a).as_secs_f64(),
            _ => 0.0,
        };
        MetricsSnapshot {
            submitted: inner.submitted,
            admitted: inner.admitted,
            shed: inner.shed,
            rejected_no_plan: inner.rejected_no_plan,
            completed: inner.completed,
            cache_hits: inner.cache_hits,
            cache_misses: inner.cache_misses,
            coalesced: inner.coalesced,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            mean,
            throughput_qps: if wall > 0.0 {
                // First completion anchors the window, so it is excluded
                // from the rate numerator.
                (inner.completed.saturating_sub(1)) as f64 / wall
            } else {
                0.0
            },
            queue_depth,
            device_secs: inner.device_secs,
            frames: inner.frames,
            device_busy_secs,
        }
    }
}

/// Point-in-time view of serving health.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Submission attempts (admitted + shed + no-plan rejections).
    pub submitted: u64,
    /// Requests admitted to the queue (or answered from cache).
    pub admitted: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests refused for want of a stored plan.
    pub rejected_no_plan: u64,
    /// Queries answered (executed or from cache).
    pub completed: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (executed queries).
    pub cache_misses: u64,
    /// Submissions coalesced onto an in-flight identical query.
    pub coalesced: u64,
    /// Median completion latency (wall clock).
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Mean latency.
    pub mean: Duration,
    /// Completions per wall-clock second over the completion window.
    pub throughput_qps: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Total simulated device seconds charged.
    pub device_secs: f64,
    /// Total video frames covered by executed queries.
    pub frames: u64,
    /// Per-device simulated busy seconds at snapshot time.
    pub device_busy_secs: Vec<f64>,
}

impl MetricsSnapshot {
    /// Fraction of completed queries answered without their own
    /// execution (cache hits + coalesced followers), in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.coalesced + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits + self.coalesced) as f64 / total as f64
        }
    }

    /// Shed rate over submissions, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Imbalance of simulated load across devices: max/mean busy time
    /// (1.0 = perfectly balanced; meaningless with idle pools).
    pub fn device_imbalance(&self) -> f64 {
        let n = self.device_busy_secs.len();
        if n == 0 {
            return 1.0;
        }
        let total: f64 = self.device_busy_secs.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let max = self.device_busy_secs.iter().cloned().fold(0.0, f64::max);
        max / (total / n as f64)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "completed {}/{} (shed {}, no-plan {}), queue depth {}",
            self.completed, self.submitted, self.shed, self.rejected_no_plan, self.queue_depth
        )?;
        writeln!(
            f,
            "latency p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  mean {:.2} ms",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.mean.as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "throughput {:.1} queries/s  cache hit rate {:.0}% ({} hits + {} coalesced / {} executed)",
            self.throughput_qps,
            self.cache_hit_rate() * 100.0,
            self.cache_hits,
            self.coalesced,
            self.cache_misses,
        )?;
        write!(
            f,
            "device time {:.1} simulated s over {} frames; imbalance {:.2}",
            self.device_secs,
            self.frames,
            self.device_imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_distribution() {
        let m = ServeMetrics::new();
        for ms in 1..=100u64 {
            m.on_executed(Duration::from_millis(ms), 0.5, 10);
        }
        let snap = m.snapshot(3, vec![1.0, 2.0]);
        assert_eq!(snap.completed, 100);
        assert_eq!(snap.p50, Duration::from_millis(50));
        assert_eq!(snap.p95, Duration::from_millis(95));
        assert_eq!(snap.p99, Duration::from_millis(99));
        assert_eq!(snap.queue_depth, 3);
        assert!((snap.device_secs - 50.0).abs() < 1e-9);
        assert_eq!(snap.frames, 1000);
        assert!((snap.device_imbalance() - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn rates_count_hits_and_sheds() {
        let m = ServeMetrics::new();
        m.on_submit();
        m.on_submit();
        m.on_submit();
        m.on_admit();
        m.on_shed();
        m.on_no_plan();
        m.on_cache_hit(Duration::from_micros(10));
        m.on_executed(Duration::from_millis(5), 1.0, 100);
        let snap = m.snapshot(0, vec![]);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected_no_plan, 1);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert!((snap.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let snap = ServeMetrics::new().snapshot(0, vec![]);
        assert_eq!(snap.p50, Duration::ZERO);
        assert_eq!(snap.throughput_qps, 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        let _ = format!("{snap}");
    }
}
