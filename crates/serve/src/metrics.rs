//! Serving telemetry: latency percentiles, throughput, queue depth, shed
//! and cache counters, device utilization.
//!
//! [`ServeMetrics`] is the live, thread-safe recorder the server updates;
//! [`MetricsSnapshot`] is the immutable view handed to operators (and
//! printed by `zeus serve-bench`). Latency is wall-clock (queueing +
//! scheduling + the real CPU cost of simulated execution); device seconds
//! are simulated time, so the two axes are reported separately.
//!
//! Counters and the latency histogram live in a shared
//! [`MetricsRegistry`] under the `serve.*` / `cache.result.*` namespace,
//! so one `ObsSnapshot` sees serving alongside training and cache
//! telemetry. Latency is a bounded-memory [`zeus_obs::LogHistogram`] (fixed 257
//! buckets) rather than an unbounded `Vec<u64>`: percentiles are within
//! one log bucket of exact, the mean stays exact, and a long-lived
//! server no longer grows memory per completed query.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use zeus_obs::keys;
use zeus_obs::sync::lock_recover;
use zeus_obs::{Counter, Histogram, MetricsRegistry};

/// Live serving counters (interior-mutable, shared across workers). All
/// hot-path updates are atomic bumps on registry handles; the only lock
/// guards the completion window timestamps, and it recovers from poison
/// rather than propagating a dead worker's panic.
#[derive(Debug)]
pub struct ServeMetrics {
    submitted: Counter,
    admitted: Counter,
    shed: Counter,
    rejected_no_plan: Counter,
    completed: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    coalesced: Counter,
    frames: Counter,
    latency: Histogram,
    /// Simulated device time in microseconds (atomic f64-free sum).
    device_us: AtomicU64,
    /// First/last completion instants anchoring the throughput window.
    window: Mutex<(Option<Instant>, Option<Instant>)>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, zeroed metrics over a private registry.
    pub fn new() -> Self {
        Self::with_registry(&MetricsRegistry::new())
    }

    /// Metrics recording into a shared registry (the server's
    /// [`ObsHub`](zeus_obs::ObsHub) namespace).
    pub fn with_registry(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            submitted: registry.counter(keys::SERVE_SUBMITTED),
            admitted: registry.counter(keys::SERVE_ADMITTED),
            shed: registry.counter(keys::SERVE_ADMIT_SHED),
            rejected_no_plan: registry.counter(keys::SERVE_ADMIT_NO_PLAN),
            completed: registry.counter(keys::SERVE_COMPLETED),
            cache_hits: registry.counter(keys::CACHE_RESULT_HIT),
            cache_misses: registry.counter(keys::CACHE_RESULT_MISS),
            coalesced: registry.counter(keys::SERVE_COALESCED),
            frames: registry.counter(keys::SERVE_FRAMES),
            latency: registry.histogram(keys::SERVE_LATENCY_US),
            device_us: AtomicU64::new(0),
            window: Mutex::new((None, None)),
        }
    }

    /// Record a submission attempt.
    pub fn on_submit(&self) {
        self.submitted.inc();
    }

    /// Record an admission into the queue.
    pub fn on_admit(&self) {
        self.admitted.inc();
    }

    /// Record a load-shed rejection.
    pub fn on_shed(&self) {
        self.shed.inc();
    }

    /// Record a no-plan rejection.
    pub fn on_no_plan(&self) {
        self.rejected_no_plan.inc();
    }

    /// Record a result-cache hit answering a query without execution.
    pub fn on_cache_hit(&self, latency: Duration) {
        self.cache_hits.inc();
        self.complete(latency, 0.0, 0);
    }

    /// Record a completed execution (cache miss path).
    pub fn on_executed(&self, latency: Duration, device_secs: f64, frames: u64) {
        self.cache_misses.inc();
        self.complete(latency, device_secs, frames);
    }

    /// Record a submission answered by coalescing onto an in-flight
    /// identical query (no execution of its own).
    pub fn on_coalesced(&self, latency: Duration) {
        self.coalesced.inc();
        self.complete(latency, 0.0, 0);
    }

    fn complete(&self, latency: Duration, device_secs: f64, frames: u64) {
        self.completed.inc();
        self.latency.record_duration(latency);
        if device_secs > 0.0 {
            self.device_us
                .fetch_add((device_secs * 1e6).round() as u64, Ordering::Relaxed);
        }
        self.frames.add(frames);
        let now = Instant::now();
        let mut window = lock_recover(&self.window);
        window.0.get_or_insert(now);
        window.1 = Some(now);
    }

    /// Total simulated device seconds charged so far.
    pub fn device_secs(&self) -> f64 {
        self.device_us.load(Ordering::Relaxed) as f64 / 1e6
    }

    /// Take an immutable snapshot (queue depth and per-device busy time
    /// are sampled by the caller, which owns those structures).
    pub fn snapshot(&self, queue_depth: usize, device_busy_secs: Vec<f64>) -> MetricsSnapshot {
        let hist = self.latency.inner();
        let completed = self.completed.get();
        let wall = {
            let window = lock_recover(&self.window);
            match *window {
                (Some(a), Some(b)) if b > a => (b - a).as_secs_f64(),
                _ => 0.0,
            }
        };
        MetricsSnapshot {
            submitted: self.submitted.get(),
            admitted: self.admitted.get(),
            shed: self.shed.get(),
            rejected_no_plan: self.rejected_no_plan.get(),
            completed,
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            coalesced: self.coalesced.get(),
            p50: Duration::from_micros(hist.quantile(0.50)),
            p95: Duration::from_micros(hist.quantile(0.95)),
            p99: Duration::from_micros(hist.quantile(0.99)),
            mean: Duration::from_micros(hist.mean()),
            throughput_qps: if wall > 0.0 {
                // First completion anchors the window, so it is excluded
                // from the rate numerator.
                completed.saturating_sub(1) as f64 / wall
            } else {
                0.0
            },
            queue_depth,
            device_secs: self.device_secs(),
            frames: self.frames.get(),
            device_busy_secs,
        }
    }
}

/// Point-in-time view of serving health.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Submission attempts (admitted + shed + no-plan rejections).
    pub submitted: u64,
    /// Requests admitted to the queue (or answered from cache).
    pub admitted: u64,
    /// Requests shed at admission (queue full).
    pub shed: u64,
    /// Requests refused for want of a stored plan.
    pub rejected_no_plan: u64,
    /// Queries answered (executed or from cache).
    pub completed: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses (executed queries).
    pub cache_misses: u64,
    /// Submissions coalesced onto an in-flight identical query.
    pub coalesced: u64,
    /// Median completion latency (wall clock, within one log bucket).
    pub p50: Duration,
    /// 95th-percentile latency (within one log bucket).
    pub p95: Duration,
    /// 99th-percentile latency (within one log bucket).
    pub p99: Duration,
    /// Mean latency (exact).
    pub mean: Duration,
    /// Completions per wall-clock second over the completion window.
    pub throughput_qps: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
    /// Total simulated device seconds charged.
    pub device_secs: f64,
    /// Total video frames covered by executed queries.
    pub frames: u64,
    /// Per-device simulated busy seconds at snapshot time.
    pub device_busy_secs: Vec<f64>,
}

impl MetricsSnapshot {
    /// Fraction of completed queries answered without their own
    /// execution (cache hits + coalesced followers), in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.coalesced + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            (self.cache_hits + self.coalesced) as f64 / total as f64
        }
    }

    /// Shed rate over submissions, in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Imbalance of simulated load across devices: max/mean busy time
    /// (1.0 = perfectly balanced; meaningless with idle pools).
    pub fn device_imbalance(&self) -> f64 {
        let n = self.device_busy_secs.len();
        if n == 0 {
            return 1.0;
        }
        let total: f64 = self.device_busy_secs.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let max = self.device_busy_secs.iter().cloned().fold(0.0, f64::max);
        max / (total / n as f64)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "completed {}/{} (shed {}, no-plan {}), queue depth {}",
            self.completed, self.submitted, self.shed, self.rejected_no_plan, self.queue_depth
        )?;
        writeln!(
            f,
            "latency p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  mean {:.2} ms",
            self.p50.as_secs_f64() * 1e3,
            self.p95.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.mean.as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "throughput {:.1} queries/s  cache hit rate {:.0}% ({} hits + {} coalesced / {} executed)",
            self.throughput_qps,
            self.cache_hit_rate() * 100.0,
            self.cache_hits,
            self.coalesced,
            self.cache_misses,
        )?;
        write!(
            f,
            "device time {:.1} simulated s over {} frames; imbalance {:.2}",
            self.device_secs,
            self.frames,
            self.device_imbalance()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_obs::LogHistogram;

    /// Percentile estimates must land in the same (or an adjacent) log
    /// bucket as the exact order statistic — the bounded-memory
    /// histogram's accuracy contract.
    fn assert_within_one_bucket(est: Duration, exact: Duration, label: &str) {
        let d = (LogHistogram::bucket_of(est.as_micros() as u64) as i64
            - LogHistogram::bucket_of(exact.as_micros() as u64) as i64)
            .abs();
        assert!(
            d <= 1,
            "{label}: {est:?} vs exact {exact:?} ({d} buckets apart)"
        );
    }

    #[test]
    fn percentiles_over_known_distribution() {
        let m = ServeMetrics::new();
        for ms in 1..=100u64 {
            m.on_executed(Duration::from_millis(ms), 0.5, 10);
        }
        let snap = m.snapshot(3, vec![1.0, 2.0]);
        assert_eq!(snap.completed, 100);
        assert_within_one_bucket(snap.p50, Duration::from_millis(50), "p50");
        assert_within_one_bucket(snap.p95, Duration::from_millis(95), "p95");
        assert_within_one_bucket(snap.p99, Duration::from_millis(99), "p99");
        // The mean stays exact: sum(1..=100) ms / 100 = 50.5 ms.
        assert_eq!(snap.mean, Duration::from_micros(50_500));
        assert_eq!(snap.queue_depth, 3);
        assert!((snap.device_secs - 50.0).abs() < 1e-9);
        assert_eq!(snap.frames, 1000);
        assert!((snap.device_imbalance() - 2.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn latency_memory_stays_bounded() {
        // The old recorder pushed every latency into a Vec; a sustained
        // workload grew without bound. The histogram's storage is a
        // fixed array regardless of volume.
        let m = ServeMetrics::new();
        for i in 0..50_000u64 {
            m.on_executed(Duration::from_micros(1 + i % 10_000), 0.0, 0);
        }
        let snap = m.snapshot(0, vec![]);
        assert_eq!(snap.completed, 50_000);
        assert!(m.latency.inner().nonzero_buckets().len() <= 257);
    }

    #[test]
    fn rates_count_hits_and_sheds() {
        let m = ServeMetrics::new();
        m.on_submit();
        m.on_submit();
        m.on_submit();
        m.on_admit();
        m.on_shed();
        m.on_no_plan();
        m.on_cache_hit(Duration::from_micros(10));
        m.on_executed(Duration::from_millis(5), 1.0, 100);
        let snap = m.snapshot(0, vec![]);
        assert_eq!(snap.shed, 1);
        assert_eq!(snap.rejected_no_plan, 1);
        assert!((snap.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert!((snap.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn shares_a_registry_namespace() {
        let registry = MetricsRegistry::new();
        let m = ServeMetrics::with_registry(&registry);
        m.on_submit();
        m.on_shed();
        m.on_cache_hit(Duration::from_micros(10));
        let snap = registry.snapshot();
        assert_eq!(snap.counter(keys::SERVE_SUBMITTED), Some(1));
        assert_eq!(snap.counter(keys::SERVE_ADMIT_SHED), Some(1));
        assert_eq!(snap.counter(keys::CACHE_RESULT_HIT), Some(1));
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let snap = ServeMetrics::new().snapshot(0, vec![]);
        assert_eq!(snap.p50, Duration::ZERO);
        assert_eq!(snap.throughput_qps, 0.0);
        assert_eq!(snap.cache_hit_rate(), 0.0);
        let _ = format!("{snap}");
    }
}
