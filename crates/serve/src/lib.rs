//! # zeus-serve
//!
//! A concurrent query-serving subsystem for the Zeus VDBMS: the
//! production layer the paper stops short of (§6.4 ends at one-shot
//! inter-video parallelism).
//!
//! ## Architecture: admission → schedule → execute → cache → respond
//!
//! ```text
//!             submit(query, priority)
//!                      │
//!            ┌─────────▼─────────┐   hit
//!            │   ResultCache     ├────────► ResponseStream (replayed)
//!            │  (LRU, keyed by   │
//!            │ query×corpus×exec)│
//!            └─────────┬─────────┘ miss
//!            ┌─────────▼─────────┐  none
//!            │    PlanStore      ├────────► AdmitError::NoPlan
//!            │ (memory → .zpln)  │
//!            └─────────┬─────────┘
//!            ┌─────────▼─────────┐  full
//!            │  AdmissionQueue   ├────────► AdmitError::QueueFull (shed)
//!            │ (bounded, 3-class │
//!            │  weighted RR)     │
//!            └─────────┬─────────┘
//!            ┌─────────▼──────────────────────┐
//!            │ worker pool (N × SimDevice)    │
//!            │  owner claims per-video parts; │
//!            │  idle workers steal from the   │
//!            │  board; last finisher          │
//!            │  assembles canonically         │
//!            └─────────┬──────────────────────┘
//!                      ▼
//!        ResponseStream: Video events + Done(QueryOutcome)
//! ```
//!
//! * [`admission`] — the bounded priority queue with load shedding.
//! * [`plans`] — plan reuse over the [`zeus_core::catalog::PlanCatalog`]
//!   so repeated queries never re-train.
//! * [`pool`] — the work-stealing worker pool over
//!   [`zeus_core::parallel::DevicePool`] devices.
//! * [`cache`] — the LRU result cache.
//! * [`quota`] — per-tenant token-bucket quotas with fair-share load
//!   shedding (the multi-tenant contract the fleet router enforces).
//! * [`metrics`] — p50/p95/p99 latency, throughput, shed/hit counters.
//! * [`request`] — typed requests and streamed responses.
//! * [`server`] — [`ZeusServer`], tying it together.
//! * [`workload`] — open-loop (Poisson) and closed-loop drivers.
//!
//! ## Determinism
//!
//! Execution is deterministic per video, subtasks run on fresh clocks,
//! and assembly merges in canonical video order — so a query's
//! [`QueryOutcome`] is byte-identical whether it ran on one device or
//! sixteen, interleaved with a hundred other queries or alone. The
//! property tests in `tests/` pin this down.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod metrics;
pub mod plans;
pub mod pool;
pub mod quota;
pub mod refine;
pub mod request;
pub mod server;
pub mod workload;

pub use admission::{AdmissionQueue, AdmitError};
pub use cache::{CacheKey, CachedExecution, CorpusId, ResultCache};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use plans::PlanStore;
pub use quota::{Decision, FairShareGate, QuotaSpec, TenantId, TenantStats};
pub use refine::{compute_exclude_spans, ExcludeSpans, QueryRefiner, SegmentHit};
pub use request::{Priority, QueryId, QueryOutcome, ResponseEvent, ResponseStream};
pub use server::{priority_for_budget, servable, ServeConfig, ServeError, ZeusServer};
pub use workload::{run_closed_loop, run_open_loop, WorkloadReport, WorkloadSpec};
pub use zeus_obs::{ExplainReport, ObsHub, ObsSnapshot, StageTiming};
