//! Plan resolution with reuse: in-memory map in front of the on-disk
//! [`PlanCatalog`].
//!
//! Planning a query costs minutes of simulated APFG fine-tuning plus RL
//! training (Table 6); the serving layer must never pay it on the request
//! path. A [`PlanStore`] resolves queries to [`StoredPlan`]s through two
//! tiers — a process-local map, then the `.zpln` catalog directory — and
//! exposes [`PlanStore::install`] for warming either tier ahead of
//! traffic. A query with no resolvable plan is refused at admission
//! (`AdmitError::NoPlan`) rather than trained inline.

use std::collections::HashMap;
use std::io;
use std::sync::Arc;

use parking_lot::RwLock;
use zeus_core::catalog::{decode_plan, encode_plan, PlanCatalog, StoredPlan};
use zeus_core::planner::QueryPlan;
use zeus_core::query::ActionQuery;

/// Exact in-memory key for a query: the catalog key rounds the accuracy
/// target to integer percent, so it is disambiguated with the raw target
/// bits (0.846 and 0.854 are distinct plans even though both round to
/// `...-085`).
type MemKey = (String, u64);

fn mem_key(query: &ActionQuery) -> MemKey {
    (PlanCatalog::key(query), query.target_accuracy.to_bits())
}

/// Two-tier plan resolver: memory, then catalog.
pub struct PlanStore {
    catalog: Option<PlanCatalog>,
    mem: RwLock<HashMap<MemKey, Arc<StoredPlan>>>,
}

impl PlanStore {
    /// A store with no disk tier (plans must be installed explicitly).
    pub fn in_memory() -> Self {
        PlanStore {
            catalog: None,
            mem: RwLock::new(HashMap::new()),
        }
    }

    /// A store backed by a catalog directory: plans persisted by earlier
    /// `zeus plan` invocations are reused without retraining, and
    /// installed plans are persisted for future processes.
    pub fn with_catalog(dir: impl AsRef<std::path::Path>) -> io::Result<Self> {
        Ok(PlanStore {
            catalog: Some(PlanCatalog::open(dir)?),
            mem: RwLock::new(HashMap::new()),
        })
    }

    /// Install a freshly-trained plan into both tiers. Returns the
    /// catalog path when a disk tier exists.
    pub fn install(
        &self,
        plan: &QueryPlan,
        apfg_seed: u64,
    ) -> io::Result<Option<std::path::PathBuf>> {
        // Round-trip through the catalog codec so the installed plan is
        // exactly what a catalog load would produce (same policy bytes,
        // same rebuilt APFG) — serving behaviour cannot depend on whether
        // the plan came from memory or disk.
        let stored =
            decode_plan(&encode_plan(plan, apfg_seed)).expect("freshly encoded plan must decode");
        self.mem
            .write()
            .insert(mem_key(&stored.query), Arc::new(stored));
        match &self.catalog {
            Some(catalog) => Ok(Some(catalog.save(plan, apfg_seed)?)),
            None => Ok(None),
        }
    }

    /// Install an already-materialized stored plan into the memory tier
    /// (no disk write). Used to share one trained policy across many
    /// query identities — e.g. the same class served at many accuracy
    /// targets — without retraining per identity.
    pub fn install_stored(&self, stored: StoredPlan) {
        self.mem
            .write()
            .insert(mem_key(&stored.query), Arc::new(stored));
    }

    /// Resolve a query to a stored plan: memory first, then catalog
    /// (memoizing a disk hit). `None` means the query was never planned.
    pub fn get(&self, query: &ActionQuery) -> Option<Arc<StoredPlan>> {
        let key = mem_key(query);
        if let Some(plan) = self.mem.read().get(&key) {
            return Some(Arc::clone(plan));
        }
        let catalog = self.catalog.as_ref()?;
        match catalog.load(query) {
            // Catalog file names round the target, so a loaded plan may
            // have been trained for a *different* exact target; serve it
            // only when it matches the request precisely.
            Ok(Some(stored)) if &stored.query == query => {
                let plan = Arc::new(stored);
                self.mem.write().insert(key, Arc::clone(&plan));
                Some(plan)
            }
            Ok(Some(stored)) => {
                eprintln!(
                    "plan catalog: '{}' holds a plan for target {} (requested {}); treating as a miss",
                    key.0, stored.query.target_accuracy, query.target_accuracy
                );
                None
            }
            Ok(None) => None,
            Err(e) => {
                // A corrupt plan file must not take serving down; treat it
                // as a miss (the operator re-plans).
                eprintln!(
                    "plan catalog: ignoring unreadable plan for '{}': {e}",
                    key.0
                );
                None
            }
        }
    }

    /// Number of plans resident in memory.
    pub fn resident(&self) -> usize {
        self.mem.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_core::planner::{PlannerOptions, QueryPlanner};
    use zeus_video::{ActionClass, DatasetKind};

    fn tiny_plan() -> (QueryPlan, u64) {
        let ds = DatasetKind::Bdd100k.generate(0.08, 3);
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let seed = options.seed;
        let planner = QueryPlanner::new(&ds, options);
        let plan = planner.plan(&ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap());
        (plan, seed)
    }

    #[test]
    fn install_then_get_resolves_in_memory() {
        let (plan, seed) = tiny_plan();
        let store = PlanStore::in_memory();
        assert!(store.get(&plan.query).is_none());
        store.install(&plan, seed).unwrap();
        let stored = store.get(&plan.query).expect("installed");
        assert_eq!(stored.query, plan.query);
        assert_eq!(store.resident(), 1);
    }

    #[test]
    fn catalog_tier_survives_a_new_store() {
        let (plan, seed) = tiny_plan();
        let dir = std::env::temp_dir().join(format!("zeus-serve-plans-{}", std::process::id()));
        {
            let store = PlanStore::with_catalog(&dir).unwrap();
            store.install(&plan, seed).unwrap();
        }
        // A fresh store (fresh process, conceptually) resolves from disk —
        // the query is *not* re-planned.
        let store = PlanStore::with_catalog(&dir).unwrap();
        assert_eq!(store.resident(), 0);
        let stored = store.get(&plan.query).expect("catalog hit");
        assert_eq!(stored.query, plan.query);
        assert_eq!(store.resident(), 1, "disk hit must be memoized");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
