//! Plan resolution with reuse: in-memory map in front of the on-disk
//! [`PlanCatalog`], scoped per corpus.
//!
//! Planning a query costs minutes of simulated APFG fine-tuning plus RL
//! training (Table 6); the serving layer must never pay it on the request
//! path. A [`PlanStore`] resolves `(corpus, query)` pairs to
//! [`StoredPlan`]s through two tiers — a process-local map, then a
//! per-corpus `.zpln` catalog directory — and exposes
//! [`PlanStore::install`] for warming either tier ahead of traffic. A
//! query with no resolvable plan is refused at admission
//! (`AdmitError::NoPlan`) rather than trained inline.
//!
//! Every key carries the corpus fingerprint ([`CorpusId`]): the same SQL
//! trained over two different corpora yields two independent plans, so a
//! multi-dataset session can share one store across all its corpora
//! without cross-dataset reuse or clobbering. On disk, each corpus gets
//! its own subdirectory (`<dir>/<fingerprint>/<key>.zpln`), so the
//! `.zpln` file format itself is unchanged.

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::RwLock;
use zeus_core::catalog::{decode_plan, encode_plan, PlanCatalog, StoredPlan};
use zeus_core::planner::QueryPlan;
use zeus_core::query::ActionQuery;

use crate::cache::CorpusId;

/// Exact in-memory key for a plan: the corpus fingerprint plus the
/// catalog key, disambiguated with the raw target bits (the catalog key
/// rounds the accuracy target to integer percent, so 0.846 and 0.854 are
/// distinct plans even though both round to `...-085`).
type MemKey = (CorpusId, String, u64);

fn mem_key(corpus: CorpusId, query: &ActionQuery) -> MemKey {
    (
        corpus,
        PlanCatalog::key(query),
        query.target_accuracy.to_bits(),
    )
}

/// Two-tier plan resolver: memory, then per-corpus catalog directory.
pub struct PlanStore {
    catalog_dir: Option<PathBuf>,
    /// Opened per-corpus catalogs, memoized so lookups never repeat the
    /// open (and its `create_dir_all`) on the request path.
    catalogs: RwLock<HashMap<CorpusId, PlanCatalog>>,
    mem: RwLock<HashMap<MemKey, Arc<StoredPlan>>>,
}

impl PlanStore {
    /// A store with no disk tier (plans must be installed explicitly).
    pub fn in_memory() -> Self {
        PlanStore {
            catalog_dir: None,
            catalogs: RwLock::new(HashMap::new()),
            mem: RwLock::new(HashMap::new()),
        }
    }

    /// A store backed by a catalog directory: plans persisted by earlier
    /// `zeus plan` invocations are reused without retraining, and
    /// installed plans are persisted for future processes. Each corpus
    /// writes into its own fingerprint-named subdirectory.
    pub fn with_catalog(dir: impl AsRef<std::path::Path>) -> io::Result<Self> {
        std::fs::create_dir_all(&dir)?;
        Ok(PlanStore {
            catalog_dir: Some(dir.as_ref().to_path_buf()),
            catalogs: RwLock::new(HashMap::new()),
            mem: RwLock::new(HashMap::new()),
        })
    }

    /// The catalog for one corpus's subdirectory, when a disk tier
    /// exists. Lookups (`create: false`) never create the directory —
    /// a corpus that was merely *probed* leaves no trace on disk.
    fn catalog(&self, corpus: CorpusId, create: bool) -> io::Result<Option<PlanCatalog>> {
        let Some(dir) = &self.catalog_dir else {
            return Ok(None);
        };
        if let Some(catalog) = self.catalogs.read().get(&corpus) {
            return Ok(Some(catalog.clone()));
        }
        let path = dir.join(corpus.to_string());
        if !create && !path.is_dir() {
            return Ok(None);
        }
        let catalog = PlanCatalog::open(path)?;
        self.catalogs.write().insert(corpus, catalog.clone());
        Ok(Some(catalog))
    }

    /// Install a freshly-trained plan for a corpus into both tiers.
    /// Returns the catalog path when a disk tier exists.
    pub fn install(
        &self,
        corpus: CorpusId,
        plan: &QueryPlan,
        apfg_seed: u64,
    ) -> io::Result<Option<std::path::PathBuf>> {
        // Round-trip through the catalog codec so the installed plan is
        // exactly what a catalog load would produce (same policy bytes,
        // same rebuilt APFG) — serving behaviour cannot depend on whether
        // the plan came from memory or disk.
        let stored =
            decode_plan(&encode_plan(plan, apfg_seed)).expect("freshly encoded plan must decode");
        self.mem
            .write()
            .insert(mem_key(corpus, &stored.query), Arc::new(stored));
        match self.catalog(corpus, true)? {
            Some(catalog) => Ok(Some(catalog.save(plan, apfg_seed)?)),
            None => Ok(None),
        }
    }

    /// Install an already-materialized stored plan into the memory tier
    /// (no disk write). Used to share one trained policy across many
    /// query identities — e.g. the same class served at many accuracy
    /// targets — without retraining per identity.
    pub fn install_stored(&self, corpus: CorpusId, stored: StoredPlan) {
        self.mem
            .write()
            .insert(mem_key(corpus, &stored.query), Arc::new(stored));
    }

    /// Resolve a `(corpus, query)` pair to a stored plan: memory first,
    /// then the corpus's catalog subdirectory (memoizing a disk hit).
    /// `None` means the query was never planned on this corpus — a plan
    /// trained for the same SQL on a *different* corpus is never
    /// returned.
    pub fn get(&self, corpus: CorpusId, query: &ActionQuery) -> Option<Arc<StoredPlan>> {
        let key = mem_key(corpus, query);
        if let Some(plan) = self.mem.read().get(&key) {
            return Some(Arc::clone(plan));
        }
        let catalog = match self.catalog(corpus, false) {
            Ok(catalog) => catalog?,
            Err(e) => {
                eprintln!("plan catalog: cannot open corpus directory {corpus}: {e}");
                return None;
            }
        };
        match catalog.load(query) {
            // Catalog file names round the target, so a loaded plan may
            // have been trained for a *different* exact target; serve it
            // only when it matches the request precisely.
            Ok(Some(stored)) if &stored.query == query => {
                let plan = Arc::new(stored);
                self.mem.write().insert(key, Arc::clone(&plan));
                Some(plan)
            }
            Ok(Some(stored)) => {
                eprintln!(
                    "plan catalog: '{}' holds a plan for target {} (requested {}); treating as a miss",
                    key.1, stored.query.target_accuracy, query.target_accuracy
                );
                None
            }
            Ok(None) => None,
            Err(e) => {
                // A corrupt plan file must not take serving down; treat it
                // as a miss (the operator re-plans).
                eprintln!(
                    "plan catalog: ignoring unreadable plan for '{}': {e}",
                    key.1
                );
                None
            }
        }
    }

    /// Number of plans resident in memory (across all corpora).
    pub fn resident(&self) -> usize {
        self.mem.read().len()
    }

    /// Every memory-resident plan for one corpus. This is the
    /// replication export: a fleet router pushes these entries into
    /// sibling shards' stores (via [`PlanStore::install_stored`]) when a
    /// corpus runs hot, so failover and resharding never retrain.
    pub fn plans_for(&self, corpus: CorpusId) -> Vec<Arc<StoredPlan>> {
        let mem = self.mem.read();
        let mut plans: Vec<_> = mem
            .iter()
            .filter(|((c, _, _), _)| *c == corpus)
            .map(|(_, plan)| Arc::clone(plan))
            .collect();
        plans.sort_by(|a, b| PlanCatalog::key(&a.query).cmp(&PlanCatalog::key(&b.query)));
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_core::planner::{PlannerOptions, QueryPlanner};
    use zeus_video::{ActionClass, DatasetKind, SyntheticDataset};

    fn tiny_plan_on(ds: &SyntheticDataset) -> (QueryPlan, u64) {
        let mut options = PlannerOptions::default();
        options.trainer.episodes = 2;
        options.trainer.warmup = 64;
        options.candidates.truncate(1);
        let seed = options.seed;
        let planner = QueryPlanner::new(ds, options);
        let plan = planner.plan(&ActionQuery::new(ActionClass::CrossRight, 0.85).unwrap());
        (plan, seed)
    }

    fn tiny_plan() -> (QueryPlan, u64, CorpusId) {
        let ds = DatasetKind::Bdd100k.generate(0.08, 3);
        let (plan, seed) = tiny_plan_on(&ds);
        (plan, seed, CorpusId::of(&ds))
    }

    #[test]
    fn install_then_get_resolves_in_memory() {
        let (plan, seed, corpus) = tiny_plan();
        let store = PlanStore::in_memory();
        assert!(store.get(corpus, &plan.query).is_none());
        store.install(corpus, &plan, seed).unwrap();
        let stored = store.get(corpus, &plan.query).expect("installed");
        assert_eq!(stored.query, plan.query);
        assert_eq!(store.resident(), 1);
    }

    #[test]
    fn catalog_tier_survives_a_new_store() {
        let (plan, seed, corpus) = tiny_plan();
        let dir = std::env::temp_dir().join(format!("zeus-serve-plans-{}", std::process::id()));
        {
            let store = PlanStore::with_catalog(&dir).unwrap();
            store.install(corpus, &plan, seed).unwrap();
        }
        // A fresh store (fresh process, conceptually) resolves from disk —
        // the query is *not* re-planned.
        let store = PlanStore::with_catalog(&dir).unwrap();
        assert_eq!(store.resident(), 0);
        let stored = store.get(corpus, &plan.query).expect("catalog hit");
        assert_eq!(stored.query, plan.query);
        assert_eq!(store.resident(), 1, "disk hit must be memoized");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn plans_are_isolated_per_corpus_fingerprint() {
        // Two corpora with the *same* SQL identity (same class, same
        // target): only the fingerprint separates their plans.
        let a = DatasetKind::Bdd100k.generate(0.08, 3);
        let b = DatasetKind::Bdd100k.generate(0.08, 4);
        let (corpus_a, corpus_b) = (CorpusId::of(&a), CorpusId::of(&b));
        assert_ne!(corpus_a, corpus_b);
        let (plan_a, seed) = tiny_plan_on(&a);

        let dir =
            std::env::temp_dir().join(format!("zeus-serve-plan-isolation-{}", std::process::id()));
        let store = PlanStore::with_catalog(&dir).unwrap();
        store.install(corpus_a, &plan_a, seed).unwrap();

        // Corpus B must not see corpus A's plan — in memory or on disk.
        assert!(store.get(corpus_b, &plan_a.query).is_none());
        assert!(store.get(corpus_a, &plan_a.query).is_some());
        let fresh = PlanStore::with_catalog(&dir).unwrap();
        assert!(fresh.get(corpus_b, &plan_a.query).is_none());
        assert!(fresh.get(corpus_a, &plan_a.query).is_some());

        // Installing B's own plan for the identical SQL does not clobber
        // A's.
        let (plan_b, seed_b) = tiny_plan_on(&b);
        store.install(corpus_b, &plan_b, seed_b).unwrap();
        assert_eq!(store.resident(), 2, "one resident plan per corpus");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
