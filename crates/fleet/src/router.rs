//! The fleet router: corpus-keyed sharding, tenant quota gating, and
//! hot plan replication over a set of [`ZeusServer`] shards.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zeus_core::catalog::StoredPlan;
use zeus_core::query::QueryIr;
use zeus_obs::keys;
use zeus_obs::{Counter, ObsHub, ObsSnapshot};
use zeus_serve::quota::{Decision, FairShareGate, QuotaSpec, TenantId};
use zeus_serve::{
    AdmitError, CorpusId, PlanStore, Priority, ResponseStream, ResultCache, ServeConfig,
    ServeError, ZeusServer,
};
use zeus_video::source::normalize_name;
use zeus_video::SharedSource;

use crate::hrw;

/// Fleet-level failures. Admission-layer rejections that can happen on
/// a single server ([`AdmitError`]) are wrapped; the rest are routing,
/// quota, or capacity outcomes only a fleet can produce.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetError {
    /// The fleet was configured with zero shards.
    NoShards,
    /// No data sources were registered to shard over.
    NoCorpora,
    /// A shard refused to start.
    Serve(ServeError),
    /// The query's `FROM` names a dataset no shard serves.
    UnknownDataset {
        /// The dataset the query asked for.
        requested: String,
    },
    /// The fair-share gate shed the request: the tenant is over quota.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: TenantId,
        /// How far over quota it was running (≥ 1.0).
        overage: f64,
    },
    /// Every candidate shard for the corpus was at capacity.
    Saturated {
        /// The corpus whose candidates were all full.
        corpus: CorpusId,
    },
    /// A non-retryable admission error from the chosen shard.
    Admit(AdmitError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoShards => write!(f, "fleet needs at least one shard"),
            FleetError::NoCorpora => write!(f, "fleet needs at least one registered dataset"),
            FleetError::Serve(e) => write!(f, "shard failed to start: {e}"),
            FleetError::UnknownDataset { requested } => {
                write!(f, "no shard serves dataset '{requested}'")
            }
            FleetError::QuotaExceeded { tenant, overage } => write!(
                f,
                "tenant '{tenant}' shed at {overage:.2}x over its admission quota"
            ),
            FleetError::Saturated { corpus } => {
                write!(
                    f,
                    "every candidate shard for corpus {corpus} is at capacity"
                )
            }
            FleetError::Admit(e) => write!(f, "admission refused: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<ServeError> for FleetError {
    fn from(e: ServeError) -> Self {
        FleetError::Serve(e)
    }
}

impl From<AdmitError> for FleetError {
    fn from(e: AdmitError) -> Self {
        FleetError::Admit(e)
    }
}

/// Fleet tuning knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards. Each shard hosts one server per registered
    /// corpus over its own plan store and observability hub.
    pub shards: usize,
    /// Per-server tuning, applied to every server on every shard. The
    /// `quota` field is ignored here — the fleet gates at the router so
    /// a request is charged once, not once per shard probed.
    pub serve: ServeConfig,
    /// Default per-tenant quota.
    pub quota: QuotaSpec,
    /// Per-tenant quota overrides.
    pub quota_overrides: Vec<(TenantId, QuotaSpec)>,
    /// Work-conserving shedding: over-quota tenants ride spare capacity
    /// until pressure crosses the gate's high-water mark (scaled down by
    /// how far over quota they are). Strict mode (`false`) sheds every
    /// over-quota request immediately.
    pub work_conserving: bool,
    /// Router-observed submissions to one corpus after which its plans
    /// are replicated to sibling shards and its traffic spread.
    pub hot_threshold: u64,
    /// How many sibling shards receive a hot corpus's plans (clamped to
    /// `shards - 1`; the default replicates to every sibling).
    pub replicas: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            serve: ServeConfig::default(),
            quota: QuotaSpec::default(),
            quota_overrides: Vec::new(),
            work_conserving: true,
            hot_threshold: 1_000,
            replicas: usize::MAX,
        }
    }
}

/// One shard: a server per corpus, all sharing the shard's plan store
/// and observability hub.
struct Shard {
    servers: HashMap<CorpusId, ZeusServer>,
    plans: Arc<PlanStore>,
    obs: ObsHub,
}

impl Shard {
    /// Point-in-time observability snapshot of this shard with the
    /// shard-total queue depth sampled into `serve.queue.depth` (the
    /// per-server snapshot would leave the last server's depth there).
    fn snapshot(&self) -> ObsSnapshot {
        let mut depth = 0usize;
        for server in self.servers.values() {
            server.snapshot();
            depth += server.queue_depth();
        }
        self.obs
            .metrics
            .gauge(keys::SERVE_QUEUE_DEPTH)
            .set(depth as f64);
        self.obs.metrics.snapshot()
    }
}

/// Per-corpus routing state: traffic heat and the replicated flag.
struct CorpusRoute {
    name: String,
    corpus: CorpusId,
    heat: AtomicU64,
    replicated: AtomicBool,
}

/// A successfully routed submission.
pub struct Routed {
    /// The shard that admitted the query.
    pub shard: usize,
    /// The corpus's rendezvous primary.
    pub primary: usize,
    /// True when a non-primary shard served it from a replicated plan.
    pub replica_hit: bool,
    /// The response stream from the serving shard.
    pub stream: ResponseStream,
}

/// The fleet: N shards of [`ZeusServer`]s behind rendezvous routing,
/// one fair-share quota gate, and a hot-plan replicator.
///
/// ```text
///            submit(ir, tenant, priority)
///                      │
///            ┌─────────▼─────────┐  over quota
///            │   FairShareGate   ├─────────────► FleetError::QuotaExceeded
///            │ (token bucket per │
///            │      tenant)      │
///            └─────────┬─────────┘
///            ┌─────────▼─────────┐
///            │  rendezvous rank  │   hot corpus: round-robin over
///            │  (CorpusId → HRW  │   primary + replicas; cold: primary
///            │   shard order)    │   first, siblings as failover
///            └─────────┬─────────┘
///          ┌───────────┼───────────┐
///     ┌────▼───┐  ┌────▼───┐  ┌────▼───┐     heat ≥ hot_threshold:
///     │shard 0 │  │shard 1 │  │shard 2 │ ◄── push PlanStore entries
///     │servers │  │servers │  │servers │     to sibling shards
///     └────────┘  └────────┘  └────────┘
/// ```
pub struct FleetRouter {
    shards: Vec<Shard>,
    routes: Vec<CorpusRoute>,
    by_name: HashMap<String, usize>,
    by_corpus: HashMap<CorpusId, usize>,
    default_route: usize,
    /// Master plan catalog captured at build: the replication source.
    catalog: HashMap<CorpusId, Vec<Arc<StoredPlan>>>,
    gate: FairShareGate,
    config: FleetConfig,
    obs: ObsHub,
    rr: AtomicUsize,
    replicate_lock: Mutex<()>,
    // Hot-path counter handles in the router's `fleet.*` namespace.
    routed: Counter,
    shard_routed: Vec<Counter>,
    replica_hits: Counter,
    replicated_plans: Counter,
    failover: Counter,
    shed_over: Counter,
    shed_under: Counter,
}

impl FleetRouter {
    /// Build a fleet over `sources` (registered name → shared corpus).
    ///
    /// Every shard gets a server for every corpus (so replication and
    /// failover have somewhere to land), but plans from `plans` are
    /// seeded only into each corpus's rendezvous-primary shard: sibling
    /// shards start cold and only warm up through hot replication.
    pub fn build(
        sources: &[(String, SharedSource)],
        default_source: &str,
        plans: &PlanStore,
        config: FleetConfig,
    ) -> Result<FleetRouter, FleetError> {
        if config.shards == 0 {
            return Err(FleetError::NoShards);
        }
        if sources.is_empty() {
            return Err(FleetError::NoCorpora);
        }
        let obs = ObsHub::new();
        let mut routes = Vec::new();
        let mut by_name = HashMap::new();
        let mut by_corpus = HashMap::new();
        let mut catalog = HashMap::new();
        for (name, source) in sources {
            let name = normalize_name(name)
                .map_err(|e| FleetError::Serve(ServeError::InvalidConfig(e.to_string())))?;
            let corpus = CorpusId::of(source.as_ref());
            if by_name.contains_key(&name) {
                continue;
            }
            by_name.insert(name.clone(), routes.len());
            by_corpus.entry(corpus).or_insert(routes.len());
            catalog
                .entry(corpus)
                .or_insert_with(|| plans.plans_for(corpus));
            routes.push(CorpusRoute {
                name,
                corpus,
                heat: AtomicU64::new(0),
                replicated: AtomicBool::new(false),
            });
        }
        let default_route = *by_name
            .get(
                &normalize_name(default_source)
                    .map_err(|e| FleetError::Serve(ServeError::InvalidConfig(e.to_string())))?,
            )
            .ok_or_else(|| FleetError::UnknownDataset {
                requested: default_source.to_string(),
            })?;

        let mut serve = config.serve.clone();
        serve.quota = None;
        if serve.cache_capacity == 0 {
            return Err(FleetError::Serve(ServeError::InvalidConfig(
                "cache capacity must be positive".into(),
            )));
        }
        let mut shards = Vec::with_capacity(config.shards);
        for shard_idx in 0..config.shards {
            let shard_plans = Arc::new(PlanStore::in_memory());
            // Seed only the corpora this shard is primary for.
            for route in &routes {
                if hrw::primary(route.corpus, config.shards) == shard_idx {
                    if let Some(stored) = catalog.get(&route.corpus) {
                        for plan in stored {
                            shard_plans.install_stored(route.corpus, (**plan).clone());
                        }
                    }
                }
            }
            let shard_obs = ObsHub::new();
            // One result cache per *shard*, shared by every corpus
            // server on it: cache memory is a node resource, so the
            // shard's corpora compete for one LRU budget. This is what
            // makes a fleet scale — rendezvous routing keeps each
            // shard's resident set to its own corpora's results, while
            // a single node serving the full mix thrashes the same
            // budget across every corpus.
            let shard_cache = Arc::new(ResultCache::new(serve.cache_capacity));
            let mut servers = HashMap::new();
            for (name, source) in sources {
                let corpus = CorpusId::of(source.as_ref());
                if servers.contains_key(&corpus) {
                    continue;
                }
                let server = ZeusServer::start_with_cache(
                    source.as_ref(),
                    name.clone(),
                    Arc::clone(&shard_plans),
                    serve.clone(),
                    shard_obs.clone(),
                    Arc::clone(&shard_cache),
                )?;
                servers.insert(corpus, server);
            }
            shards.push(Shard {
                servers,
                plans: shard_plans,
                obs: shard_obs,
            });
        }

        let mut gate = if config.work_conserving {
            FairShareGate::work_conserving(config.quota)
        } else {
            FairShareGate::strict(config.quota)
        };
        for (tenant, quota) in &config.quota_overrides {
            gate = gate.with_quota(tenant.clone(), *quota);
        }

        let shard_routed = (0..config.shards)
            .map(|i| obs.metrics.counter(&keys::fleet_shard_routed(i)))
            .collect();
        Ok(FleetRouter {
            routed: obs.metrics.counter(keys::FLEET_ROUTED),
            shard_routed,
            replica_hits: obs.metrics.counter(keys::FLEET_PLAN_REPLICA_HITS),
            replicated_plans: obs.metrics.counter(keys::FLEET_PLAN_REPLICATED),
            failover: obs.metrics.counter(keys::FLEET_FAILOVER),
            shed_over: obs.metrics.counter(keys::FLEET_SHED_OVER_QUOTA),
            shed_under: obs.metrics.counter(keys::FLEET_SHED_UNDER_QUOTA),
            shards,
            routes,
            by_name,
            by_corpus,
            default_route,
            catalog,
            gate,
            config,
            obs,
            rr: AtomicUsize::new(0),
            replicate_lock: Mutex::new(()),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The registered corpora as `(name, corpus, primary shard)`.
    pub fn corpora(&self) -> Vec<(String, CorpusId, usize)> {
        self.routes
            .iter()
            .map(|r| {
                (
                    r.name.clone(),
                    r.corpus,
                    hrw::primary(r.corpus, self.shards.len()),
                )
            })
            .collect()
    }

    /// The rendezvous primary for `corpus`.
    pub fn primary_shard(&self, corpus: CorpusId) -> usize {
        hrw::primary(corpus, self.shards.len())
    }

    /// Whether `corpus` has gone hot and had its plans replicated.
    pub fn is_replicated(&self, corpus: CorpusId) -> bool {
        self.by_corpus
            .get(&corpus)
            .map(|&i| self.routes[i].replicated.load(Ordering::Acquire))
            .unwrap_or(false)
    }

    /// The fair-share gate (per-tenant stats live here).
    pub fn gate(&self) -> &FairShareGate {
        &self.gate
    }

    /// The router's own `fleet.*` observability hub.
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// Queries routed to each shard since construction.
    pub fn shard_loads(&self) -> Vec<u64> {
        self.shard_routed.iter().map(|c| c.get()).collect()
    }

    /// Route and submit one query.
    ///
    /// The request is quota-gated first (per `tenant`), then offered to
    /// the corpus's candidate shards in order: for a cold corpus the
    /// rendezvous primary with siblings as pure failover; for a hot
    /// (replicated) corpus, round-robin over primary + replicas. A
    /// candidate that is full or cold (no plan) is skipped; success on
    /// a non-primary shard whose plan arrived via replication counts a
    /// `fleet.plan.replica_hits`.
    pub fn submit(
        &self,
        ir: &QueryIr,
        tenant: &TenantId,
        priority: Option<Priority>,
    ) -> Result<Routed, FleetError> {
        let route_idx = match &ir.source {
            Some(requested) => match normalize_name(requested)
                .ok()
                .and_then(|n| self.by_name.get(&n))
            {
                Some(&i) => i,
                None => {
                    return Err(FleetError::UnknownDataset {
                        requested: requested.clone(),
                    })
                }
            },
            None => self.default_route,
        };
        let route = &self.routes[route_idx];
        let corpus = route.corpus;

        // Heat accounting + one-shot replication trigger.
        let heat = route.heat.fetch_add(1, Ordering::Relaxed) + 1;
        if heat >= self.config.hot_threshold
            && self.shards.len() > 1
            && !route.replicated.load(Ordering::Acquire)
        {
            self.replicate(route_idx);
        }

        let order = hrw::rank(corpus, self.shards.len());
        let primary = order[0];
        let replicated = route.replicated.load(Ordering::Acquire);
        let candidates: Vec<usize> = if replicated {
            let spread = (self.config.replicas.saturating_add(1)).min(order.len());
            let start = self.rr.fetch_add(1, Ordering::Relaxed) % spread;
            (0..spread).map(|i| order[(start + i) % spread]).collect()
        } else {
            order
        };

        // Gate on the pressure of the first candidate — the shard this
        // request lands on unless it has to fail over.
        let pressure = self.shards[candidates[0]]
            .servers
            .get(&corpus)
            .map(|s| s.pressure())
            .unwrap_or(0.0);
        let in_quota = match self.gate.admit(tenant, pressure) {
            Decision::Admit { in_quota } => in_quota,
            Decision::Shed { overage } => {
                // Structurally over-quota: the gate never sheds a tenant
                // holding a token.
                self.shed_over.inc();
                return Err(FleetError::QuotaExceeded {
                    tenant: tenant.clone(),
                    overage,
                });
            }
        };

        let mut saturated = false;
        for (attempt, &shard_idx) in candidates.iter().enumerate() {
            let Some(server) = self.shards[shard_idx].servers.get(&corpus) else {
                continue;
            };
            match server.submit_ir(ir, priority) {
                Ok(stream) => {
                    self.routed.inc();
                    self.shard_routed[shard_idx].inc();
                    let replica_hit = shard_idx != primary && replicated;
                    if replica_hit {
                        self.replica_hits.inc();
                    }
                    if attempt > 0 {
                        self.failover.inc();
                    }
                    return Ok(Routed {
                        shard: shard_idx,
                        primary,
                        replica_hit,
                        stream,
                    });
                }
                // A full or cold candidate is not fatal: try the next.
                Err(AdmitError::QueueFull { .. }) => saturated = true,
                Err(AdmitError::NoPlan { .. }) => continue,
                Err(e) => return Err(FleetError::Admit(e)),
            }
        }
        if !saturated {
            // Every candidate was cold: the query was never planned, so
            // no shard (primary included) can serve it.
            return Err(FleetError::Admit(AdmitError::NoPlan {
                key: zeus_core::catalog::PlanCatalog::key(&ir.base),
            }));
        }
        // Physical saturation, attributed for the fairness audit: an
        // in-quota tenant bounced here was not shed *by the gate* (the
        // bench's closed-loop driver retries these), but the fleet
        // records it so operators can see quota-respecting demand being
        // turned away.
        if in_quota {
            self.shed_under.inc();
        } else {
            self.shed_over.inc();
        }
        Err(FleetError::Saturated { corpus })
    }

    /// Push one corpus's catalog entries to its sibling shards. Runs
    /// once per corpus (double-checked under the replication lock).
    fn replicate(&self, route_idx: usize) {
        let route = &self.routes[route_idx];
        let _guard = self.replicate_lock.lock();
        if route.replicated.load(Ordering::Acquire) {
            return;
        }
        let order = hrw::rank(route.corpus, self.shards.len());
        let plans = self.catalog.get(&route.corpus).cloned().unwrap_or_default();
        let mut pushed = 0u64;
        for &shard_idx in order[1..]
            .iter()
            .take(self.config.replicas.min(order.len() - 1))
        {
            for plan in &plans {
                self.shards[shard_idx]
                    .plans
                    .install_stored(route.corpus, (**plan).clone());
                pushed += 1;
            }
        }
        self.replicated_plans.add(pushed);
        route.replicated.store(true, Ordering::Release);
    }

    /// Per-shard observability snapshots (index-aligned with shards).
    pub fn shard_snapshots(&self) -> Vec<ObsSnapshot> {
        self.shards.iter().map(Shard::snapshot).collect()
    }

    /// The fleet-wide rollup: every shard's snapshot merged (counters
    /// and gauges sum, histogram summaries combine — see
    /// [`ObsSnapshot::merge`]) plus the router's own `fleet.*` metrics.
    pub fn fleet_snapshot(&self) -> ObsSnapshot {
        let mut parts = self.shard_snapshots();
        parts.push(self.obs.metrics.snapshot());
        ObsSnapshot::merge(&parts)
    }

    /// Stop admitting on every shard, drain, and join all pools.
    pub fn shutdown(&self) {
        for shard in &self.shards {
            for server in shard.servers.values() {
                server.shutdown();
            }
        }
    }
}

impl Drop for FleetRouter {
    fn drop(&mut self) {
        self.shutdown();
    }
}
