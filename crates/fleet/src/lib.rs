//! # zeus-fleet
//!
//! A sharded, multi-tenant serving fleet over [`zeus_serve::ZeusServer`]:
//! the scale-out layer for the paper's motivating deployment (continuous
//! monitoring over many camera corpora for many consumers), which a
//! single admission queue and result cache cannot carry.
//!
//! Three fleet-level contracts, each promoted from a single-process
//! invariant:
//!
//! * **Routing** ([`hrw`]): a corpus lives on the shard its
//!   [`CorpusId`](zeus_serve::CorpusId) rendezvous-hashes to — a pure
//!   function of `(fingerprint, shard count)`, stable across restarts,
//!   and growing the fleet N → N+1 moves only ~1/(N+1) of corpora, all
//!   of them onto the new shard.
//! * **Quota** ([`zeus_serve::quota`]): every tenant holds a token
//!   bucket; the router gates each submission before it touches a
//!   shard. Under-quota traffic is never shed by the gate; over-quota
//!   traffic is shed most-over-quota-first as pressure rises.
//! * **Replication** ([`FleetRouter`]): a corpus whose router-observed
//!   traffic crosses the hot threshold gets its
//!   [`PlanStore`](zeus_serve::PlanStore) entries pushed to sibling
//!   shards — failover and resharding never retrain, and hot-corpus
//!   traffic round-robins across the replicas.
//!
//! Per-shard telemetry stays on each shard's own
//! [`ObsHub`](zeus_obs::ObsHub); [`FleetRouter::fleet_snapshot`] merges
//! them with the router's `fleet.*` namespace into one rollup
//! ([`zeus_obs::ObsSnapshot::merge`]).

#![warn(missing_docs)]

pub mod hrw;
pub mod router;

pub use router::{FleetConfig, FleetError, FleetRouter, Routed};
pub use zeus_serve::quota::{Decision, FairShareGate, QuotaSpec, TenantId, TenantStats};
