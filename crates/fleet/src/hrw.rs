//! Rendezvous (highest-random-weight) hashing: the corpus → shard
//! assignment function.
//!
//! Every `(corpus, shard)` pair gets a deterministic pseudo-random
//! score; a corpus lives on the shard with the highest score. The
//! assignment is a **pure function** of the corpus fingerprint and the
//! shard count — no state, no RNG, no coordination — so every router
//! instance (and every restart) computes the same placement. Growing
//! the fleet from `N` to `N+1` shards only moves the corpora whose new
//! shard now scores highest: an expected `1/(N+1)` of keys, and every
//! moved key moves *to* the new shard — the minimal-disruption property
//! consistent-hashing schemes exist for, without a ring to maintain.

use zeus_serve::CorpusId;

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The deterministic rendezvous score of one `(corpus, shard)` pair:
/// FNV-1a over the corpus fingerprint bytes then the shard index bytes,
/// finished with a 64-bit avalanche so near-identical inputs spread.
pub fn score(corpus: CorpusId, shard: usize) -> u64 {
    let mut h = FNV_OFFSET;
    for b in corpus.0.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    for b in (shard as u64).to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    // splitmix64-style finalizer: FNV alone is weak in the high bits.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The shard that owns `corpus` in a fleet of `shards`.
///
/// # Panics
/// With zero shards (an empty fleet owns nothing).
pub fn primary(corpus: CorpusId, shards: usize) -> usize {
    assert!(shards > 0, "rendezvous hash over an empty shard set");
    (0..shards)
        .max_by_key(|&s| (score(corpus, s), s))
        .expect("non-empty range")
}

/// All shards ordered by descending rendezvous score for `corpus`:
/// `rank(..)[0]` is the primary, the rest is the deterministic failover
/// / replication order.
pub fn rank(corpus: CorpusId, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "rendezvous hash over an empty shard set");
    let mut order: Vec<usize> = (0..shards).collect();
    order.sort_by_key(|&s| std::cmp::Reverse((score(corpus, s), s)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn primary_is_rank_head_and_rank_is_a_permutation() {
        for fp in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let corpus = CorpusId(fp);
            for shards in 1..=9 {
                let order = rank(corpus, shards);
                assert_eq!(order[0], primary(corpus, shards));
                let mut sorted = order.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..shards).collect::<Vec<_>>());
            }
        }
    }

    proptest! {
        /// Pure and restart-stable: the assignment depends on nothing
        /// but `(corpus, shard count)`.
        #[test]
        fn assignment_is_a_pure_function(fp in 0u64..u64::MAX, shards in 1usize..12) {
            let corpus = CorpusId(fp);
            prop_assert_eq!(primary(corpus, shards), primary(corpus, shards));
            prop_assert_eq!(rank(corpus, shards), rank(corpus, shards));
        }

        /// Growing N → N+1 moves fewer than 2/N of keys, and every
        /// moved key lands on the new shard (the rendezvous minimal-
        /// disruption property). 2/N is roughly double the expected
        /// 1/(N+1), so the bound holds with margin over any key sample.
        #[test]
        fn resharding_moves_less_than_two_over_n(seed in 0u64..1_000_000, shards in 2usize..10) {
            let keys: Vec<CorpusId> = (0..2_000u64)
                .map(|i| CorpusId(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i * 0x517c_c1b7_2722_0a95)))
                .collect();
            let mut moved = 0usize;
            for &k in &keys {
                let before = primary(k, shards);
                let after = primary(k, shards + 1);
                if before != after {
                    moved += 1;
                    prop_assert_eq!(after, shards, "moved keys must move to the new shard only");
                }
            }
            let bound = 2.0 / shards as f64;
            let frac = moved as f64 / keys.len() as f64;
            prop_assert!(frac < bound, "moved {frac:.4} of keys, bound {bound:.4}");
        }

        /// Placement spreads: over many keys every shard owns something
        /// (no degenerate all-keys-on-one-shard hash).
        #[test]
        fn every_shard_owns_some_keys(shards in 2usize..8) {
            let mut counts = vec![0usize; shards];
            for i in 0..1_000u64 {
                counts[primary(CorpusId(i.wrapping_mul(0xA076_1D64_78BD_642F)), shards)] += 1;
            }
            for (s, &c) in counts.iter().enumerate() {
                prop_assert!(c > 0, "shard {s} owns no keys");
            }
        }
    }
}
