//! The workspace-wide typed error: every failure a [`crate::ZeusSession`]
//! can surface, with `From` impls so `?` composes across layers.

use zeus_core::catalog::CatalogError;
use zeus_core::planner::PlanError;
use zeus_core::query::ParseError;
use zeus_fleet::FleetError;
use zeus_serve::{AdmitError, ServeError};
use zeus_video::DataError;

/// Anything that can go wrong between a ZQL string and an answer set.
///
/// Each variant wraps the typed error of the layer that produced it; no
/// layer panics on user input.
#[derive(Debug)]
pub enum ZeusError {
    /// The ZQL text did not parse or validate.
    Parse(ParseError),
    /// The planner could not plan the query.
    Plan(PlanError),
    /// The serving layer refused the submission (shed / no plan /
    /// shutting down).
    Admit(AdmitError),
    /// The serving engine could not be started.
    Serve(ServeError),
    /// The serving fleet refused: bad topology, unknown dataset route,
    /// tenant over quota, or every candidate shard saturated.
    Fleet(FleetError),
    /// The plan catalog was unreadable or corrupt.
    Catalog(CatalogError),
    /// The data plane refused: invalid profile, corrupt `.zds` file,
    /// empty split, bad or duplicate dataset name.
    Data(DataError),
    /// A ZQL `FROM <name>` (or an explicit dataset argument) names no
    /// registered dataset in this session.
    UnknownDataset {
        /// The name the query asked for.
        name: String,
        /// The names this session can serve.
        available: Vec<String>,
    },
    /// Underlying I/O failure (catalog directory, bench output, ...).
    Io(std::io::Error),
    /// The request is well-formed but outside what this build supports
    /// (e.g. a non-plan-reconstructable executor for a stored plan).
    Unsupported(String),
}

impl std::fmt::Display for ZeusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZeusError::Parse(e) => write!(f, "query parse error: {e}"),
            ZeusError::Plan(e) => write!(f, "planning error: {e}"),
            ZeusError::Admit(e) => write!(f, "admission error: {e}"),
            ZeusError::Serve(e) => write!(f, "serving error: {e}"),
            ZeusError::Fleet(e) => write!(f, "fleet error: {e}"),
            ZeusError::Catalog(e) => write!(f, "catalog error: {e}"),
            ZeusError::Data(e) => write!(f, "data error: {e}"),
            ZeusError::UnknownDataset { name, available } => write!(
                f,
                "unknown dataset '{name}' (registered: {})",
                available.join(", ")
            ),
            ZeusError::Io(e) => write!(f, "I/O error: {e}"),
            ZeusError::Unsupported(s) => write!(f, "unsupported: {s}"),
        }
    }
}

impl std::error::Error for ZeusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZeusError::Parse(e) => Some(e),
            ZeusError::Plan(e) => Some(e),
            ZeusError::Admit(e) => Some(e),
            ZeusError::Serve(e) => Some(e),
            ZeusError::Fleet(e) => Some(e),
            ZeusError::Catalog(e) => Some(e),
            ZeusError::Data(e) => Some(e),
            ZeusError::Io(e) => Some(e),
            ZeusError::UnknownDataset { .. } | ZeusError::Unsupported(_) => None,
        }
    }
}

impl From<ParseError> for ZeusError {
    fn from(e: ParseError) -> Self {
        ZeusError::Parse(e)
    }
}

impl From<PlanError> for ZeusError {
    fn from(e: PlanError) -> Self {
        ZeusError::Plan(e)
    }
}

impl From<AdmitError> for ZeusError {
    fn from(e: AdmitError) -> Self {
        ZeusError::Admit(e)
    }
}

impl From<ServeError> for ZeusError {
    fn from(e: ServeError) -> Self {
        ZeusError::Serve(e)
    }
}

impl From<FleetError> for ZeusError {
    fn from(e: FleetError) -> Self {
        ZeusError::Fleet(e)
    }
}

impl From<CatalogError> for ZeusError {
    fn from(e: CatalogError) -> Self {
        ZeusError::Catalog(e)
    }
}

impl From<std::io::Error> for ZeusError {
    fn from(e: std::io::Error) -> Self {
        ZeusError::Io(e)
    }
}

impl From<DataError> for ZeusError {
    fn from(e: DataError) -> Self {
        ZeusError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zeus_core::ExecutorKind;

    /// Every variant's `Display` must mention both the layer and the
    /// wrapped detail.
    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<(ZeusError, &str, &str)> = vec![
            (
                ZeusError::Parse(ParseError::MissingClass),
                "query parse error",
                "action_class",
            ),
            (
                ZeusError::Parse(ParseError::BadAccuracy("1.5".into())),
                "query parse error",
                "1.5",
            ),
            (
                ZeusError::Plan(PlanError::EmptySplit("validation")),
                "planning error",
                "validation",
            ),
            (
                ZeusError::Plan(PlanError::Env(zeus_core::env::EnvError::NoVideos)),
                "planning error",
                "training videos",
            ),
            (
                ZeusError::Admit(AdmitError::QueueFull { capacity: 8 }),
                "admission error",
                "capacity 8",
            ),
            (
                ZeusError::Admit(AdmitError::NoPlan {
                    key: "k.zpln".into(),
                }),
                "admission error",
                "k.zpln",
            ),
            (
                ZeusError::Serve(ServeError::NotServable(ExecutorKind::FramePp)),
                "serving error",
                "Frame-PP",
            ),
            (
                ZeusError::Fleet(FleetError::QuotaExceeded {
                    tenant: zeus_fleet::TenantId::new("acme"),
                    overage: 2.5,
                }),
                "fleet error",
                "acme",
            ),
            (
                ZeusError::Catalog(CatalogError::Corrupt("bad magic".into())),
                "catalog error",
                "bad magic",
            ),
            (
                ZeusError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone")),
                "I/O error",
                "gone",
            ),
            (
                ZeusError::Data(DataError::InvalidProfile("class mix empty".into())),
                "data error",
                "class mix",
            ),
            (
                ZeusError::Data(DataError::Corrupt("checksum mismatch".into())),
                "data error",
                "checksum",
            ),
            (
                ZeusError::UnknownDataset {
                    name: "imagenet".into(),
                    available: vec!["bdd100k".into(), "kitti".into()],
                },
                "unknown dataset",
                "bdd100k, kitti",
            ),
            (
                ZeusError::Unsupported("Segment-PP serving".into()),
                "unsupported",
                "Segment-PP",
            ),
        ];
        for (err, layer, detail) in cases {
            let s = err.to_string();
            assert!(s.contains(layer), "{s:?} missing layer tag {layer:?}");
            assert!(s.contains(detail), "{s:?} missing detail {detail:?}");
        }
    }

    #[test]
    fn from_impls_wrap_the_right_variant() {
        assert!(matches!(
            ZeusError::from(ParseError::MissingAccuracy),
            ZeusError::Parse(_)
        ));
        assert!(matches!(
            ZeusError::from(PlanError::EmptySpace),
            ZeusError::Plan(_)
        ));
        assert!(matches!(
            ZeusError::from(AdmitError::ShuttingDown),
            ZeusError::Admit(_)
        ));
        assert!(matches!(
            ZeusError::from(ServeError::EmptyCorpus),
            ZeusError::Serve(_)
        ));
        assert!(matches!(
            ZeusError::from(FleetError::NoShards),
            ZeusError::Fleet(_)
        ));
        assert!(matches!(
            ZeusError::from(CatalogError::Corrupt("x".into())),
            ZeusError::Catalog(_)
        ));
        assert!(matches!(
            ZeusError::from(std::io::Error::other("x")),
            ZeusError::Io(_)
        ));
        assert!(matches!(
            ZeusError::from(DataError::EmptySplit("test")),
            ZeusError::Data(_)
        ));
    }

    #[test]
    fn sources_chain_to_the_wrapped_error() {
        use std::error::Error;
        let e = ZeusError::from(ParseError::MissingClass);
        assert!(e.source().is_some());
        assert!(ZeusError::Unsupported("x".into()).source().is_none());
    }
}
