//! The fluent session façade: dataset + planner + plan store behind one
//! handle, queries as ZQL strings in, answer sets out.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

use zeus_core::baselines::{QueryEngine, ZeusSliding};
use zeus_core::catalog::{PlanCatalog, StoredPlan};
use zeus_core::config::ConfigSpace;
use zeus_core::metrics::{EvalProtocol, EvalReport};
use zeus_core::planner::{ConfigProfile, PlanError, PlannerOptions, QueryPlan, QueryPlanner};
use zeus_core::query::{parse_zql, ActionQuery, QueryIr};
use zeus_core::result::{ConfigHistogram, QueryResult};
use zeus_core::ExecutorKind;
use zeus_serve::{CorpusId, PlanStore, QueryRefiner, SegmentHit, ServeConfig, ZeusServer};
use zeus_sim::SimClock;
use zeus_video::annotation::runs_from_labels;
use zeus_video::video::Split;
use zeus_video::{DatasetKind, SyntheticDataset, Video, VideoId};

use crate::error::ZeusError;

/// Fluent construction of a [`ZeusSession`].
///
/// ```no_run
/// use zeus_api::ZeusSession;
/// use zeus_video::DatasetKind;
///
/// let session = ZeusSession::builder()
///     .dataset(DatasetKind::Bdd100k)
///     .scale(0.2)
///     .seed(42)
///     .build()?;
/// # Ok::<(), zeus_api::ZeusError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZeusSessionBuilder {
    kind: DatasetKind,
    scale: f64,
    seed: u64,
    options: PlannerOptions,
    catalog: Option<PathBuf>,
    executor: ExecutorKind,
}

impl Default for ZeusSessionBuilder {
    fn default() -> Self {
        ZeusSessionBuilder {
            kind: DatasetKind::Bdd100k,
            scale: 0.2,
            seed: 2022,
            options: PlannerOptions::default(),
            catalog: None,
            executor: ExecutorKind::ZeusRl,
        }
    }
}

impl ZeusSessionBuilder {
    /// Which synthetic dataset the session is bound to.
    pub fn dataset(mut self, kind: DatasetKind) -> Self {
        self.kind = kind;
        self
    }

    /// Corpus generation scale (1.0 = paper scale).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// The session seed: generates the corpus and seeds the planner.
    /// Applied at [`Self::build`], so `.seed()` and `.planner()` may be
    /// called in either order.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Planner options used for every query planned by the session.
    /// `options.seed` is overridden by the session seed at build time,
    /// keeping corpus and planner seeds aligned.
    pub fn planner(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Persist/reuse plans in a `.zpln` catalog directory.
    pub fn catalog(mut self, dir: impl Into<PathBuf>) -> Self {
        self.catalog = Some(dir.into());
        self
    }

    /// Default executor for queries (`ZeusRl` unless overridden per
    /// query with [`Query::executor`]).
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Generate the corpus and assemble the session. Fails (typed, no
    /// panics) on a degenerate scale, an unusable catalog directory, or
    /// a corpus whose splits are empty.
    pub fn build(self) -> Result<ZeusSession, ZeusError> {
        if !(self.scale > 0.0 && self.scale.is_finite()) {
            return Err(ZeusError::Plan(PlanError::InvalidOptions(format!(
                "corpus scale must be positive, got {}",
                self.scale
            ))));
        }
        let mut options = self.options;
        options.seed = self.seed;
        let dataset = self.kind.generate(self.scale, self.seed);
        for (split, name) in [
            (Split::Train, "train"),
            (Split::Validation, "validation"),
            (Split::Test, "test"),
        ] {
            if dataset.store.split(split).is_empty() {
                return Err(ZeusError::Plan(PlanError::EmptySplit(name)));
            }
        }
        let plans = match &self.catalog {
            Some(dir) => PlanStore::with_catalog(dir)?,
            None => PlanStore::in_memory(),
        };
        Ok(ZeusSession {
            corpus: CorpusId::new(self.kind, self.scale, self.seed),
            dataset,
            options,
            plans: Arc::new(plans),
            executor: self.executor,
            plan_cache: RwLock::new(HashMap::new()),
            plan_locks: Mutex::new(HashMap::new()),
            profile_cache: RwLock::new(HashMap::new()),
        })
    }
}

/// Session-local plan-cache key: catalog key + exact target bits.
type PlanKey = (String, u64);

fn plan_key(query: &ActionQuery) -> PlanKey {
    (PlanCatalog::key(query), query.target_accuracy.to_bits())
}

/// The unified entry point to Zeus: one corpus, one planner
/// configuration, one plan store — and every query a ZQL string.
///
/// A session replaces the hand-wired `QueryPlanner::new` → `plan` →
/// `build_engines` → executor pipeline:
///
/// ```no_run
/// use zeus_api::ZeusSession;
///
/// let session = ZeusSession::builder().scale(0.2).build()?;
/// let response = session
///     .query(
///         "SELECT segment_ids FROM UDF(video) \
///          WHERE action_class = 'cross-right' AND accuracy >= 85% LIMIT 10",
///     )?
///     .run()?;
/// for hit in &response.answer {
///     println!("{:?} {}..{}", hit.video, hit.start, hit.end);
/// }
/// # Ok::<(), zeus_api::ZeusError>(())
/// ```
///
/// Plan resolution never retrains what it can reuse: a query first
/// checks the session's in-memory plan cache, then the shared
/// [`PlanStore`] (including the `.zpln` catalog when one is
/// configured), and only trains from scratch on a complete miss.
/// [`Self::serve`] starts a [`ZeusServer`] sharing the same plan store,
/// so everything the session planned is immediately servable.
pub struct ZeusSession {
    dataset: SyntheticDataset,
    corpus: CorpusId,
    options: PlannerOptions,
    plans: Arc<PlanStore>,
    executor: ExecutorKind,
    /// Full trained plans (with profiles) per query core; the `PlanStore`
    /// holds the serialized form used by serving and the catalog.
    plan_cache: RwLock<HashMap<PlanKey, Arc<QueryPlan>>>,
    /// Per-core training guards: concurrent queries for the same
    /// uncached core serialize on its guard so training is paid once.
    plan_locks: Mutex<HashMap<PlanKey, Arc<Mutex<()>>>>,
    /// Profile tables (Table 2) re-derived for store-resolved plans:
    /// budgeted sliding queries need them for config re-selection, and
    /// the profiling pass is paid once per core, not once per run.
    profile_cache: RwLock<HashMap<PlanKey, Arc<Vec<ConfigProfile>>>>,
}

impl ZeusSession {
    /// Start building a session.
    pub fn builder() -> ZeusSessionBuilder {
        ZeusSessionBuilder::default()
    }

    /// The corpus this session queries.
    pub fn dataset(&self) -> &SyntheticDataset {
        &self.dataset
    }

    /// The corpus identity (keys result caches in serving).
    pub fn corpus_id(&self) -> CorpusId {
        self.corpus
    }

    /// The plan store shared with any server started by [`Self::serve`].
    pub fn plans(&self) -> &Arc<PlanStore> {
        &self.plans
    }

    /// Parse a ZQL string into a prepared [`Query`].
    pub fn query(&self, zql: &str) -> Result<Query<'_>, ZeusError> {
        self.prepare(parse_zql(zql)?)
    }

    /// Prepare an already-compiled [`QueryIr`] (validates it first).
    pub fn prepare(&self, ir: QueryIr) -> Result<Query<'_>, ZeusError> {
        ir.validate()?;
        Ok(Query {
            session: self,
            ir,
            executor: self.executor,
        })
    }

    /// Start a serving engine over this session's corpus and plan store.
    ///
    /// Every query planned through the session (explicitly via
    /// [`Query::plan`] or implicitly via [`Query::run`]) is resolvable by
    /// the server without retraining.
    pub fn serve(&self, config: ServeConfig) -> Result<ZeusServer, ZeusError> {
        Ok(ZeusServer::start(
            &self.dataset,
            self.corpus,
            Arc::clone(&self.plans),
            config,
        )?)
    }

    fn planner(&self) -> QueryPlanner<'_> {
        QueryPlanner::new(&self.dataset, self.options.clone())
    }

    /// The full plan trained this session, if any.
    fn cached_plan(&self, base: &ActionQuery) -> Option<Arc<QueryPlan>> {
        self.plan_cache
            .read()
            .expect("plan cache")
            .get(&plan_key(base))
            .cloned()
    }

    /// The trained plan for a query core: session cache, then plan from
    /// scratch (training — the expensive path, paid once per core and
    /// persisted to the plan store / catalog). Engine construction
    /// prefers [`Self::cached_plan`] / the [`PlanStore`] and only lands
    /// here on a complete miss (or for executors that need the full
    /// profile table).
    fn base_plan(&self, base: &ActionQuery) -> Result<Arc<QueryPlan>, ZeusError> {
        if let Some(plan) = self.cached_plan(base) {
            return Ok(plan);
        }
        // Serialize training per core: the first caller trains while
        // concurrent callers for the same core wait on its guard and
        // then hit the cache, so training really is paid once.
        let guard = {
            let mut locks = self.plan_locks.lock().expect("plan locks");
            Arc::clone(
                locks
                    .entry(plan_key(base))
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        let _training = guard.lock().expect("training guard");
        if let Some(plan) = self.cached_plan(base) {
            return Ok(plan);
        }
        let plan = Arc::new(self.planner().try_plan(base)?);
        self.plans.install(&plan, self.options.seed)?;
        self.plan_cache
            .write()
            .expect("plan cache")
            .insert(plan_key(base), Arc::clone(&plan));
        Ok(plan)
    }

    /// The profile table for a store-resolved plan, re-derived on first
    /// use (sliding execution over the validation split — no RL
    /// training) and cached per core.
    fn stored_profiles(&self, base: &ActionQuery, stored: &StoredPlan) -> Arc<Vec<ConfigProfile>> {
        let key = plan_key(base);
        if let Some(profiles) = self.profile_cache.read().expect("profile cache").get(&key) {
            return Arc::clone(profiles);
        }
        let planner = self.planner();
        let space = ConfigSpace::for_dataset(self.dataset.kind()).masked(self.options.knob_mask);
        let profiles = Arc::new(planner.profile_configurations(base, &space, &stored.apfg()));
        self.profile_cache
            .write()
            .expect("profile cache")
            .insert(key, Arc::clone(&profiles));
        profiles
    }

    /// Test-split videos in canonical (id) order.
    fn test_videos(&self) -> Vec<&Video> {
        let mut videos = self.dataset.store.split(Split::Test);
        videos.sort_by_key(|v| v.id);
        videos
    }
}

/// A prepared query bound to a session: pick an executor, then [`run`]
/// (batch) or [`run_streaming`] (per-video iterator).
///
/// [`run`]: Query::run
/// [`run_streaming`]: Query::run_streaming
pub struct Query<'s> {
    session: &'s ZeusSession,
    ir: QueryIr,
    executor: ExecutorKind,
}

/// A query's engine plus the evaluation protocol it was resolved with.
struct ResolvedEngine {
    engine: Box<dyn QueryEngine + Send + Sync>,
    protocol: EvalProtocol,
}

impl<'s> Query<'s> {
    /// The compiled IR.
    pub fn ir(&self) -> &QueryIr {
        &self.ir
    }

    /// Round-trip the query back to ZQL text.
    pub fn to_sql(&self) -> String {
        self.ir.to_sql()
    }

    /// Override the executor for this query.
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Ensure this query's core is planned and return the stored form —
    /// the warm-up path for serving and the catalog. Resolution is
    /// store-first: a plan already in the session's [`PlanStore`]
    /// (including one persisted by an earlier process via the catalog)
    /// is returned as-is; only a complete miss trains.
    pub fn plan(&self) -> Result<Arc<StoredPlan>, ZeusError> {
        if let Some(stored) = self.session.plans.get(&self.ir.base) {
            return Ok(stored);
        }
        self.session.base_plan(&self.ir.base)?;
        self.session
            .plans
            .get(&self.ir.base)
            .ok_or_else(|| ZeusError::Unsupported("freshly trained plan must be stored".into()))
    }

    /// Train (or fetch from the session cache) the *full* plan for this
    /// query's core — profiles, training report, and costs included.
    /// Unlike [`Query::plan`], this cannot be satisfied by a catalog
    /// entry alone: use it when the full planning artifacts are needed
    /// (e.g. reporting training costs, building all five engines).
    pub fn train(&self) -> Result<Arc<QueryPlan>, ZeusError> {
        self.session.base_plan(&self.ir.base)
    }

    /// Resolve this query to an engine without retraining what can be
    /// reused: the session's full-plan cache first, then the plan store
    /// (catalog) for plan-reconstructable executors, then training.
    fn resolve(&self) -> Result<ResolvedEngine, ZeusError> {
        if let Some(plan) = self.session.cached_plan(&self.ir.base) {
            return Ok(ResolvedEngine {
                engine: self.engine_from_plan(&plan),
                protocol: plan.protocol,
            });
        }
        if matches!(
            self.executor,
            ExecutorKind::ZeusRl | ExecutorKind::ZeusSliding
        ) {
            if let Some(stored) = self.session.plans.get(&self.ir.base) {
                return Ok(ResolvedEngine {
                    protocol: stored.protocol,
                    engine: self.engine_from_stored(&stored),
                });
            }
        }
        let plan = self.session.base_plan(&self.ir.base)?;
        Ok(ResolvedEngine {
            engine: self.engine_from_plan(&plan),
            protocol: plan.protocol,
        })
    }

    /// Build this query's engine from a full trained plan. The
    /// `latency_budget` clause re-selects Zeus-Sliding's static
    /// configuration under a throughput floor (tighter budget → faster
    /// configuration); Zeus-RL adapts per-segment and needs no override.
    fn engine_from_plan(&self, plan: &QueryPlan) -> Box<dyn QueryEngine + Send + Sync> {
        let planner = self.session.planner();
        match (self.executor, planner.budget_min_fps(&self.ir)) {
            (ExecutorKind::ZeusSliding, Some(floor)) => {
                let config = QueryPlanner::select_sliding_config_bounded(
                    &plan.profiles,
                    self.ir.base.target_accuracy,
                    Some(floor),
                )
                .unwrap_or(plan.sliding_config);
                Box::new(ZeusSliding::new(
                    plan.apfg.clone(),
                    config,
                    planner.cost_model().clone(),
                ))
            }
            _ => planner.build_engine(plan, self.executor),
        }
    }

    /// Build this query's engine from a stored (catalog) plan — no
    /// training. A `latency_budget` on a sliding query re-profiles the
    /// configuration space (cheap: sliding execution over the validation
    /// split, no RL training) to re-select under the throughput floor.
    fn engine_from_stored(&self, stored: &StoredPlan) -> Box<dyn QueryEngine + Send + Sync> {
        let planner = self.session.planner();
        let cost = planner.cost_model().clone();
        match self.executor {
            ExecutorKind::ZeusSliding => {
                if let Some(floor) = planner.budget_min_fps(&self.ir) {
                    let profiles = self.session.stored_profiles(&self.ir.base, stored);
                    let config = QueryPlanner::select_sliding_config_bounded(
                        &profiles,
                        self.ir.base.target_accuracy,
                        Some(floor),
                    )
                    .unwrap_or(stored.sliding_config);
                    Box::new(ZeusSliding::new(stored.apfg(), config, cost))
                } else {
                    Box::new(stored.sliding_engine(cost))
                }
            }
            _ => Box::new(stored.zeus_rl_engine(cost)),
        }
    }

    /// Execute the query over the session's test split and return the
    /// evaluated response with the refined answer set.
    pub fn run(&self) -> Result<QueryResponse, ZeusError> {
        let resolved = self.resolve()?;
        let videos = self.session.test_videos();
        let exec = resolved.engine.execute(&videos);
        let report = exec.evaluate(&videos, &self.ir.base.classes, resolved.protocol);
        let refiner = QueryRefiner::new(&self.ir, videos.iter().copied());
        let answer = refiner.answer(&exec.labels);
        Ok(QueryResponse {
            result: QueryResult::from_parts(self.executor.name(), &exec, &report),
            report,
            answer,
            ir: self.ir.clone(),
            executor: self.executor,
        })
    }

    /// Execute lazily, yielding one [`VideoResult`] per test-split video
    /// as it is processed. `WINDOW` and `AND NOT` filter each video's
    /// segments; `LIMIT n` short-circuits the iteration once `n` segments
    /// have been yielded (remaining videos are never executed). `ORDER BY`
    /// needs the full answer set and only applies to [`Query::run`].
    pub fn run_streaming(&self) -> Result<VideoResults<'s>, ZeusError> {
        let resolved = self.resolve()?;
        let videos = self.session.test_videos();
        let refiner = QueryRefiner::new(&self.ir, videos.iter().copied());
        Ok(VideoResults {
            videos,
            engine: resolved.engine,
            refiner,
            pos: 0,
            emitted: 0,
        })
    }
}

/// The evaluated outcome of [`Query::run`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The query as compiled.
    pub ir: QueryIr,
    /// The engine that executed it.
    pub executor: ExecutorKind,
    /// Throughput/accuracy summary (one point in the paper's Figure 8
    /// plane).
    pub result: QueryResult,
    /// The raw evaluation counts behind `result`.
    pub report: EvalReport,
    /// The refined answer set (`WINDOW`/`AND NOT`/`ORDER BY`/`LIMIT`
    /// applied).
    pub answer: Vec<SegmentHit>,
}

/// One video's localized segments, yielded by [`Query::run_streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct VideoResult {
    /// The processed video.
    pub video: VideoId,
    /// Refined predicted segments `(start, end)` in frames.
    pub segments: Vec<(usize, usize)>,
    /// Simulated device seconds this video cost.
    pub simulated_secs: f64,
}

/// Lazy per-video execution: videos run on demand as the iterator is
/// advanced, so a satisfied `LIMIT` stops paying for the rest of the
/// corpus.
pub struct VideoResults<'s> {
    videos: Vec<&'s Video>,
    engine: Box<dyn QueryEngine + Send + Sync>,
    refiner: QueryRefiner,
    pos: usize,
    emitted: usize,
}

impl Iterator for VideoResults<'_> {
    type Item = VideoResult;

    fn next(&mut self) -> Option<VideoResult> {
        if let Some(limit) = self.refiner.limit() {
            if self.emitted >= limit {
                return None;
            }
        }
        let video = *self.videos.get(self.pos)?;
        self.pos += 1;
        let mut clock = SimClock::new();
        let mut hist = ConfigHistogram::new();
        let labels = self.engine.execute_video(video, &mut clock, &mut hist);
        let mut segments = self
            .refiner
            .refine_segments(video.id, runs_from_labels(&labels));
        if let Some(limit) = self.refiner.limit() {
            let remaining = limit - self.emitted;
            segments.truncate(remaining);
        }
        self.emitted += segments.len();
        Some(VideoResult {
            video: video.id,
            segments,
            simulated_secs: clock.elapsed_secs(),
        })
    }
}
