//! The fluent session façade: named datasets + planner + plan store
//! behind one handle, queries as ZQL strings in, answer sets out.
//!
//! A session hosts *any number* of registered data sources — the five
//! built-in paper corpora, `.zds` files, custom profile-defined corpora,
//! composite/filtered views — and routes every query by its ZQL
//! `FROM <dataset>` clause (`FROM UDF(video)` targets the default
//! source). Plans and result caches are keyed per (corpus fingerprint,
//! query), so two corpora in one session never share or clobber trained
//! plans.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, RwLock};

use zeus_core::baselines::{QueryEngine, ZeusSliding};
use zeus_core::catalog::{PlanCatalog, StoredPlan};
use zeus_core::config::ConfigSpace;
use zeus_core::metrics::{EvalProtocol, EvalReport};
use zeus_core::planner::{ConfigProfile, PlanError, PlannerOptions, QueryPlan, QueryPlanner};
use zeus_core::query::{parse_zql, ActionQuery, QueryIr};
use zeus_core::result::{ConfigHistogram, QueryResult};
use zeus_core::ExecutorKind;
use zeus_fleet::{FleetConfig, FleetRouter};
use zeus_obs::sync::{lock_recover, read_recover, write_recover};
use zeus_obs::{ExplainReport, ObsHub, ObsSnapshot, StageClock, Tracer};
use zeus_serve::quota::TenantId;
use zeus_serve::{CorpusId, PlanStore, QueryRefiner, SegmentHit, ServeConfig, ZeusServer};
use zeus_sim::SimClock;
use zeus_video::annotation::runs_from_labels;
use zeus_video::registry::DatasetRegistry;
use zeus_video::source::{normalize_name, DataSource, SharedSource};
use zeus_video::video::Split;
use zeus_video::{DatasetKind, SyntheticDataset, Video, VideoId};

use crate::error::ZeusError;

/// How a builder entry materializes into a data source at build time.
#[derive(Clone)]
enum SourceSpec {
    /// A built-in corpus, generated at the builder's scale/seed.
    Kind(DatasetKind),
    /// An already-materialized source.
    Ready(SharedSource),
    /// A `.zds` file loaded at build.
    File(PathBuf),
}

/// Fluent construction of a [`ZeusSession`].
///
/// ```no_run
/// use zeus_api::ZeusSession;
/// use zeus_video::DatasetKind;
///
/// let session = ZeusSession::builder()
///     .dataset(DatasetKind::Bdd100k)
///     .register_kind(DatasetKind::Thumos14)
///     .scale(0.2)
///     .seed(42)
///     .build()?;
/// # Ok::<(), zeus_api::ZeusError>(())
/// ```
#[derive(Clone)]
pub struct ZeusSessionBuilder {
    sources: Vec<(String, SourceSpec)>,
    default_source: Option<String>,
    scale: f64,
    seed: u64,
    options: PlannerOptions,
    train_workers: Option<usize>,
    vec_envs: Option<usize>,
    catalog: Option<PathBuf>,
    executor: ExecutorKind,
    obs: Option<ObsHub>,
    tenant: Option<TenantId>,
}

impl std::fmt::Debug for ZeusSessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZeusSessionBuilder")
            .field(
                "sources",
                &self.sources.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("default_source", &self.default_source)
            .field("scale", &self.scale)
            .field("seed", &self.seed)
            .field("catalog", &self.catalog)
            .field("executor", &self.executor)
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Default for ZeusSessionBuilder {
    fn default() -> Self {
        ZeusSessionBuilder {
            sources: Vec::new(),
            default_source: None,
            scale: 0.2,
            seed: 2022,
            options: PlannerOptions::default(),
            train_workers: None,
            vec_envs: None,
            catalog: None,
            executor: ExecutorKind::ZeusRl,
            obs: None,
            tenant: None,
        }
    }
}

impl ZeusSessionBuilder {
    /// Insert (or replace) a named spec. Replacement matches on the
    /// *normalized* name (so `"MyData"` and `"mydata"` are one entry);
    /// an unnormalizable name is kept verbatim and rejected with a typed
    /// error at [`Self::build`].
    fn put(&mut self, name: String, spec: SourceSpec) {
        let name = normalize_name(&name).unwrap_or(name);
        match self.sources.iter_mut().find(|(n, _)| n == &name) {
            Some((_, existing)) => *existing = spec,
            None => self.sources.push((name, spec)),
        }
    }

    /// Register a built-in corpus (generated at the session scale/seed)
    /// and make it the session default. Equivalent to
    /// [`Self::register_kind`] + [`Self::default_source`].
    pub fn dataset(mut self, kind: DatasetKind) -> Self {
        self.put(kind.registry_name().to_string(), SourceSpec::Kind(kind));
        self.default_source = Some(kind.registry_name().to_string());
        self
    }

    /// Register a built-in corpus under its registry name without
    /// changing the default. The corpus is generated at build time at the
    /// session scale/seed.
    pub fn register_kind(mut self, kind: DatasetKind) -> Self {
        self.put(kind.registry_name().to_string(), SourceSpec::Kind(kind));
        self
    }

    /// Register a custom data source under `name` — a generated
    /// [`SyntheticDataset`], a concatenation, a filtered view, anything
    /// implementing [`DataSource`].
    pub fn register(mut self, name: impl AsRef<str>, source: impl DataSource + 'static) -> Self {
        self.put(
            name.as_ref().to_string(),
            SourceSpec::Ready(Arc::new(source)),
        );
        self
    }

    /// Register an already-shared data source under `name`.
    pub fn register_shared(mut self, name: impl AsRef<str>, source: SharedSource) -> Self {
        self.put(name.as_ref().to_string(), SourceSpec::Ready(source));
        self
    }

    /// Register a corpus persisted to a `.zds` file, loaded (and
    /// checksum-verified) at build time.
    pub fn source_file(mut self, name: impl AsRef<str>, path: impl Into<PathBuf>) -> Self {
        self.put(name.as_ref().to_string(), SourceSpec::File(path.into()));
        self
    }

    /// Adopt every source of a [`DatasetRegistry`] (registration order
    /// preserved; same-name entries replace earlier builder entries).
    pub fn sources(mut self, registry: &DatasetRegistry) -> Self {
        for (name, source) in registry.iter() {
            self.put(name.to_string(), SourceSpec::Ready(Arc::clone(source)));
        }
        self
    }

    /// Which registered dataset unrouted queries (`FROM UDF(video)`)
    /// target. Defaults to the first registration.
    pub fn default_source(mut self, name: impl AsRef<str>) -> Self {
        self.default_source = Some(name.as_ref().to_string());
        self
    }

    /// Corpus generation scale for [`Self::dataset`] /
    /// [`Self::register_kind`] entries (1.0 = paper scale).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// The session seed: generates built-in corpora and seeds the
    /// planner. Applied at [`Self::build`], so `.seed()` and `.planner()`
    /// may be called in either order.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Planner options used for every query planned by the session.
    /// `options.seed` is overridden by the session seed at build time,
    /// keeping corpus and planner seeds aligned (likewise
    /// [`Self::train_workers`] / [`Self::vec_envs`] override
    /// `options.training`, so the knobs compose in any order).
    pub fn planner(mut self, options: PlannerOptions) -> Self {
        self.options = options;
        self
    }

    /// Worker threads for the training plane's candidate portfolio
    /// (`0` = one per available CPU). Trained plans are bit-identical
    /// for any value; this only trades planning wall-clock for cores.
    pub fn train_workers(mut self, workers: usize) -> Self {
        self.train_workers = Some(workers);
        self
    }

    /// Lockstep environments per candidate rollout (clamped to ≥ 1).
    /// `1` (the default) reproduces the serial training dynamics
    /// bit-for-bit; larger values batch Q-network forwards and update
    /// once per lockstep round for higher training throughput.
    pub fn vec_envs(mut self, envs: usize) -> Self {
        self.vec_envs = Some(envs);
        self
    }

    /// Persist/reuse plans in a `.zpln` catalog directory (plans live in
    /// per-corpus-fingerprint subdirectories).
    pub fn catalog(mut self, dir: impl Into<PathBuf>) -> Self {
        self.catalog = Some(dir.into());
        self
    }

    /// Default executor for queries (`ZeusRl` unless overridden per
    /// query with [`Query::executor`]).
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// Share an existing observability hub instead of the session's own
    /// fresh one — e.g. to aggregate several sessions into one metric
    /// namespace. Observability is always on; this only controls *which*
    /// hub collects it.
    pub fn obs(mut self, obs: ObsHub) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The tenant identity this session submits serving traffic as.
    /// Threaded through fleet submissions ([`ZeusSession::fleet`]) and
    /// tenant-attributed server submissions, where per-tenant admission
    /// quotas are enforced. Defaults to the anonymous `"default"`
    /// tenant.
    pub fn tenant(mut self, tenant: impl Into<TenantId>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Materialize every registered source and assemble the session.
    /// Fails (typed, no panics) on a degenerate scale, an unusable
    /// catalog directory or `.zds` file, duplicate or invalid dataset
    /// names, or a corpus whose splits are empty. With no registration
    /// at all, a BDD100K corpus is generated as the sole source
    /// (preserving the classic single-dataset construction).
    pub fn build(mut self) -> Result<ZeusSession, ZeusError> {
        if !(self.scale > 0.0 && self.scale.is_finite()) {
            return Err(ZeusError::Plan(PlanError::InvalidOptions(format!(
                "corpus scale must be positive, got {}",
                self.scale
            ))));
        }
        let mut options = self.options;
        options.seed = self.seed;
        if let Some(workers) = self.train_workers {
            options.training.train_workers = workers;
        }
        if let Some(envs) = self.vec_envs {
            options.training.vec_envs = envs.max(1);
        }
        if self.sources.is_empty() {
            self.sources.push((
                DatasetKind::Bdd100k.registry_name().to_string(),
                SourceSpec::Kind(DatasetKind::Bdd100k),
            ));
        }

        let mut sources: Vec<SessionSource> = Vec::with_capacity(self.sources.len());
        for (name, spec) in self.sources {
            // `put` already deduplicated normalized names (later
            // registrations replace earlier ones), so this can only
            // fail on an unnormalizable name.
            let name = normalize_name(&name)?;
            let source: SharedSource = match spec {
                SourceSpec::Kind(kind) => Arc::new(kind.generate(self.scale, self.seed)),
                SourceSpec::Ready(source) => source,
                SourceSpec::File(path) => Arc::new(SyntheticDataset::load(&path)?),
            };
            // The shared emptiness check (store-level, reused by every
            // layer) instead of per-call-site split probing.
            source.store().validate_splits()?;
            let corpus = CorpusId::of(source.as_ref());
            sources.push(SessionSource {
                name,
                source,
                corpus,
            });
        }
        let default_source = match self.default_source {
            Some(name) => {
                let name = normalize_name(&name)?;
                if !sources.iter().any(|s| s.name == name) {
                    return Err(ZeusError::UnknownDataset {
                        name,
                        available: sources.iter().map(|s| s.name.clone()).collect(),
                    });
                }
                name
            }
            None => sources[0].name.clone(),
        };

        let plans = match &self.catalog {
            Some(dir) => PlanStore::with_catalog(dir)?,
            None => PlanStore::in_memory(),
        };
        Ok(ZeusSession {
            sources,
            default_source,
            options,
            plans: Arc::new(plans),
            executor: self.executor,
            obs: self.obs.unwrap_or_default(),
            tenant: self.tenant.unwrap_or_default(),
            plan_cache: RwLock::new(HashMap::new()),
            plan_locks: Mutex::new(HashMap::new()),
            profile_cache: RwLock::new(HashMap::new()),
        })
    }
}

/// One registered dataset: its normalized name, the source, and the
/// content-fingerprint corpus identity that scopes its plans and caches.
struct SessionSource {
    name: String,
    source: SharedSource,
    corpus: CorpusId,
}

/// Session-local plan-cache key: corpus fingerprint + catalog key +
/// exact target bits.
type PlanKey = (CorpusId, String, u64);

fn plan_key(corpus: CorpusId, query: &ActionQuery) -> PlanKey {
    (
        corpus,
        PlanCatalog::key(query),
        query.target_accuracy.to_bits(),
    )
}

/// The unified entry point to Zeus: named corpora, one planner
/// configuration, one plan store — and every query a ZQL string.
///
/// A session replaces the hand-wired `QueryPlanner::new` → `plan` →
/// `build_engines` → executor pipeline:
///
/// ```no_run
/// use zeus_api::ZeusSession;
/// use zeus_video::DatasetKind;
///
/// let session = ZeusSession::builder()
///     .dataset(DatasetKind::Bdd100k)
///     .register_kind(DatasetKind::Thumos14)
///     .scale(0.2)
///     .build()?;
/// // Unrouted queries hit the default corpus (bdd100k here)...
/// let response = session
///     .query(
///         "SELECT segment_ids FROM UDF(video) \
///          WHERE action_class = 'cross-right' AND accuracy >= 85% LIMIT 10",
///     )?
///     .run()?;
/// // ...and `FROM <dataset>` routes to any registered corpus.
/// let sports = session
///     .query(
///         "SELECT segment_ids FROM thumos14 \
///          WHERE action_class = 'pole-vault' AND accuracy >= 75%",
///     )?
///     .run()?;
/// for hit in response.answer.iter().chain(&sports.answer) {
///     println!("{:?} {}..{}", hit.video, hit.start, hit.end);
/// }
/// # Ok::<(), zeus_api::ZeusError>(())
/// ```
///
/// Plan resolution never retrains what it can reuse: a query first
/// checks the session's in-memory plan cache, then the shared
/// [`PlanStore`] (including the `.zpln` catalog when one is
/// configured), and only trains from scratch on a complete miss. Every
/// plan and cache key carries the corpus fingerprint, so the same SQL
/// against two registered corpora trains two independent plans.
/// [`Self::serve`] starts a [`ZeusServer`] sharing the same plan store,
/// so everything the session planned is immediately servable.
pub struct ZeusSession {
    sources: Vec<SessionSource>,
    default_source: String,
    options: PlannerOptions,
    plans: Arc<PlanStore>,
    executor: ExecutorKind,
    /// The session's observability hub: one metric namespace + span
    /// tracer shared by the planner, the training plane, and any server
    /// started via [`Self::serve`].
    obs: ObsHub,
    /// The identity fleet submissions are attributed (and quota-charged)
    /// to.
    tenant: TenantId,
    /// Full trained plans (with profiles) per (corpus, query core); the
    /// `PlanStore` holds the serialized form used by serving and the
    /// catalog.
    plan_cache: RwLock<HashMap<PlanKey, Arc<QueryPlan>>>,
    /// Per-(corpus, core) training guards: concurrent queries for the
    /// same uncached core serialize on its guard so training is paid
    /// once.
    plan_locks: Mutex<HashMap<PlanKey, Arc<Mutex<()>>>>,
    /// Profile tables (Table 2) re-derived for store-resolved plans:
    /// budgeted sliding queries need them for config re-selection, and
    /// the profiling pass is paid once per (corpus, core), not once per
    /// run.
    profile_cache: RwLock<HashMap<PlanKey, Arc<Vec<ConfigProfile>>>>,
}

impl ZeusSession {
    /// Start building a session.
    pub fn builder() -> ZeusSessionBuilder {
        ZeusSessionBuilder::default()
    }

    /// The registered dataset names, in registration order.
    pub fn source_names(&self) -> Vec<&str> {
        self.sources.iter().map(|s| s.name.as_str()).collect()
    }

    /// The name of the default dataset (`FROM UDF(video)` target).
    pub fn default_source_name(&self) -> &str {
        &self.default_source
    }

    /// The default data source.
    pub fn source(&self) -> &dyn DataSource {
        self.resolve(None)
            .expect("a session always holds its default source")
            .source
            .as_ref()
    }

    /// A registered data source by name (case-insensitive).
    pub fn source_named(&self, name: &str) -> Result<&dyn DataSource, ZeusError> {
        Ok(self.resolve(Some(name))?.source.as_ref())
    }

    /// The default corpus identity (keys plans and result caches).
    pub fn corpus_id(&self) -> CorpusId {
        self.resolve(None)
            .expect("a session always holds its default source")
            .corpus
    }

    /// A registered corpus identity by name.
    pub fn corpus_named(&self, name: &str) -> Result<CorpusId, ZeusError> {
        Ok(self.resolve(Some(name))?.corpus)
    }

    /// The plan store shared with any server started by [`Self::serve`].
    pub fn plans(&self) -> &Arc<PlanStore> {
        &self.plans
    }

    /// The session's observability hub (metric registry + span tracer).
    pub fn obs(&self) -> &ObsHub {
        &self.obs
    }

    /// The tenant identity this session's fleet traffic is attributed
    /// to (see [`ZeusSessionBuilder::tenant`]).
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// A point-in-time snapshot of every metric the session (and any
    /// server sharing its hub) has recorded.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.obs.metrics.snapshot()
    }

    /// The span tracer: recent trace trees and per-stage latency
    /// aggregates, exportable as JSONL via
    /// [`Tracer::export_jsonl`].
    pub fn trace_sink(&self) -> &Tracer {
        &self.obs.tracer
    }

    /// Resolve an optional dataset name (a `FROM` clause) to its
    /// session source; `None` targets the default.
    fn resolve(&self, name: Option<&str>) -> Result<&SessionSource, ZeusError> {
        let wanted = match name {
            Some(n) => normalize_name(n).map_err(|_| ZeusError::UnknownDataset {
                name: n.to_string(),
                available: self.sources.iter().map(|s| s.name.clone()).collect(),
            })?,
            None => self.default_source.clone(),
        };
        self.sources
            .iter()
            .find(|s| s.name == wanted)
            .ok_or_else(|| ZeusError::UnknownDataset {
                name: wanted,
                available: self.sources.iter().map(|s| s.name.clone()).collect(),
            })
    }

    /// Parse a ZQL string into a prepared [`Query`]. The `FROM` clause
    /// is resolved here: `FROM <unknown>` is a typed
    /// [`ZeusError::UnknownDataset`] before any planning work.
    pub fn query(&self, zql: &str) -> Result<Query<'_>, ZeusError> {
        self.prepare(parse_zql(zql)?)
    }

    /// Prepare an already-compiled [`QueryIr`] (validates it and
    /// resolves its dataset routing first).
    pub fn prepare(&self, ir: QueryIr) -> Result<Query<'_>, ZeusError> {
        ir.validate()?;
        let source = self.resolve(ir.source.as_deref())?;
        Ok(Query {
            session: self,
            source,
            ir,
            executor: self.executor,
        })
    }

    /// Start a serving engine over the session's default corpus and plan
    /// store.
    ///
    /// Every query planned through the session (explicitly via
    /// [`Query::plan`] or implicitly via [`Query::run`]) is resolvable by
    /// the server without retraining.
    pub fn serve(&self, config: ServeConfig) -> Result<ZeusServer, ZeusError> {
        self.serve_dataset(&self.default_source, config)
    }

    /// Start a serving engine over a named corpus, sharing the session's
    /// plan store. Each server is bound to one corpus; run one per
    /// dataset to serve a heterogeneous fleet (they share trained plans
    /// through the store without fingerprint collisions).
    pub fn serve_dataset(&self, name: &str, config: ServeConfig) -> Result<ZeusServer, ZeusError> {
        let source = self.resolve(Some(name))?;
        Ok(ZeusServer::start_with_obs(
            source.source.as_ref(),
            source.name.clone(),
            Arc::clone(&self.plans),
            config,
            self.obs.clone(),
        )?)
    }

    /// Start a sharded serving fleet over *every* registered corpus.
    ///
    /// Each corpus is rendezvous-assigned to a primary shard and its
    /// session-trained plans are seeded there; sibling shards start cold
    /// and warm up through hot-plan replication. Submit with
    /// [`zeus_fleet::FleetRouter::submit`], attributing requests to this
    /// session's [`Self::tenant`] (or any other tenant) — the fleet's
    /// fair-share gate enforces per-tenant quotas at the router.
    pub fn fleet(&self, config: FleetConfig) -> Result<FleetRouter, ZeusError> {
        let sources: Vec<(String, SharedSource)> = self
            .sources
            .iter()
            .map(|s| (s.name.clone(), Arc::clone(&s.source)))
            .collect();
        Ok(FleetRouter::build(
            &sources,
            &self.default_source,
            &self.plans,
            config,
        )?)
    }

    fn planner<'a>(&'a self, source: &'a SessionSource) -> QueryPlanner<'a> {
        QueryPlanner::new(source.source.as_ref(), self.options.clone()).with_obs(self.obs.clone())
    }

    /// The full plan trained this session, if any.
    fn cached_plan(&self, source: &SessionSource, base: &ActionQuery) -> Option<Arc<QueryPlan>> {
        read_recover(&self.plan_cache)
            .get(&plan_key(source.corpus, base))
            .cloned()
    }

    /// The trained plan for a (corpus, query core): session cache, then
    /// plan from scratch (training — the expensive path, paid once per
    /// core and persisted to the plan store / catalog). Engine
    /// construction prefers [`Self::cached_plan`] / the [`PlanStore`]
    /// and only lands here on a complete miss (or for executors that
    /// need the full profile table).
    fn base_plan(
        &self,
        source: &SessionSource,
        base: &ActionQuery,
    ) -> Result<Arc<QueryPlan>, ZeusError> {
        if let Some(plan) = self.cached_plan(source, base) {
            return Ok(plan);
        }
        // Serialize training per core: the first caller trains while
        // concurrent callers for the same core wait on its guard and
        // then hit the cache, so training really is paid once.
        let guard = {
            let mut locks = lock_recover(&self.plan_locks);
            Arc::clone(
                locks
                    .entry(plan_key(source.corpus, base))
                    .or_insert_with(|| Arc::new(Mutex::new(()))),
            )
        };
        let _training = lock_recover(&guard);
        if let Some(plan) = self.cached_plan(source, base) {
            return Ok(plan);
        }
        let plan = Arc::new(self.planner(source).try_plan(base)?);
        self.plans
            .install(source.corpus, &plan, self.options.seed)?;
        write_recover(&self.plan_cache).insert(plan_key(source.corpus, base), Arc::clone(&plan));
        Ok(plan)
    }

    /// The profile table for a store-resolved plan, re-derived on first
    /// use (sliding execution over the validation split — no RL
    /// training) and cached per (corpus, core).
    fn stored_profiles(
        &self,
        source: &SessionSource,
        base: &ActionQuery,
        stored: &StoredPlan,
    ) -> Arc<Vec<ConfigProfile>> {
        let key = plan_key(source.corpus, base);
        if let Some(profiles) = read_recover(&self.profile_cache).get(&key) {
            return Arc::clone(profiles);
        }
        let planner = self.planner(source);
        let space = ConfigSpace::for_family(source.source.family()).masked(self.options.knob_mask);
        let profiles = Arc::new(planner.profile_configurations(base, &space, &stored.apfg()));
        write_recover(&self.profile_cache).insert(key, Arc::clone(&profiles));
        profiles
    }

    /// Test-split videos of a source in canonical (id) order.
    fn test_videos<'a>(&self, source: &'a SessionSource) -> Vec<&'a Video> {
        let mut videos = source.source.store().split(Split::Test);
        videos.sort_by_key(|v| v.id);
        videos
    }
}

/// A prepared query bound to a session and a resolved dataset: pick an
/// executor, then [`run`] (batch) or [`run_streaming`] (per-video
/// iterator).
///
/// [`run`]: Query::run
/// [`run_streaming`]: Query::run_streaming
pub struct Query<'s> {
    session: &'s ZeusSession,
    source: &'s SessionSource,
    ir: QueryIr,
    executor: ExecutorKind,
}

/// A query's engine plus the evaluation protocol it was resolved with.
struct ResolvedEngine {
    engine: Box<dyn QueryEngine + Send + Sync>,
    protocol: EvalProtocol,
}

impl<'s> Query<'s> {
    /// The compiled IR.
    pub fn ir(&self) -> &QueryIr {
        &self.ir
    }

    /// The registered name of the dataset this query resolved to.
    pub fn dataset_name(&self) -> &str {
        &self.source.name
    }

    /// The corpus identity this query's plans and caches are scoped to.
    pub fn corpus_id(&self) -> CorpusId {
        self.source.corpus
    }

    /// Round-trip the query back to ZQL text.
    pub fn to_sql(&self) -> String {
        self.ir.to_sql()
    }

    /// Override the executor for this query.
    pub fn executor(mut self, executor: ExecutorKind) -> Self {
        self.executor = executor;
        self
    }

    /// The stored plan for this query's (corpus, core), if one is
    /// resolvable without training.
    pub fn lookup(&self) -> Option<Arc<StoredPlan>> {
        self.session.plans.get(self.source.corpus, &self.ir.base)
    }

    /// Ensure this query's core is planned and return the stored form —
    /// the warm-up path for serving and the catalog. Resolution is
    /// store-first: a plan already in the session's [`PlanStore`]
    /// (including one persisted by an earlier process via the catalog)
    /// is returned as-is; only a complete miss trains.
    pub fn plan(&self) -> Result<Arc<StoredPlan>, ZeusError> {
        if let Some(stored) = self.lookup() {
            return Ok(stored);
        }
        self.session.base_plan(self.source, &self.ir.base)?;
        self.lookup()
            .ok_or_else(|| ZeusError::Unsupported("freshly trained plan must be stored".into()))
    }

    /// Train (or fetch from the session cache) the *full* plan for this
    /// query's core — profiles, training report, and costs included.
    /// Unlike [`Query::plan`], this cannot be satisfied by a catalog
    /// entry alone: use it when the full planning artifacts are needed
    /// (e.g. reporting training costs, building all five engines).
    pub fn train(&self) -> Result<Arc<QueryPlan>, ZeusError> {
        self.session.base_plan(self.source, &self.ir.base)
    }

    /// Resolve this query to an engine without retraining what can be
    /// reused: the session's full-plan cache first, then the plan store
    /// (catalog) for plan-reconstructable executors, then training.
    fn resolve(&self) -> Result<ResolvedEngine, ZeusError> {
        if let Some(plan) = self.session.cached_plan(self.source, &self.ir.base) {
            return Ok(ResolvedEngine {
                engine: self.engine_from_plan(&plan),
                protocol: plan.protocol,
            });
        }
        if matches!(
            self.executor,
            ExecutorKind::ZeusRl | ExecutorKind::ZeusSliding
        ) {
            if let Some(stored) = self.lookup() {
                return Ok(ResolvedEngine {
                    protocol: stored.protocol,
                    engine: self.engine_from_stored(&stored),
                });
            }
        }
        let plan = self.session.base_plan(self.source, &self.ir.base)?;
        Ok(ResolvedEngine {
            engine: self.engine_from_plan(&plan),
            protocol: plan.protocol,
        })
    }

    /// Build this query's engine from a full trained plan. The
    /// `latency_budget` clause re-selects Zeus-Sliding's static
    /// configuration under a throughput floor (tighter budget → faster
    /// configuration); Zeus-RL adapts per-segment and needs no override.
    fn engine_from_plan(&self, plan: &QueryPlan) -> Box<dyn QueryEngine + Send + Sync> {
        let planner = self.session.planner(self.source);
        match (self.executor, planner.budget_min_fps(&self.ir)) {
            (ExecutorKind::ZeusSliding, Some(floor)) => {
                let config = QueryPlanner::select_sliding_config_bounded(
                    &plan.profiles,
                    self.ir.base.target_accuracy,
                    Some(floor),
                )
                .unwrap_or(plan.sliding_config);
                Box::new(ZeusSliding::new(
                    plan.apfg.clone(),
                    config,
                    planner.cost_model().clone(),
                ))
            }
            _ => planner.build_engine(plan, self.executor),
        }
    }

    /// Build this query's engine from a stored (catalog) plan — no
    /// training. A `latency_budget` on a sliding query re-profiles the
    /// configuration space (cheap: sliding execution over the validation
    /// split, no RL training) to re-select under the throughput floor.
    fn engine_from_stored(&self, stored: &StoredPlan) -> Box<dyn QueryEngine + Send + Sync> {
        let planner = self.session.planner(self.source);
        let cost = planner.cost_model().clone();
        match self.executor {
            ExecutorKind::ZeusSliding => {
                if let Some(floor) = planner.budget_min_fps(&self.ir) {
                    let profiles = self
                        .session
                        .stored_profiles(self.source, &self.ir.base, stored);
                    let config = QueryPlanner::select_sliding_config_bounded(
                        &profiles,
                        self.ir.base.target_accuracy,
                        Some(floor),
                    )
                    .unwrap_or(stored.sliding_config);
                    Box::new(ZeusSliding::new(stored.apfg(), config, cost))
                } else {
                    Box::new(stored.sliding_engine(cost))
                }
            }
            _ => Box::new(stored.zeus_rl_engine(cost)),
        }
    }

    /// Execute the query over its dataset's test split and return the
    /// evaluated response with the refined answer set.
    ///
    /// Every run is traced (`session.run`: `plan` → `execute` →
    /// `refine` spans) into the session's [`Tracer`]; a query compiled
    /// from `EXPLAIN ANALYZE <zql>` additionally carries a full
    /// [`ExplainReport`] in [`QueryResponse::explain`] whose stage sum
    /// equals the measured end-to-end latency by construction.
    pub fn run(&self) -> Result<QueryResponse, ZeusError> {
        let from_cache = self
            .session
            .cached_plan(self.source, &self.ir.base)
            .is_some()
            || self.lookup().is_some();
        let trace = self.session.obs.tracer.trace("session.run");
        let mut clock = StageClock::new();

        let span = trace.span("plan");
        let resolved = self.resolve()?;
        drop(span);
        clock.mark("plan");

        let mut span = trace.span("execute");
        let videos = self.session.test_videos(self.source);
        let exec = resolved.engine.execute(&videos);
        let device_secs = exec.clock.elapsed_secs();
        span.set_device_secs(device_secs);
        drop(span);
        clock.mark("execute");
        clock.set_device_secs(device_secs);

        let span = trace.span("refine");
        let report = exec.evaluate(&videos, &self.ir.base.classes, resolved.protocol);
        let refiner = QueryRefiner::new(&self.ir, videos.iter().copied());
        let answer = refiner.answer(&exec.labels);
        drop(span);
        clock.mark("refine");

        let explain = self.ir.explain.then(|| {
            let (stages, total) = clock.finish();
            ExplainReport {
                query: self.ir.to_sql(),
                executor: self.executor.name().to_string(),
                from_cache,
                coalesced: false,
                stages,
                total,
                device_secs,
            }
        });
        Ok(QueryResponse {
            result: QueryResult::from_parts(self.executor.name(), &exec, &report),
            report,
            answer,
            ir: self.ir.clone(),
            executor: self.executor,
            explain,
        })
    }

    /// Execute lazily, yielding one [`VideoResult`] per test-split video
    /// as it is processed. `WINDOW` and `AND NOT` filter each video's
    /// segments; `LIMIT n` short-circuits the iteration once `n` segments
    /// have been yielded (remaining videos are never executed). `ORDER BY`
    /// needs the full answer set and only applies to [`Query::run`].
    pub fn run_streaming(&self) -> Result<VideoResults<'s>, ZeusError> {
        let resolved = self.resolve()?;
        let videos = self.session.test_videos(self.source);
        let refiner = QueryRefiner::new(&self.ir, videos.iter().copied());
        Ok(VideoResults {
            videos,
            engine: resolved.engine,
            refiner,
            pos: 0,
            emitted: 0,
        })
    }
}

/// The evaluated outcome of [`Query::run`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The query as compiled.
    pub ir: QueryIr,
    /// The engine that executed it.
    pub executor: ExecutorKind,
    /// Throughput/accuracy summary (one point in the paper's Figure 8
    /// plane).
    pub result: QueryResult,
    /// The raw evaluation counts behind `result`.
    pub report: EvalReport,
    /// The refined answer set (`WINDOW`/`AND NOT`/`ORDER BY`/`LIMIT`
    /// applied).
    pub answer: Vec<SegmentHit>,
    /// Per-stage timing report, present when the query was compiled
    /// from `EXPLAIN ANALYZE <zql>` (or [`QueryIr::explained`]).
    pub explain: Option<ExplainReport>,
}

/// One video's localized segments, yielded by [`Query::run_streaming`].
#[derive(Debug, Clone, PartialEq)]
pub struct VideoResult {
    /// The processed video.
    pub video: VideoId,
    /// Refined predicted segments `(start, end)` in frames.
    pub segments: Vec<(usize, usize)>,
    /// Simulated device seconds this video cost.
    pub simulated_secs: f64,
}

/// Lazy per-video execution: videos run on demand as the iterator is
/// advanced, so a satisfied `LIMIT` stops paying for the rest of the
/// corpus.
pub struct VideoResults<'s> {
    videos: Vec<&'s Video>,
    engine: Box<dyn QueryEngine + Send + Sync>,
    refiner: QueryRefiner,
    pos: usize,
    emitted: usize,
}

impl Iterator for VideoResults<'_> {
    type Item = VideoResult;

    fn next(&mut self) -> Option<VideoResult> {
        if let Some(limit) = self.refiner.limit() {
            if self.emitted >= limit {
                return None;
            }
        }
        let video = *self.videos.get(self.pos)?;
        self.pos += 1;
        let mut clock = SimClock::new();
        let mut hist = ConfigHistogram::new();
        let labels = self.engine.execute_video(video, &mut clock, &mut hist);
        let mut segments = self
            .refiner
            .refine_segments(video.id, runs_from_labels(&labels));
        if let Some(limit) = self.refiner.limit() {
            let remaining = limit - self.emitted;
            segments.truncate(remaining);
        }
        self.emitted += segments.len();
        Some(VideoResult {
            video: video.id,
            segments,
            simulated_secs: clock.elapsed_secs(),
        })
    }
}
