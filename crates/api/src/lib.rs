//! # zeus-api
//!
//! The unified, declarative entry point to the Zeus VDBMS — the layer
//! the paper's §1 promises ("users provide a query and an accuracy
//! target; the system picks the plan") and the only supported public
//! API of this workspace.
//!
//! Three pieces:
//!
//! * [`ZeusSession`] — a fluent façade over corpus generation, the query
//!   planner, the plan store/catalog, and the serving engine. Build one
//!   with [`ZeusSession::builder`], then call
//!   `session.query("ZQL ...")?.run()` (batch) or `.run_streaming()`
//!   (per-video iterator). `session.serve(config)` starts a
//!   [`zeus_serve::ZeusServer`] sharing the session's plans.
//! * [`ZeusError`] — the workspace-wide typed error. Every layer's
//!   failure (`ParseError`, `PlanError`, `AdmitError`, `ServeError`,
//!   `CatalogError`, I/O) converts into it; no layer panics on user
//!   input.
//! * The extended ZQL dialect ([`zeus_core::query::parse_zql`]) —
//!   `LIMIT`, `WINDOW [t0, t1]`, `latency_budget <= Xms`,
//!   `ORDER BY confidence`, and `AND NOT` class predicates, compiled
//!   into a [`QueryIr`] consumed by both the planner and
//!   `ZeusServer::submit_ir`. See the grammar in
//!   [`zeus_core::query`]'s module docs.
//!
//! ```no_run
//! use zeus_api::ZeusSession;
//! use zeus_video::DatasetKind;
//!
//! let session = ZeusSession::builder()
//!     .dataset(DatasetKind::Bdd100k)
//!     .scale(0.2)
//!     .seed(42)
//!     .build()?;
//! let response = session
//!     .query(
//!         "SELECT segment_ids FROM UDF(video) \
//!          WHERE action_class = 'cross-right' AND accuracy >= 85% \
//!          ORDER BY confidence LIMIT 10",
//!     )?
//!     .run()?;
//! println!("F1 {:.3}, {} segments", response.result.f1, response.answer.len());
//! # Ok::<(), zeus_api::ZeusError>(())
//! ```

#![warn(missing_docs)]

mod error;
mod session;

pub use error::ZeusError;
pub use session::{
    Query, QueryResponse, VideoResult, VideoResults, ZeusSession, ZeusSessionBuilder,
};

// Re-export the vocabulary types a session caller needs.
pub use zeus_core::query::{parse_zql, ActionQuery, OrderBy, ParseError, QueryIr};
pub use zeus_core::ExecutorKind;
pub use zeus_fleet::{FleetConfig, FleetError, FleetRouter, Routed};
pub use zeus_obs::{ExplainReport, MetricsRegistry, ObsHub, ObsSnapshot, StageTiming, Tracer};
pub use zeus_serve::quota::{FairShareGate, QuotaSpec, TenantId, TenantStats};
pub use zeus_serve::{CorpusId, Priority, SegmentHit, ServeConfig};
pub use zeus_video::{
    ConfigFamily, DataError, DataSource, DatasetKind, DatasetProfile, DatasetRegistry,
    SyntheticDataset,
};
