//! Self-tests for `zeus-lint`.
//!
//! Three layers: (1) every known-bad fixture produces *exactly* its
//! golden diagnostic (rule id, file, line, nothing else); (2) the clean
//! fixtures and the real workspace produce zero findings — the linter
//! dogfoods the tree it ships in; (3) the lexer never panics on
//! arbitrary bytes, property-tested.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;
use zeus_lint::{lint_paths, lint_workspace};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn fixture_files(kind: &str) -> Vec<PathBuf> {
    let dir = workspace_root().join("crates/lint/fixtures").join(kind);
    let mut files: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    files
}

/// Parse the `zeus-lint-test: expect <CODE> @ <line>` marker a bad
/// fixture carries.
fn expectation(text: &str) -> (String, u32) {
    let marker = text
        .lines()
        .find_map(|l| l.split("zeus-lint-test: expect ").nth(1))
        .expect("bad fixture carries an expectation marker");
    let (code, line) = marker.split_once(" @ ").expect("marker shape");
    (
        code.trim().to_string(),
        line.trim().parse().expect("line number"),
    )
}

#[test]
fn bad_fixtures_each_produce_exactly_their_golden_diagnostic() {
    let root = workspace_root();
    let files = fixture_files("bad");
    assert_eq!(files.len(), 8, "the bad corpus covers all seven rules");
    for file in files {
        let (code, line) = expectation(&fs::read_to_string(&file).expect("read fixture"));
        let report = lint_paths(&root, std::slice::from_ref(&file)).expect("lint fixture");
        assert_eq!(
            report.findings.len(),
            1,
            "{} must yield exactly one finding, got {:#?}",
            file.display(),
            report.findings
        );
        let d = &report.findings[0];
        assert_eq!(d.rule.code(), code, "{}: wrong rule: {d}", file.display());
        assert_eq!(d.line, line, "{}: wrong line: {d}", file.display());
        assert!(
            d.file.ends_with(file.file_name().expect("file name")),
            "diagnostic path {} should be workspace-relative",
            d.file.display()
        );
        assert!(
            report.failed(true),
            "{}: must fail under deny",
            file.display()
        );
    }
}

#[test]
fn bad_corpus_as_a_whole_fails_without_deny_warnings() {
    let root = workspace_root();
    let report =
        lint_paths(&root, &[PathBuf::from("crates/lint/fixtures/bad")]).expect("lint bad corpus");
    assert_eq!(report.files_scanned, 8);
    assert_eq!(report.findings.len(), 8);
    assert!(
        report.failed(false),
        "error-severity rules must fail the run even without --deny-warnings"
    );
    let json = report.to_json();
    assert!(json.contains("\"errors\""));
    assert!(json.contains("ZL-C003"));
}

#[test]
fn clean_fixtures_have_zero_findings() {
    let root = workspace_root();
    let report = lint_paths(&root, &[PathBuf::from("crates/lint/fixtures/clean")])
        .expect("lint clean corpus");
    assert_eq!(report.files_scanned, 3);
    assert!(
        report.findings.is_empty(),
        "clean fixtures must be clean, got {:#?}",
        report.findings
    );
    assert!(!report.failed(true));
}

#[test]
fn real_workspace_is_lint_clean() {
    let root = workspace_root();
    let report = lint_workspace(&root).expect("lint workspace");
    assert!(
        report.files_scanned > 40,
        "workspace walk looks truncated: {} files",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "the workspace must dogfood its own linter, got {:#?}",
        report.findings
    );
}

proptest! {
    #[test]
    fn lexer_never_panics_on_arbitrary_bytes(
        words in prop::collection::vec(any::<u32>(), 0..64)
    ) {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let text = String::from_utf8_lossy(&bytes);
        let lexed = zeus_lint::lexer::lex(&text);
        // Sanity bound: no token inflation beyond one per char.
        prop_assert!(lexed.tokens.len() <= text.chars().count() + 1);
    }

    #[test]
    fn lexer_never_panics_on_truncated_rust(
        cut in 0usize..400,
        seed in any::<u32>()
    ) {
        let sample = concat!(
            "//! doc\n/* nested /* block */ still */\n",
            "fn f<'a>(x: &'a str) -> char {\n",
            "    let s = r#\"raw \" string\"#;\n",
            "    let b = b\"bytes\\\"\";\n",
            "    metrics.counter(\"serve.submitted\").inc();\n",
            "    'x'\n}\n"
        );
        // Truncate at an arbitrary char boundary, optionally flipping
        // the tail to stress unterminated-literal recovery.
        let chars: Vec<char> = sample.chars().collect();
        let at = cut.min(chars.len());
        let mut text: String = chars[..at].iter().collect();
        if seed % 2 == 0 {
            text.push('"');
        }
        let lexed = zeus_lint::lexer::lex(&text);
        prop_assert!(lexed.tokens.len() <= text.chars().count() + 1);
    }
}
