//! A hand-rolled, panic-free lexer for Rust source.
//!
//! The analyzers need just enough structure to be robust against
//! formatting: a token stream with line numbers, where comments are
//! stripped (but `zeus-lint:` directives inside them are kept) and
//! string/char literal *bodies* can never be mistaken for code. This is
//! deliberately not a full Rust lexer — no float/suffix fidelity, no
//! nested-generic disambiguation — because the rules only match short
//! token sequences like `. lock ( ) . unwrap (`.
//!
//! Invariant (property-tested): `lex` never panics, on any input
//! whatsoever. It scans a `Vec<char>` by index, so arbitrary bytes
//! (lossily decoded), unterminated literals, and stray delimiters all
//! fall out as best-effort token streams rather than errors.

/// One lexical token with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Line number (1-based) of the token's first character.
    pub line: u32,
    /// What was lexed.
    pub kind: TokenKind,
}

/// Token kinds, at the granularity the analyzers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`lock`, `fn`, `_`).
    Ident(String),
    /// A string literal's *contents* (escapes left as written), from
    /// `"..."`, `r"..."`, `r#"..."#`, `b"..."`, or `br#"..."#`.
    Str(String),
    /// A character or byte literal (`'a'`, `b'\n'`); contents dropped.
    Char,
    /// A lifetime (`'a`); name dropped.
    Lifetime,
    /// A numeric literal; digits dropped.
    Num,
    /// Any other single character of punctuation (`.`, `:`, `(`, ...).
    Punct(char),
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// A `// zeus-lint: ...` directive found in a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Line number (1-based) of the comment.
    pub line: u32,
    /// True when the comment is the only thing on its line, in which
    /// case the directive also covers the *next* line.
    pub own_line: bool,
    /// Directive body after `zeus-lint:`, e.g. `allow(raw-lock-unwrap)`.
    pub body: String,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct LexFile {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All `zeus-lint:` directives, in source order.
    pub directives: Vec<Directive>,
}

const DIRECTIVE_TAG: &str = "zeus-lint:";

/// Lex `src` into tokens plus lint directives. Never panics.
pub fn lex(src: &str) -> LexFile {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexFile::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Tracks whether anything other than whitespace appeared on the
    // current line before the position at hand (for `own_line` comments).
    let mut line_has_code = false;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                line_has_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                push_directive(&mut out, &text, line, !line_has_code);
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment; collect its text for directives.
                let own = !line_has_code;
                let comment_line = line;
                let mut depth = 1u32;
                let mut j = i + 2;
                let mut text = String::new();
                while j < chars.len() && depth > 0 {
                    if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        if chars[j] == '\n' {
                            line += 1;
                        }
                        text.push(chars[j]);
                        j += 1;
                    }
                }
                push_directive(&mut out, &text, comment_line, own);
                i = j;
            }
            '"' => {
                let (value, next, newlines) = scan_string(&chars, i + 1, 0);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Str(value),
                });
                line += newlines;
                line_has_code = true;
                i = next;
            }
            'r' | 'b' if raw_or_byte_string(&chars, i).is_some() => {
                // r"..", r#".."#, b"..", br"..", br#".."# (and rb).
                let (hashes, body_start) = raw_or_byte_string(&chars, i).unwrap_or((0, i + 1));
                let (value, next, newlines) = scan_string(&chars, body_start, hashes);
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Str(value),
                });
                line += newlines;
                line_has_code = true;
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime.
                let (kind, next) = scan_quote(&chars, i);
                out.tokens.push(Token { line, kind });
                line_has_code = true;
                i = next;
            }
            c if c == '_' || c.is_alphabetic() => {
                let mut j = i;
                while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                    j += 1;
                }
                let ident: String = chars[i..j].iter().collect();
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Ident(ident),
                });
                line_has_code = true;
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len()
                    && (chars[j] == '_'
                        || chars[j] == '.' && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit())
                        || chars[j].is_alphanumeric())
                {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Num,
                });
                line_has_code = true;
                i = j;
            }
            c => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct(c),
                });
                line_has_code = true;
                i += 1;
            }
        }
    }
    out
}

/// If `chars[i]` starts a raw/byte string prefix (`r`, `b`, `rb`, `br`
/// followed by `#*"`), return `(hash_count, body_start_index)`.
fn raw_or_byte_string(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    for _ in 0..2 {
        match chars.get(j) {
            Some('r') | Some('b') => j += 1,
            _ => break,
        }
    }
    if j == i {
        return None;
    }
    let mut hashes = 0usize;
    while chars.get(j + hashes) == Some(&'#') {
        hashes += 1;
    }
    if chars.get(j + hashes) == Some(&'"') {
        Some((hashes, j + hashes + 1))
    } else {
        None
    }
}

/// Scan a string body starting at `start` (just past the opening quote)
/// with `hashes` raw-string hashes. Returns (contents, index past the
/// closing delimiter, newlines consumed). Unterminated strings run to
/// end of input.
fn scan_string(chars: &[char], start: usize, hashes: usize) -> (String, usize, u32) {
    let mut value = String::new();
    let mut newlines = 0u32;
    let mut j = start;
    while j < chars.len() {
        if chars[j] == '\\' && hashes == 0 {
            // Escape in a cooked string: keep both chars verbatim.
            value.push('\\');
            if let Some(&next) = chars.get(j + 1) {
                value.push(next);
                if next == '\n' {
                    newlines += 1;
                }
            }
            j += 2;
            continue;
        }
        if chars[j] == '"' {
            // In a raw string the quote only closes with its hashes.
            let closed = (0..hashes).all(|k| chars.get(j + 1 + k) == Some(&'#'));
            if closed {
                return (value, j + 1 + hashes, newlines);
            }
        }
        if chars[j] == '\n' {
            newlines += 1;
        }
        value.push(chars[j]);
        j += 1;
    }
    (value, j, newlines)
}

/// Scan from a `'`: a char literal (`'x'`, `'\n'`) or a lifetime (`'a`).
fn scan_quote(chars: &[char], i: usize) -> (TokenKind, usize) {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal; find the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            (TokenKind::Char, (j + 1).min(chars.len()))
        }
        Some(&c) if c == '_' || c.is_alphanumeric() => {
            if chars.get(i + 2) == Some(&'\'') {
                (TokenKind::Char, i + 3)
            } else {
                // Lifetime: consume the identifier.
                let mut j = i + 1;
                while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                    j += 1;
                }
                (TokenKind::Lifetime, j)
            }
        }
        Some(&c) => {
            // Punctuation char literal like '(' — or a stray quote.
            if chars.get(i + 2) == Some(&'\'') && c != '\'' {
                (TokenKind::Char, i + 3)
            } else {
                (TokenKind::Punct('\''), i + 1)
            }
        }
        None => (TokenKind::Punct('\''), i + 1),
    }
}

/// Record a `zeus-lint:` directive if the comment text carries one.
fn push_directive(out: &mut LexFile, text: &str, line: u32, own_line: bool) {
    let trimmed = text.trim_start_matches(['/', '!']).trim();
    if let Some(rest) = trimmed.strip_prefix(DIRECTIVE_TAG) {
        out.directives.push(Directive {
            line,
            own_line,
            body: rest.trim().to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_never_leak_code() {
        let src = r#"
            // a .lock().unwrap() in a comment
            /* and /* nested */ .read().unwrap() */
            let s = "call .write().unwrap() here";
            real_ident();
        "#;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        let strings: Vec<_> = lex(src)
            .tokens
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::Str(_)))
            .collect();
        assert_eq!(strings.len(), 1);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let file = lex(r##"let x = r#"a "quoted" b"#; let y = r"z";"##);
        let strs: Vec<String> = file
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Str(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(strs, vec![r#"a "quoted" b"#.to_string(), "z".to_string()]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let file = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = file
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let file = lex("let a = \"x\ny\";\nfinal_line();");
        let last = file.tokens.last().unwrap();
        assert_eq!(last.line, 3);
    }

    #[test]
    fn directives_are_collected_with_own_line_flag() {
        let src = "// zeus-lint: allow(raw-lock-unwrap)\nlet x = 1; // zeus-lint: allow(wallclock): reason\n";
        let file = lex(src);
        assert_eq!(file.directives.len(), 2);
        assert!(file.directives[0].own_line);
        assert_eq!(file.directives[0].body, "allow(raw-lock-unwrap)");
        assert!(!file.directives[1].own_line);
        assert!(file.directives[1].body.starts_with("allow(wallclock)"));
    }

    #[test]
    fn unterminated_everything_is_survivable() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed",
            "'",
            "b'",
            "r#",
            "let x = '\\",
        ] {
            let _ = lex(src);
        }
    }
}
